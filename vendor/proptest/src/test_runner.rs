//! Deterministic case runner and RNG for the proptest stand-in.

use std::fmt;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!`; generate a replacement.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lower than upstream's 256: these run in CI on every push.
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic RNG (SplitMix64): every test derives its stream from the
/// test's fully-qualified name, so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drive one property through `config.cases` generated cases.
///
/// Panics (failing the surrounding `#[test]`) on the first case whose
/// closure returns [`TestCaseError::Fail`] or itself panics.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        // Fork a per-case stream so a failure can be replayed in isolation.
        let case_seed = rng.next_u64();
        let mut case_rng = TestRng::from_seed(case_seed);
        case_index += 1;
        // Catch unwinds so plain `assert!`/`unwrap` panics inside a case
        // still report the replay seed, matching the prop_assert! paths.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut case_rng)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(TestCaseError::Fail(format!("case body panicked: {msg}")))
        });
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case {case_index} \
                     (seed {case_seed:#018x}):\n{msg}"
                );
            }
        }
    }
}
