//! Deterministic case runner and RNG for the proptest stand-in.

use crate::strategy::Strategy;
use std::fmt;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!`; generate a replacement.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
    /// Persist failing replay seeds to a `proptest-regressions/` file next
    /// to the crate under test, and replay persisted seeds first on the
    /// next run (mirrors upstream's `FileFailurePersistence`). Disable for
    /// properties that are *expected* to fail (e.g. tests of the runner
    /// itself).
    pub failure_persistence: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lower than upstream's 256: these run in CI on every push.
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
            failure_persistence: true,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic RNG (SplitMix64): every test derives its stream from the
/// test's fully-qualified name, so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Evaluation budget for the greedy shrink descent: total candidate
/// evaluations, not descent depth, so wide candidate sets cannot stall a
/// failing test indefinitely.
const SHRINK_EVAL_BUDGET: usize = 512;

/// Where a test's persisted regression seeds live: one file per property
/// under `<manifest>/proptest-regressions/`, `cc <hex seed>` per line
/// (upstream's file format, so the files stay swappable).
fn regression_file(manifest_dir: &str, test_name: &str) -> std::path::PathBuf {
    std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{}.txt", test_name.replace("::", "-")))
}

/// Parse persisted `cc <seed>` lines (comments and junk are skipped).
fn load_regression_seeds(path: &std::path::Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let rest = rest.trim().trim_start_matches("0x");
            u64::from_str_radix(rest, 16).ok()
        })
        .collect()
}

/// Append a failing seed to the regression file (idempotent, best-effort:
/// persistence failures never mask the property failure itself).
fn persist_regression_seed(path: &std::path::Path, test_name: &str, seed: u64) {
    let known = load_regression_seeds(path);
    if known.contains(&seed) {
        return;
    }
    let _ = (|| -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        use std::io::Write;
        let fresh = !path.exists();
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        if fresh {
            writeln!(
                f,
                "# Seeds for failure cases proptest has generated for {test_name}.\n\
                 # It is recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases."
            )?;
        }
        writeln!(f, "cc {seed:#018x}")
    })();
}

/// Drive one property through `config.cases` cases generated by `strategy`.
///
/// When `manifest_dir` is set and `config.failure_persistence` is on,
/// seeds persisted by previous failing runs replay *first* (so a fix is
/// checked against the exact regression before fresh generation), and any
/// new failure appends its replay seed to the `proptest-regressions/`
/// file before panicking.
///
/// On the first case whose closure returns [`TestCaseError::Fail`] (or
/// panics), the runner greedily shrinks the failing input — asking the
/// strategy for simpler candidates and descending while the property keeps
/// failing — then panics (failing the surrounding `#[test]`) with the
/// *minimal* failing input plus the original replay seed.
pub fn run_cases<S, F>(
    config: &ProptestConfig,
    manifest_dir: Option<&str>,
    test_name: &str,
    strategy: &S,
    mut case: F,
) where
    S: Strategy + ?Sized,
    S::Value: Clone + fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    // Catch unwinds so plain `assert!`/`unwrap` panics inside a case still
    // report the replay seed, matching the prop_assert! paths — and so the
    // shrink loop can keep probing candidates after a panicking one.
    let mut eval = |value: S::Value| -> Result<(), TestCaseError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(value))).unwrap_or_else(
            |payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(TestCaseError::Fail(format!("case body panicked: {msg}")))
            },
        )
    };
    // Greedy descent: adopt the first candidate that still fails, restart
    // from it, stop when no candidate fails (a local minimum) or the
    // evaluation budget runs out. Returns (minimal, its message, evals).
    let shrink_minimal =
        |eval: &mut dyn FnMut(S::Value) -> Result<(), TestCaseError>,
         value: S::Value,
         original_msg: &str| {
            let mut minimal = value;
            let mut minimal_msg = original_msg.to_string();
            let mut evals = 0usize;
            'descend: loop {
                let mut progressed = false;
                for cand in strategy.shrink(&minimal) {
                    if evals >= SHRINK_EVAL_BUDGET {
                        break 'descend;
                    }
                    evals += 1;
                    if let Err(TestCaseError::Fail(msg)) = eval(cand.clone()) {
                        minimal = cand;
                        minimal_msg = msg;
                        progressed = true;
                        break;
                    }
                }
                if !progressed {
                    break;
                }
            }
            (minimal, minimal_msg, evals)
        };

    let persist_path = match (manifest_dir, config.failure_persistence) {
        (Some(dir), true) => Some(regression_file(dir, test_name)),
        _ => None,
    };
    // Replay persisted regression seeds first: a fix is validated against
    // the exact recorded failures before any fresh generation runs.
    if let Some(path) = &persist_path {
        for seed in load_regression_seeds(path) {
            let mut case_rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut case_rng);
            match eval(value.clone()) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(original_msg) => {
                    let original_msg = original_msg.to_string();
                    let (minimal, minimal_msg, evals) =
                        shrink_minimal(&mut eval, value, &original_msg);
                    panic!(
                        "{test_name}: persisted regression (seed {seed:#018x}, from \
                         {path:?}) still fails:\n{original_msg}\n\
                         minimal failing input after {evals} shrink evaluations: \
                         {minimal:?}\n{minimal_msg}"
                    );
                }
            }
        }
    }

    let mut rng = TestRng::from_name(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        // Fork a per-case stream so a failure can be replayed in isolation.
        let case_seed = rng.next_u64();
        let mut case_rng = TestRng::from_seed(case_seed);
        case_index += 1;
        let value = strategy.generate(&mut case_rng);
        match eval(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(original_msg)) => {
                // Record the replay seed BEFORE shrinking: even a shrink
                // that itself misbehaves leaves the regression on disk.
                if let Some(path) = &persist_path {
                    persist_regression_seed(path, test_name, case_seed);
                }
                let (minimal, minimal_msg, evals) =
                    shrink_minimal(&mut eval, value, &original_msg);
                panic!(
                    "{test_name}: property failed at case {case_index} \
                     (seed {case_seed:#018x}):\n{original_msg}\n\
                     minimal failing input after {evals} shrink evaluations: \
                     {minimal:?}\n{minimal_msg}"
                );
            }
        }
    }
}
