//! Dependency-free stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small real implementation of the proptest API surface its tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter` combinators;
//! * [`prelude::any`] for the primitive types, byte arrays, and
//!   [`sample::Index`];
//! * numeric range strategies (`0u64..100`, `0.0f64..1.0`, `1u8..=255`);
//! * regex-lite string strategies (`"[a-z]{1,12}"`, `"\\PC{0,200}"`);
//! * [`collection::vec`], [`collection::btree_map`], [`option::of`],
//!   [`bool::ANY`], [`Just`];
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`]-family and [`prop_assume!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike a mock, cases really are generated from a deterministic per-test
//! RNG and assertions really fail the test, failing inputs are
//! **greedily shrunk**: integers step toward zero (or the range floor),
//! vectors and strings halve and drop elements, tuples shrink one slot at a
//! time, and the failure report carries the minimal input alongside the
//! replay seed. Failures also **persist**: the replay seed is appended to
//! `proptest-regressions/<test>.txt` next to the crate under test
//! (upstream's `cc <seed>` file format) and persisted seeds replay *first*
//! on the next run, so a fix is checked against the exact regression
//! before fresh generation (`ProptestConfig::failure_persistence` opts
//! out). Known gaps versus upstream:
//!
//! * **greedy, not tree-based shrinking** — candidates come from
//!   [`Strategy::shrink`] and the runner takes the first that still fails
//!   (bounded evaluation budget), so the reported input is a local minimum;
//!   `prop_map`-derived strategies (e.g. `prop_compose!`) do not shrink
//!   through the mapping;
//! * **narrower distributions** — `any::<char>()` is printable ASCII, and
//!   `any::<f64>()` mixes wide-magnitude finite values with an overweighted
//!   edge set (±0.0, NaN, ±∞, `MIN_POSITIVE`, `MAX`, `MIN`) rather than
//!   upstream's full bit-pattern coverage.
//!
//! Swap the workspace `proptest` dependency back to crates.io for all of
//! these.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Strategies for collections (`vec`, `btree_map`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                self.lo
            } else {
                self.lo + (rng.next_u64() as usize) % (self.hi - self.lo + 1)
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        /// Shrink structurally first — halve, drop the last element — down
        /// to the minimum size, then element-wise through the element
        /// strategy (so a `vec` of integers converges toward zeros).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let n = value.len();
            let lo = self.size.lo;
            let mut out: Vec<Self::Value> = Vec::new();
            if n > lo {
                let half = (n / 2).max(lo);
                if half < n {
                    out.push(value[..half].to_vec());
                }
                if n - 1 > half {
                    out.push(value[..n - 1].to_vec());
                }
            }
            for (i, elem) in value.iter().enumerate().take(64) {
                for cand in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// Strategy producing a `BTreeMap` from key and value strategies.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate maps with approximately `size` entries (duplicate generated
    /// keys collapse, so the realized size may be smaller).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Strategies for `Option` values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<T>` from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Strategies for `bool` values.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling helpers (mirrors `proptest::sample`).
pub mod sample {
    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection of as-yet-unknown length.
    ///
    /// Generated by `any::<Index>()`; call [`Index::index`] with the
    /// collection length to resolve it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolve to a concrete index in `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index called with an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    // Mirrors proptest's `pub use crate as prop;` so `prop::bool::ANY`,
    // `prop::sample::Index`, `prop::collection::vec` resolve.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Run `cases` property-test cases: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_with_config! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_with_config! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_config {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($arg_strat,)+);
                $crate::test_runner::run_cases(
                    &config,
                    option_env!("CARGO_MANIFEST_DIR"),
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategy,
                    |($($arg_pat,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Compose named argument strategies into a derived-value strategy:
/// `prop_compose! { fn arb()(x in strat, ..) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($params:tt)* )
                 ( $($field_pat:pat in $field_strat:expr),+ $(,)? )
                 -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($field_strat,)+),
                move |($($field_pat,)+)| $body,
            )
        }
    };
}

/// Choose uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( Box::new($strat) as Box<dyn $crate::Strategy<Value = _>> ),+
        ])
    };
}

/// Assert inside a proptest body; failure fails only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two expressions are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert two expressions are unequal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`\n{}",
                left,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discard the current case (it neither passes nor fails) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = (1u8..40).generate(&mut rng);
            assert!((1..40).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (5u64..=5).generate(&mut rng);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn signed_ranges_spanning_half_the_domain_stay_in_bounds() {
        let mut rng = TestRng::from_name("signed-ranges");
        let mut saw_low = false;
        for _ in 0..400 {
            let v = (i64::MIN..0i64).generate(&mut rng);
            assert!(v < 0, "generated {v} outside i64::MIN..0");
            saw_low |= v < i64::MIN / 2;
            // The full-width inclusive range must not overflow its span.
            let _ = (i64::MIN..=i64::MAX).generate(&mut rng);
            let w = (-128i8..=127).generate(&mut rng);
            let _ = w;
        }
        assert!(saw_low, "lower half of the range never sampled");
    }

    #[test]
    fn string_pattern_respects_class_and_len() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..100 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = "\\PC{0,20}".generate(&mut rng);
            assert!(p.chars().count() <= 20);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn collections_and_option_compose() {
        let mut rng = TestRng::from_name("collections");
        let v = crate::collection::vec(any::<u8>(), 3..5).generate(&mut rng);
        assert!(v.len() == 3 || v.len() == 4);
        let m = crate::collection::btree_map("[a-z]{1,4}", any::<u64>(), 0..6).generate(&mut rng);
        assert!(m.len() < 6);
        let _ = crate::option::of(any::<u8>()).generate(&mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_machinery_works(v in any::<u64>(), s in "[a-z]{1,8}",
                                     xs in prop::collection::vec(any::<u8>(), 0..16),
                                     flag in prop::bool::ANY,
                                     idx in any::<prop::sample::Index>()) {
            prop_assert!(s.len() <= 8);
            prop_assert_eq!(v, v);
            prop_assert_ne!(s.len(), 0);
            if !xs.is_empty() {
                let _ = xs[idx.index(xs.len())];
            }
            prop_assume!(flag || !flag);
        }
    }

    // Deliberately failing properties, wrapped in catch_unwind by the
    // shrinking tests below: the panic message must carry the *minimal*
    // failing input, not just a replay seed. Persistence is off — these
    // failures are the test fixture, not regressions to record.
    proptest! {
        #![proptest_config(ProptestConfig {
            failure_persistence: false,
            ..ProptestConfig::with_cases(64)
        })]

        fn fails_at_17_or_more(v in 0u64..1000) {
            prop_assert!(v < 17);
        }

        fn fails_on_len_5_or_more(xs in prop::collection::vec(any::<u8>(), 0..40)) {
            prop_assert!(xs.len() < 5);
        }
    }

    fn failure_message(f: fn()) -> String {
        let payload = std::panic::catch_unwind(f).expect_err("property must fail");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a String message")
    }

    #[test]
    fn shrinking_minimizes_integers_toward_the_floor() {
        let msg = failure_message(fails_at_17_or_more);
        assert!(
            msg.contains("minimal failing input"),
            "no shrink report in: {msg}"
        );
        assert!(
            msg.contains("(17,)"),
            "expected the minimal counterexample 17, got: {msg}"
        );
    }

    #[test]
    fn shrinking_halves_vecs_and_zeroes_elements() {
        let msg = failure_message(fails_on_len_5_or_more);
        assert!(
            msg.contains("[0, 0, 0, 0, 0]"),
            "expected the minimal 5-element zero vec, got: {msg}"
        );
    }

    #[test]
    fn integer_shrink_candidates_move_toward_zero() {
        assert_eq!(<u64 as Arbitrary>::shrink(&0), Vec::<u64>::new());
        assert_eq!(<u64 as Arbitrary>::shrink(&10), vec![0, 5, 9]);
        assert_eq!(<i64 as Arbitrary>::shrink(&-10), vec![0, -5, -9]);
        // Range strategies respect their floor instead of zero.
        assert_eq!(Strategy::shrink(&(5u64..100), &9), vec![5, 7, 8]);
        assert!(Strategy::shrink(&(5u64..100), &5).is_empty());
        // Signed ranges clamp the target into range (here: floor 3).
        assert_eq!(Strategy::shrink(&(3i64..100), &3), Vec::<i64>::new());
        assert!(Strategy::shrink(&(3i64..100), &10).contains(&3));
        // Extremes must not overflow.
        let _ = Strategy::shrink(&(i64::MIN..=i64::MAX), &i64::MIN);
    }

    #[test]
    fn failure_persistence_records_and_replays_seeds() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-shim-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.to_string_lossy().into_owned();
        let config = ProptestConfig::with_cases(64);
        let strategy = 0u64..1000;

        // First run: the failure writes its replay seed.
        let panicked = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &config,
                Some(&manifest),
                "shim::persist_demo",
                &strategy,
                |v| {
                    if v >= 17 {
                        Err(TestCaseError::fail("too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        assert!(panicked.is_err(), "property must fail");
        let file = dir.join("proptest-regressions").join("shim-persist_demo.txt");
        let text = std::fs::read_to_string(&file).expect("regression file written");
        assert!(text.lines().any(|l| l.starts_with("cc 0x")), "no seed in: {text}");

        // Second run with ZERO fresh cases: only the persisted seed can
        // fire — proving persisted seeds replay first.
        let replay_only = ProptestConfig::with_cases(0);
        let replayed = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &replay_only,
                Some(&manifest),
                "shim::persist_demo",
                &strategy,
                |v| {
                    if v >= 17 {
                        Err(TestCaseError::fail("too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = replayed
            .expect_err("persisted seed must replay and fail")
            .downcast_ref::<String>()
            .cloned()
            .unwrap();
        assert!(msg.contains("persisted regression"), "wrong failure: {msg}");

        // A fixed property replays the seed, passes, and keeps the file
        // (the recommendation is to check regressions in).
        crate::test_runner::run_cases(
            &config,
            Some(&manifest),
            "shim::persist_demo",
            &strategy,
            |_| Ok(()),
        );
        assert!(file.exists());

        // Duplicate failures do not duplicate seeds.
        let before = std::fs::read_to_string(&file).unwrap();
        let _ = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &ProptestConfig { failure_persistence: true, ..ProptestConfig::with_cases(4) },
                Some(&manifest),
                "shim::persist_demo",
                &strategy,
                |_| Err(TestCaseError::fail("always")),
            );
        });
        let after = std::fs::read_to_string(&file).unwrap();
        let seeds: Vec<&str> = after.lines().filter(|l| l.starts_with("cc ")).collect();
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len(), "duplicate seeds persisted: {after}");
        assert!(after.len() >= before.len());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    prop_compose! {
        fn arb_pair()(a in any::<u8>(), b in "[a-z]{1,4}") -> (u8, String) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn compose_and_oneof_work(pair in arb_pair(),
                                  choice in prop_oneof![Just(1u8), Just(2u8), 5u8..9]) {
            prop_assert!(pair.1.len() <= 4);
            prop_assert!(choice == 1 || choice == 2 || (5u8..9).contains(&choice));
        }
    }
}
