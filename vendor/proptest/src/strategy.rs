//! The [`Strategy`] trait and the built-in strategies: `any`, numeric
//! ranges, regex-lite string patterns, `Just`, tuples, and combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type, driven by the test RNG.
///
/// This mirrors `proptest::strategy::Strategy` with a simplified shrinking
/// model: instead of upstream's lazy value trees, [`Strategy::shrink`]
/// proposes a batch of strictly-simpler candidates for a failing value and
/// the runner greedily descends while the property keeps failing.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest-first: integers step
    /// toward zero (or the range floor), vectors halve and drop elements.
    /// The default — no candidates — makes a strategy unshrinkable, which
    /// is always sound (failures then report the generated value as-is).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retain only values for which `f` returns true (retries generation;
    /// panics after 1000 consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Simplify through the inner strategy, keeping the predicate true.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// Always produce a clone of one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of a common value type
/// (the expansion target of [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the candidate strategies. Panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() as usize) % self.options.len();
        self.options[idx].generate(rng)
    }
    // No shrinking: the producing branch is unknown, and another branch's
    // simplification of the value (e.g. a different range's midpoint) can
    // land outside every branch's domain — the runner would then report a
    // "minimal" input the strategy can never generate.
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications (see [`Strategy::shrink`]). Default: none.
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u128() as $ty
                }
                /// Greedy candidates toward zero: 0 itself, the midpoint,
                /// and one unit closer.
                #[allow(unused_comparisons)]
                fn shrink(value: &Self) -> Vec<Self> {
                    let v = *value;
                    if v == 0 {
                        return Vec::new();
                    }
                    let mut out = vec![0 as $ty];
                    let half = v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != half {
                        out.push(step);
                    }
                    out
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // One draw in eight is an edge value; upstream proptest likewise
        // overweights the special cases float code mishandles.
        if rng.next_u64() % 8 == 0 {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,
                f64::MAX,
                f64::MIN,
            ];
            return EDGES[(rng.next_u64() % EDGES.len() as u64) as usize];
        }
        // Otherwise finite values spanning a wide magnitude range.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * 10f64.powi(exp)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}

/// Shrink an unsigned in-range value toward the range floor `lo`.
fn shrink_toward_floor<T>(v: T, lo: T) -> Vec<T>
where
    T: Copy + PartialOrd + core::ops::Sub<Output = T> + core::ops::Add<Output = T> + core::ops::Div<Output = T> + From<u8>,
{
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = lo + (v - lo) / T::from(2u8);
    if mid > lo && mid < v {
        out.push(mid);
    }
    let step = v - T::from(1u8);
    if step > lo && step != mid {
        out.push(step);
    }
    out
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.end > self.start, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u128() % span) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_toward_floor(*value, self.start)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(hi >= lo, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    if span == 0 {
                        // Full-width integer range: any value is in range.
                        return rng.next_u128() as $ty;
                    }
                    lo + (rng.next_u128() % span) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_toward_floor(*value, *self.start())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize);

/// Shrink a signed in-range value toward zero (clamped into `[lo, hi]`).
/// i128 arithmetic sidesteps midpoint/step overflow at the type extremes.
fn shrink_signed_toward_zero(v: i128, lo: i128, hi: i128) -> Vec<i128> {
    let target = 0i128.clamp(lo, hi);
    if v == target {
        return Vec::new();
    }
    let mut out = vec![target];
    let mid = (v + target) / 2;
    if mid != target && mid != v {
        out.push(mid);
    }
    let step = if v > target { v - 1 } else { v + 1 };
    if step != target && step != mid {
        out.push(step);
    }
    out
}

macro_rules! signed_range_strategy {
    ($($ty:ty : $via:ty : $uvia:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.end > self.start, "empty range strategy");
                    // The wrapped difference reinterpreted as unsigned is the
                    // exact span, even when it exceeds the signed maximum
                    // (e.g. i64::MIN..0); sign-extending it would not be.
                    let span = (self.end as $via).wrapping_sub(self.start as $via)
                        as $uvia as u128;
                    let offset = (rng.next_u128() % span) as $uvia as $via;
                    ((self.start as $via).wrapping_add(offset)) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_signed_toward_zero(
                        *value as i128,
                        self.start as i128,
                        self.end as i128 - 1,
                    )
                    .into_iter()
                    .map(|v| v as $ty)
                    .collect()
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(hi >= lo, "empty range strategy");
                    let span = ((hi as $via).wrapping_sub(lo as $via) as $uvia as u128) + 1;
                    let offset = (rng.next_u128() % span) as $uvia as $via;
                    ((lo as $via).wrapping_add(offset)) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_signed_toward_zero(
                        *value as i128,
                        *self.start() as i128,
                        *self.end() as i128,
                    )
                    .into_iter()
                    .map(|v| v as $ty)
                    .collect()
                }
            }
        )*
    };
}

signed_range_strategy!(i8: i64: u64, i16: i64: u64, i32: i64: u64, i64: i64: u64, isize: i64: u64);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.end > self.start, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $ty) * (self.end - self.start);
                    // unit_f64 is in [0, 1); clamp paranoia for rounding.
                    if v >= self.end { self.start } else { v }
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {
        $(
            // Component values must be `Clone` so shrinking can rebuild the
            // tuple with a single slot simplified; every strategy the
            // workspace composes generates `Clone` values.
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*
    };
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

/// String literals are regex-lite string strategies: `"[a-z]{1,12}"`.
///
/// Supported syntax (the subset the workspace uses): a sequence of atoms,
/// each an explicit char class `[...]` (with `x-y` ranges, literal chars,
/// and a trailing or leading literal `-`), the escape `\PC` (any
/// non-control character), or a literal character; each atom optionally
/// followed by `{n}`, `{lo,hi}`, `*`, `+`, or `?`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.reps.pick(rng);
            for _ in 0..n {
                out.push(atom.class.pick(rng));
            }
        }
        out
    }
    /// Shrink by truncation down to the pattern's minimum length (halve,
    /// then drop one character) — but only for *single-atom* patterns
    /// (`"[a-z]{1,12}"`, `"\PC{0,200}"`, …), where any in-bounds prefix is
    /// itself a generatable instance. A multi-atom pattern's prefix can
    /// drop a required later atom entirely, producing a "minimal" input
    /// the strategy can never generate, so those do not shrink.
    fn shrink(&self, value: &String) -> Vec<String> {
        let atoms = parse_pattern(self);
        if atoms.len() != 1 {
            return Vec::new();
        }
        let min_len: usize = atoms.iter().map(|a| a.reps.lo as usize).sum();
        let n = value.chars().count();
        if n <= min_len {
            return Vec::new();
        }
        let mut out = Vec::new();
        let half = (n / 2).max(min_len);
        if half < n {
            out.push(value.chars().take(half).collect());
        }
        if n - 1 > half {
            out.push(value.chars().take(n - 1).collect());
        }
        out
    }
}

#[derive(Debug, Clone)]
enum CharClass {
    /// Explicit set of alternatives, expanded from `[...]`.
    Set(Vec<(char, char)>),
    /// `\PC`: any non-control printable-ish character.
    NonControl,
}

impl CharClass {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Set(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                    .sum();
                let mut k = rng.next_u64() % total.max(1);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if k < span {
                        return char::from_u32(*lo as u32 + k as u32).unwrap_or(*lo);
                    }
                    k -= span;
                }
                ranges[0].0
            }
            CharClass::NonControl => {
                // Mostly ASCII printable, occasionally a BMP non-control char.
                if rng.next_u64() % 8 == 0 {
                    loop {
                        let c = 0xA0 + (rng.next_u64() % 0xD7F5F) as u32;
                        if let Some(ch) = char::from_u32(c) {
                            if !ch.is_control() {
                                return ch;
                            }
                        }
                    }
                } else {
                    (0x20u8 + (rng.next_u64() % 95) as u8) as char
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Reps {
    lo: u32,
    hi: u32,
}

impl Reps {
    fn pick(&self, rng: &mut TestRng) -> u32 {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + (rng.next_u64() % u64::from(self.hi - self.lo + 1)) as u32
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    class: CharClass,
    reps: Reps,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated char class in pattern {pattern:?}"))
                    + i;
                let body: Vec<char> = chars[i + 1..close].to_vec();
                i = close + 1;
                CharClass::Set(parse_class(&body, pattern))
            }
            '\\' => {
                let rest: String = chars[i..].iter().collect();
                if rest.starts_with("\\PC") {
                    i += 3;
                    CharClass::NonControl
                } else if chars.len() > i + 1 {
                    let c = chars[i + 1];
                    i += 2;
                    CharClass::Set(vec![(c, c)])
                } else {
                    panic!("dangling escape in pattern {pattern:?}");
                }
            }
            c => {
                i += 1;
                CharClass::Set(vec![(c, c)])
            }
        };
        let reps = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition lower bound"),
                            hi.trim().parse().expect("bad repetition upper bound"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    };
                    Reps { lo, hi }
                }
                '*' => {
                    i += 1;
                    Reps { lo: 0, hi: 8 }
                }
                '+' => {
                    i += 1;
                    Reps { lo: 1, hi: 8 }
                }
                '?' => {
                    i += 1;
                    Reps { lo: 0, hi: 1 }
                }
                _ => Reps { lo: 1, hi: 1 },
            }
        } else {
            Reps { lo: 1, hi: 1 }
        };
        atoms.push(Atom { class, reps });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
    assert!(!body.is_empty(), "empty char class in pattern {pattern:?}");
    let mut ranges = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            assert!(
                body[j] <= body[j + 2],
                "inverted char range in pattern {pattern:?}"
            );
            ranges.push((body[j], body[j + 2]));
            j += 3;
        } else {
            ranges.push((body[j], body[j]));
            j += 1;
        }
    }
    ranges
}
