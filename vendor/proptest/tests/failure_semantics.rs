//! The shim's failure paths must actually fail: a property suite whose
//! assertions can't fire is vacuous.

use proptest::prelude::*;

proptest! {
    // These failures are the point of the test, not regressions to record
    // (and recording them would make every later run replay-panic with a
    // different message).
    #![proptest_config(ProptestConfig {
        failure_persistence: false,
        ..ProptestConfig::default()
    })]

    #[test]
    #[should_panic(expected = "property failed")]
    fn violated_property_panics(v in any::<u64>()) {
        prop_assert_eq!(v, v.wrapping_add(1));
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn unsatisfiable_assumption_panics(v in any::<u64>()) {
        prop_assume!(v != v);
        let _ = v;
    }

    #[test]
    #[should_panic(expected = "plain asserts escape the runner")]
    fn body_panics_propagate(v in 0u64..10) {
        assert!(v >= 10, "plain asserts escape the runner too");
    }
}
