//! Dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal implementation of the criterion API surface its benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`], `b.iter` / `b.iter_batched`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Unlike a mock, this shim *measures*: every benchmark runs a calibrated
//! timing loop (warm-up, then enough iterations to fill a measurement
//! window) and reports the median per-iteration wall-clock time, plus
//! derived throughput when one was declared. Name filtering is honored:
//! `cargo bench -- <substring>` runs only matching benchmarks.
//!
//! Baselines are honored too, mirroring real criterion's flags:
//! `cargo bench -- --save-baseline <name>` records every median to
//! `target/criterion-baselines/<name>.tsv` at the workspace root, and
//! `cargo bench -- --baseline <name>` compares the run against a saved
//! baseline, printing per-benchmark deltas and **failing the process**
//! (exit 1) when any median regresses by more than the allowed percentage
//! (`CRITERION_REGRESSION_PCT`, default 30). That makes perf claims in PRs
//! mechanically checkable. There is still no statistical analysis, outlier
//! rejection, or HTML report — swap the workspace `criterion` dependency
//! back to crates.io for those.

use std::collections::HashMap;
use std::fmt;
use std::hint::black_box as std_black_box;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batches are sized in [`Bencher::iter_batched`].
///
/// The shim runs one routine call per batch regardless of the hint; the
/// variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch size chosen so setup cost amortizes away.
    SmallInput,
    /// Large input: one routine call per setup call.
    LargeInput,
    /// Each batch is exactly one iteration.
    PerIteration,
}

/// Declared throughput of a benchmark, used to derive rate units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark decodes this many bytes per iteration.
    BytesDecimal(u64),
}

/// Identifier for one benchmark within a group: a function part and an
/// optional parameter part, rendered `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter value.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.function, p),
            (false, None) => write!(f, "{}", self.function),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Median per-iteration time recorded by the last `iter*` call.
    last_per_iter: Option<Duration>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            warm_up,
            measurement,
            last_per_iter: None,
        }
    }

    /// Time `routine`, called repeatedly until the measurement window fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter_estimate = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        // Measurement: sample batches sized from the estimate, keep medians.
        let batch = (self.measurement.as_nanos() / 16 / per_iter_estimate.max(1)).clamp(1, 1 << 20) as u64;
        let mut samples: Vec<Duration> = Vec::new();
        let meas_start = Instant::now();
        while meas_start.elapsed() < self.measurement || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(t.elapsed() / batch as u32);
        }
        samples.sort();
        self.last_per_iter = Some(samples[samples.len() / 2]);
    }

    /// Time `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std_black_box(routine(input));
            warm_iters += 1;
        }
        let _ = warm_iters;

        let mut samples: Vec<Duration> = Vec::new();
        let meas_start = Instant::now();
        while meas_start.elapsed() < self.measurement || samples.is_empty() {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            samples.push(t.elapsed());
        }
        samples.sort();
        self.last_per_iter = Some(samples[samples.len() / 2]);
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn format_throughput(tp: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match tp {
        Throughput::Bytes(n) => {
            // Binary units with binary thresholds, as real criterion does.
            let rate = n as f64 / secs;
            if rate >= (1u64 << 30) as f64 {
                format!("{:.3} GiB/s", rate / (1u64 << 30) as f64)
            } else if rate >= (1u64 << 20) as f64 {
                format!("{:.3} MiB/s", rate / (1u64 << 20) as f64)
            } else {
                format!("{:.3} KiB/s", rate / 1024.0)
            }
        }
        Throughput::BytesDecimal(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e9 {
                format!("{:.3} GB/s", rate / 1e9)
            } else if rate >= 1e6 {
                format!("{:.3} MB/s", rate / 1e6)
            } else {
                format!("{:.3} KB/s", rate / 1e3)
            }
        }
        Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / secs),
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        // Far shorter than real criterion defaults: the shim favors fast
        // `cargo bench` runs over statistical power.
        Settings {
            warm_up: Duration::from_millis(30),
            measurement: Duration::from_millis(120),
        }
    }
}

/// Parsed benchmark CLI: filter plus baseline flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Cli {
    /// Substring filter (`cargo bench -- <substring>`).
    filter: Option<String>,
    /// `--save-baseline <name>`: record this run's medians.
    save_baseline: Option<String>,
    /// `--baseline <name>`: compare against a saved run, fail on regression.
    baseline: Option<String>,
    /// Cargo passes `--bench` only in bench mode; without it (e.g.
    /// `cargo test --benches`) each benchmark runs once, as upstream does.
    bench_mode: bool,
}

fn parse_cli<I: Iterator<Item = String>>(args: I) -> Cli {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--bench" {
            cli.bench_mode = true;
        } else if arg == "--save-baseline" {
            cli.save_baseline = args.next();
        } else if let Some(name) = arg.strip_prefix("--save-baseline=") {
            cli.save_baseline = Some(name.to_string());
        } else if arg == "--baseline" {
            cli.baseline = args.next();
        } else if let Some(name) = arg.strip_prefix("--baseline=") {
            cli.baseline = Some(name.to_string());
        } else if !arg.starts_with('-') && cli.filter.is_none() {
            cli.filter = Some(arg);
        }
    }
    cli
}

fn cli() -> &'static Cli {
    static CLI: OnceLock<Cli> = OnceLock::new();
    CLI.get_or_init(|| parse_cli(std::env::args().skip(1)))
}

/// Medians recorded this process, in run order, for baseline save/compare.
fn results() -> &'static Mutex<Vec<(String, u128)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, u128)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Custom scalar metrics recorded this process, in run order. Benches use
/// these for derived numbers a timing median cannot express — throughput at
/// a thread count, resident bytes — and the `CRITERION_JSON` output mode
/// emits them alongside the medians.
fn metrics() -> &'static Mutex<Vec<(String, f64, String)>> {
    static METRICS: OnceLock<Mutex<Vec<(String, f64, String)>>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record a named scalar metric (e.g. `("append/tiered/threads/4",
/// 51_234.0, "blk/s")`). Printed immediately and included in the
/// `CRITERION_JSON` artifact written by [`finalize`].
pub fn record_metric(name: &str, value: f64, unit: &str) {
    println!("metric: {name:<52} {value:>14.1} {unit}");
    metrics()
        .lock()
        .expect("metrics lock")
        .push((name.to_string(), value, unit.to_string()));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable run artifact: every timing median (ns) and
/// every custom metric, in run order.
fn render_json(medians: &[(String, u128)], metrics: &[(String, f64, String)]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, ns)) in medians.iter().enumerate() {
        let sep = if i + 1 < medians.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {ns}}}{sep}\n",
            json_escape(name)
        ));
    }
    out.push_str("  ],\n  \"metrics\": [\n");
    for (i, (name, value, unit)) in metrics.iter().enumerate() {
        let sep = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {value}, \"unit\": \"{}\"}}{sep}\n",
            json_escape(name),
            json_escape(unit)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Pull a `"key": "string"` field out of one artifact line, honoring the
/// escapes [`json_escape`] emits.
fn extract_json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(json_unescape(&rest[..end?]))
}

fn extract_json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse an artifact previously written by [`render_json`] back into its
/// benchmark and metric lists (order preserved). Tolerant of anything
/// else: unrecognized lines are skipped.
fn parse_json_artifact(text: &str) -> (Vec<(String, u128)>, Vec<(String, f64, String)>) {
    let mut benches = Vec::new();
    let mut mets = Vec::new();
    for line in text.lines() {
        let Some(name) = extract_json_str(line, "name") else {
            continue;
        };
        if let Some(ns) = extract_json_num(line, "median_ns") {
            benches.push((name, ns as u128));
        } else if let Some(value) = extract_json_num(line, "value") {
            let unit = extract_json_str(line, "unit").unwrap_or_default();
            mets.push((name, value, unit));
        }
    }
    (benches, mets)
}

/// Merge `current` entries into `existing` by name: same name replaces in
/// place (a re-run refreshes its numbers), new names append. Entries only
/// present in `existing` survive — this is how one bench binary updates a
/// shared artifact without clobbering another binary's results.
fn merge_by_name<T: Clone>(
    existing: Vec<(String, T)>,
    current: &[(String, T)],
) -> Vec<(String, T)> {
    let mut out = existing;
    for (name, val) in current {
        match out.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = val.clone(),
            None => out.push((name.clone(), val.clone())),
        }
    }
    out
}

/// Where baselines live: `CRITERION_BASELINE_DIR`, else
/// `<workspace root>/target/criterion-baselines` (found by walking up to
/// the nearest `Cargo.lock`), else `target/criterion-baselines` under cwd.
fn baseline_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CRITERION_BASELINE_DIR") {
        return PathBuf::from(dir);
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("criterion-baselines");
        }
        if !cur.pop() {
            return PathBuf::from("target/criterion-baselines");
        }
    }
}

fn save_baseline(name: &str, medians: &[(String, u128)]) -> std::io::Result<PathBuf> {
    let dir = baseline_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.tsv"));
    let mut f = std::fs::File::create(&path)?;
    for (bench, ns) in medians {
        writeln!(f, "{bench}\t{ns}")?;
    }
    Ok(path)
}

fn load_baseline(name: &str) -> std::io::Result<HashMap<String, u128>> {
    let path = baseline_dir().join(format!("{name}.tsv"));
    let text = std::fs::read_to_string(&path)?;
    let mut out = HashMap::new();
    for line in text.lines() {
        if let Some((bench, ns)) = line.rsplit_once('\t') {
            if let Ok(ns) = ns.trim().parse::<u128>() {
                out.insert(bench.to_string(), ns);
            }
        }
    }
    Ok(out)
}

/// Maximum tolerated median regression, percent.
fn regression_threshold_pct() -> f64 {
    std::env::var("CRITERION_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0)
}

/// Compare a run against a baseline; returns human-readable lines for every
/// benchmark and the subset that regressed beyond `threshold_pct`.
fn compare_medians(
    current: &[(String, u128)],
    baseline: &HashMap<String, u128>,
    threshold_pct: f64,
) -> (Vec<String>, Vec<String>) {
    let mut report = Vec::new();
    let mut regressions = Vec::new();
    for (bench, ns) in current {
        match baseline.get(bench) {
            Some(&base_ns) if base_ns > 0 => {
                let delta = (*ns as f64 - base_ns as f64) / base_ns as f64 * 100.0;
                let verdict = if delta > threshold_pct {
                    regressions.push(format!("{bench}: {base_ns} ns → {ns} ns ({delta:+.1}%)"));
                    "REGRESSED"
                } else if delta < -threshold_pct {
                    "improved"
                } else {
                    "ok"
                };
                report.push(format!(
                    "baseline: {bench:<52} {base_ns:>10} ns → {ns:>10} ns  {delta:+7.1}%  {verdict}"
                ));
            }
            _ => report.push(format!("baseline: {bench:<52} (new benchmark, no baseline)")),
        }
    }
    (report, regressions)
}

/// Save/compare this run's medians per the CLI flags. Called by
/// [`criterion_main!`] after every group has run; exits non-zero when a
/// `--baseline` comparison finds a regression beyond the threshold.
pub fn finalize() {
    let cli = cli();
    let medians = results().lock().expect("results lock").clone();
    // JSON artifact first: a later baseline-regression exit must not lose
    // the measurements that demonstrate the regression.
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let recorded = metrics().lock().expect("metrics lock").clone();
            let body = render_json(&medians, &recorded);
            match std::fs::write(&path, body) {
                Ok(()) => println!(
                    "json: wrote {path} ({} benchmarks, {} metrics)",
                    medians.len(),
                    recorded.len()
                ),
                Err(e) => eprintln!("failed to write CRITERION_JSON={path}: {e}"),
            }
        }
    }
    // `CRITERION_JSON_MERGE=<path>` folds this run into an existing
    // artifact instead of replacing it: entries merge by name, so one
    // bench binary (e.g. mixed_rw) can extend the tracked file another
    // binary (e.g. ledger_scale) owns without clobbering its numbers.
    if let Ok(path) = std::env::var("CRITERION_JSON_MERGE") {
        if !path.is_empty() {
            let recorded = metrics().lock().expect("metrics lock").clone();
            let (old_benches, old_metrics) = match std::fs::read_to_string(&path) {
                Ok(text) => parse_json_artifact(&text),
                Err(_) => (Vec::new(), Vec::new()),
            };
            let benches = merge_by_name(old_benches, &medians);
            let mets: Vec<(String, (f64, String))> = merge_by_name(
                old_metrics
                    .into_iter()
                    .map(|(n, v, u)| (n, (v, u)))
                    .collect(),
                &recorded
                    .iter()
                    .map(|(n, v, u)| (n.clone(), (*v, u.clone())))
                    .collect::<Vec<_>>(),
            );
            let mets: Vec<(String, f64, String)> =
                mets.into_iter().map(|(n, (v, u))| (n, v, u)).collect();
            let body = render_json(&benches, &mets);
            match std::fs::write(&path, body) {
                Ok(()) => println!(
                    "json: merged into {path} ({} benchmarks, {} metrics total)",
                    benches.len(),
                    mets.len()
                ),
                Err(e) => eprintln!("failed to write CRITERION_JSON_MERGE={path}: {e}"),
            }
        }
    }
    if let Some(name) = &cli.save_baseline {
        match save_baseline(name, &medians) {
            Ok(path) => println!("baseline '{name}' saved: {} ({} benchmarks)", path.display(), medians.len()),
            Err(e) => eprintln!("failed to save baseline '{name}': {e}"),
        }
    }
    if let Some(name) = &cli.baseline {
        let baseline = match load_baseline(name) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to load baseline '{name}': {e}");
                std::process::exit(1);
            }
        };
        let threshold = regression_threshold_pct();
        let (report, regressions) = compare_medians(&medians, &baseline, threshold);
        for line in &report {
            println!("{line}");
        }
        if !regressions.is_empty() {
            eprintln!(
                "{} benchmark(s) regressed beyond {threshold}% against baseline '{name}':",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        println!("baseline '{name}': no median regression beyond {threshold}%");
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let cli = cli();
        let settings = if cli.bench_mode {
            Settings::default()
        } else {
            Settings {
                warm_up: Duration::ZERO,
                measurement: Duration::ZERO,
            }
        };
        Criterion {
            settings,
            filter: cli.filter.clone(),
        }
    }
}

impl Criterion {
    /// Configure the target measurement window (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    /// Configure the warm-up window (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim has no sample-count model.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.settings, &self.filter, name, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            filter: self.filter.clone(),
            _criterion: self,
            throughput: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    settings: &Settings,
    filter: &Option<String>,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if let Some(needle) = filter {
        if !name.contains(needle.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher::new(settings.warm_up, settings.measurement);
    f(&mut bencher);
    match bencher.last_per_iter {
        Some(per_iter) => {
            let mut line = format!("bench: {name:<52} {:>12}/iter", format_duration(per_iter));
            if let Some(tp) = throughput {
                line.push_str(&format!("  {:>14}", format_throughput(tp, per_iter)));
            }
            println!("{line}");
            results()
                .lock()
                .expect("results lock")
                .push((name.to_string(), per_iter.as_nanos()));
        }
        None => println!("bench: {name:<52} (no measurement recorded)"),
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    filter: Option<String>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim has no sample-count model.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Configure the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Configure the warm-up window for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let name = format!("{}/{}", self.name, id);
        run_one(&self.settings, &self.filter, &name, self.throughput, &mut f);
        self
    }

    /// Run a benchmark in this group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&self.settings, &self.filter, &name, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group. (The shim reports eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main`, mirroring `criterion::criterion_main!`.
///
/// After every group runs, [`finalize`] applies the `--save-baseline` /
/// `--baseline` flags (and exits non-zero on a median regression).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion::default().warm_up_time(Duration::from_millis(1));
        c = c.measurement_time(Duration::from_millis(2));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_renders_both_parts() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn cli_parses_filters_and_baseline_flags() {
        fn args<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
            v.iter().map(|s| s.to_string())
        }
        assert_eq!(
            parse_cli(args(&["--bench", "lookup"])),
            Cli {
                filter: Some("lookup".into()),
                bench_mode: true,
                ..Cli::default()
            }
        );
        assert_eq!(
            parse_cli(args(&["--bench", "--save-baseline", "main", "scan"])),
            Cli {
                filter: Some("scan".into()),
                save_baseline: Some("main".into()),
                bench_mode: true,
                ..Cli::default()
            }
        );
        assert_eq!(
            parse_cli(args(&["--baseline=pr", "--bench"])),
            Cli {
                baseline: Some("pr".into()),
                bench_mode: true,
                ..Cli::default()
            }
        );
        // A baseline name must not be mistaken for the filter.
        assert_eq!(parse_cli(args(&["--baseline", "main"])).filter, None);
    }

    #[test]
    fn baseline_round_trips_and_detects_regressions() {
        let dir = std::env::temp_dir().join(format!(
            "criterion-baseline-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let medians = vec![
            ("group/fast".to_string(), 1_000u128),
            ("group/slow".to_string(), 50_000u128),
        ];
        // Round-trip through the on-disk format (path built directly so
        // the test does not depend on the process env).
        let path = dir.join("main.tsv");
        let mut f = std::fs::File::create(&path).unwrap();
        for (b, ns) in &medians {
            writeln!(f, "{b}\t{ns}").unwrap();
        }
        drop(f);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut loaded = HashMap::new();
        for line in text.lines() {
            let (b, ns) = line.rsplit_once('\t').unwrap();
            loaded.insert(b.to_string(), ns.parse::<u128>().unwrap());
        }
        assert_eq!(loaded.len(), 2);

        // Within threshold: no regression.
        let current = vec![
            ("group/fast".to_string(), 1_100u128),
            ("group/slow".to_string(), 40_000u128),
        ];
        let (report, regressions) = compare_medians(&current, &loaded, 30.0);
        assert_eq!(report.len(), 2);
        assert!(regressions.is_empty());

        // 2x slower: regression flagged.
        let current = vec![("group/fast".to_string(), 2_000u128)];
        let (_, regressions) = compare_medians(&current, &loaded, 30.0);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("group/fast"));

        // Unknown benchmark: reported as new, never a regression.
        let current = vec![("group/brand-new".to_string(), 99u128)];
        let (report, regressions) = compare_medians(&current, &loaded, 30.0);
        assert!(report[0].contains("no baseline"));
        assert!(regressions.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_artifact_renders_medians_and_metrics() {
        let medians = vec![
            ("group/append".to_string(), 1_234u128),
            ("group/\"quoted\"".to_string(), 99u128),
        ];
        let recorded = vec![(
            "append/threads/4".to_string(),
            51_234.5f64,
            "blk/s".to_string(),
        )];
        let body = render_json(&medians, &recorded);
        assert!(body.contains("\"name\": \"group/append\", \"median_ns\": 1234"));
        assert!(body.contains("\\\"quoted\\\""), "quotes must be escaped");
        assert!(body.contains("\"value\": 51234.5, \"unit\": \"blk/s\""));
        // Structure sanity: balanced braces/brackets, both arrays present.
        assert!(body.starts_with("{\n"));
        assert!(body.ends_with("}\n"));
        assert!(body.contains("\"benchmarks\": ["));
        assert!(body.contains("\"metrics\": ["));
        // Empty run still renders valid structure.
        let empty = render_json(&[], &[]);
        assert!(empty.contains("\"benchmarks\": [\n  ]"));
        assert!(empty.contains("\"metrics\": [\n  ]"));
    }

    #[test]
    fn json_artifact_parses_back_and_merges_by_name() {
        let medians = vec![
            ("group/append".to_string(), 1_234u128),
            ("group/\"quoted\"".to_string(), 99u128),
        ];
        let recorded = vec![
            ("append/threads/4".to_string(), 51_234.5f64, "blk/s".to_string()),
            ("cold_start/10k".to_string(), 12.5f64, "ms".to_string()),
        ];
        let body = render_json(&medians, &recorded);
        let (benches, mets) = parse_json_artifact(&body);
        assert_eq!(benches, medians, "benchmarks must round-trip");
        assert_eq!(mets, recorded, "metrics must round-trip, escapes included");

        // Merge: same name replaces, new name appends, others survive.
        let update = vec![("group/append".to_string(), 2_000u128)];
        let merged = merge_by_name(benches, &update);
        assert_eq!(merged[0], ("group/append".to_string(), 2_000u128));
        assert_eq!(merged.len(), 2);
        let fresh = vec![("mixed_rw/new".to_string(), 7u128)];
        let merged = merge_by_name(merged, &fresh);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[2].0, "mixed_rw/new");
    }

    #[test]
    fn group_runs_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.throughput(Throughput::Bytes(1024));
        let data = vec![1u8; 1024];
        group.bench_with_input(BenchmarkId::from_parameter(1024), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
