//! # blockprov
//!
//! Umbrella crate for the `blockprov` workspace — a from-scratch Rust
//! reproduction of the system families surveyed in *SOK: Blockchain for
//! Provenance* (Akbarfam & Maleki, VLDB 2024).
//!
//! The workspace is organized along the paper's three research questions:
//!
//! * **RQ1 (single-entity provenance)** — [`core`] provides a configurable
//!   [`core::ProvenanceLedger`] and a ProvChain-style cloud-storage auditor.
//! * **RQ2 (intra-chain collaboration)** — the domain crates [`sciwork`],
//!   [`supply`], [`health`], [`mlprov`] and [`forensics`] build collaborative
//!   provenance applications on the shared ledger substrate.
//! * **RQ3 (multi-chain collaboration)** — [`crosschain`] implements HTLC
//!   atomic swaps, notary committees, relay-chain verification, a
//!   ForensiCross-style bridge, and Vassago-style cross-chain provenance
//!   queries.
//!
//! Substrates (all implemented from scratch): [`wire`] (canonical binary
//! codec), [`crypto`] (SHA-256, Merkle trees, hash-based + group signatures,
//! range proofs), [`ledger`] (blocks/chain/mempool), [`consensus`] (PoW, PoS,
//! PBFT, Raft, PoA), [`simnet`] (discrete-event network simulator),
//! [`storage`] (content-addressed chunked storage with a replicated swarm —
//! the IPFS substitute), [`contracts`] (deterministic smart contracts) and
//! [`access`] (RBAC/ABAC/ledger views).
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! experiment index mapping every table and figure of the paper to a
//! regenerating bench target.
//!
//! ## Quickstart
//!
//! ```
//! use blockprov::core::{LedgerConfig, ProvenanceLedger};
//!
//! // A private, PoA-sealed provenance ledger for a single organization.
//! let mut ledger = ProvenanceLedger::open(LedgerConfig::private_default());
//! let actor = ledger.register_agent("alice").unwrap();
//! let file = ledger.register_entity("report.pdf", b"v1 contents").unwrap();
//! ledger.record_action(&actor, &file, blockprov::provenance::Action::Create).unwrap();
//! ledger.seal_block().unwrap();
//! assert!(ledger.verify_chain().is_ok());
//! ```

pub use blockprov_access as access;
pub use blockprov_consensus as consensus;
pub use blockprov_contracts as contracts;
pub use blockprov_core as core;
pub use blockprov_crosschain as crosschain;
pub use blockprov_crypto as crypto;
pub use blockprov_forensics as forensics;
pub use blockprov_health as health;
pub use blockprov_ledger as ledger;
pub use blockprov_mlprov as mlprov;
pub use blockprov_provenance as provenance;
pub use blockprov_sciwork as sciwork;
pub use blockprov_simnet as simnet;
pub use blockprov_storage as storage;
pub use blockprov_supply as supply;
pub use blockprov_wire as wire;
