#!/usr/bin/env bash
# The single verification entrypoint shared by CI and local builds.
#
# Runs the tier-1 command from ROADMAP.md (release build + full test
# suite) and additionally compiles every criterion bench target, so a
# bench-only breakage cannot slip past review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== benches compile: cargo bench --no-run =="
cargo bench --no-run

echo "verify.sh: all checks passed"
