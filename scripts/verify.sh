#!/usr/bin/env bash
# The single verification entrypoint shared by CI and local builds.
#
# Runs the tier-1 command from ROADMAP.md (release build + full test
# suite), re-runs the ingest-pipeline equivalence property on both the
# inline and the pooled validation paths, compiles every criterion bench
# target so a bench-only breakage cannot slip past review, and smoke-runs
# the ledger_scale bench (the tiered-storage + spilled-index +
# metadata-tier + ingest-scaling + compaction harness) so the scale
# measurement path cannot silently rot either. The smoke run writes the
# machine-readable perf artifact BENCH_ledger_scale.json at the repo root
# (append blk/s per backend, blk/s per ingest thread count, resident
# metadata bytes).
#
# Flags:
#   --dist   additionally build the bench crate under the fat-LTO `dist`
#            profile — the configuration paper-grade numbers are quoted
#            from — so dist-only breakage (LTO symbol issues, profile
#            drift) surfaces in CI instead of on the day of measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

DIST=0
for arg in "$@"; do
  case "$arg" in
    --dist) DIST=1 ;;
    *)
      echo "verify.sh: unknown flag $arg (supported: --dist)" >&2
      exit 2
      ;;
  esac
done

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== docs: cargo doc --no-deps (warnings are errors) =="
# The operator handbook (docs/OPERATIONS.md) leans on the API docs, so a
# broken intra-doc link or malformed doc comment is a CI failure, not a
# nightly surprise.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== ingest pipeline equivalence: INGEST_THREADS=1 (inline commit path) =="
INGEST_THREADS=1 cargo test -q -p blockprov-ledger --test ingest_equiv

echo "== ingest pipeline equivalence: INGEST_THREADS=4 (pooled stateless stage) =="
INGEST_THREADS=4 cargo test -q -p blockprov-ledger --test ingest_equiv

echo "== manifest crash windows: segment epochs, stale/corrupt manifests, stray GC =="
# The manifest-driven open path has its own crash matrix: a crash between
# the temp write and the rename, a stale manifest left beside newer orphan
# segments (must GC them, not replay them), and a corrupt manifest falling
# back to the full directory scan. Run the suite explicitly so a filter
# typo in the tier-1 sweep can never skip it.
cargo test -q -p blockprov-ledger --test crash_windows

echo "== reader snapshot consistency: 1/2/8 reader threads vs a reorging writer =="
# The lock-free read path's core property: every ChainView a reader pins —
# while the writer appends, forks, reorgs and finalizes — is
# prefix-consistent (tip resolves, no holes, finalized prefix immutable).
# Run the stress suite explicitly so a filter typo in the tier-1 sweep can
# never skip it.
cargo test -q -p blockprov-ledger --test reader_snapshot_prop

echo "== benches compile: cargo bench --no-run =="
cargo bench --no-run

if [ "$DIST" = "1" ]; then
  echo "== dist profile: cargo build --profile dist -p blockprov-bench --benches =="
  cargo build --profile dist -p blockprov-bench --benches
fi

echo "== bench smoke: cargo bench -p blockprov-bench --bench ledger_scale -- lookup =="
# The filter trims the timing loops to the lookup groups; the one-shot
# append/cold-start/ingest-scaling/compaction measurements always run,
# which is the point — they exercise the 100k-block tiered, spilled-index,
# metadata-tier (snapshot fast-start vs full replay), batched-ingest,
# group-commit batch-size sweep and compaction paths. INGEST_SCALE_BLOCKS
# and BATCH_COMMIT_BLOCKS trim the per-thread-count and per-batch-size
# streams to smoke length; COLD_START_BLOCKS=10000 trims the cold-start
# sweep to its first point (the full 10k/50k/100k curve belongs to real
# bench runs); CRITERION_JSON captures every median and metric into the
# tracked perf-trajectory artifact.
INGEST_SCALE_BLOCKS="${INGEST_SCALE_BLOCKS:-2000}" \
BATCH_COMMIT_BLOCKS="${BATCH_COMMIT_BLOCKS:-2000}" \
COLD_START_BLOCKS="${COLD_START_BLOCKS:-10000}" \
CRITERION_JSON="$PWD/BENCH_ledger_scale.json" \
  cargo bench -p blockprov-bench --bench ledger_scale -- lookup

echo "== bench smoke: cargo bench -p blockprov-bench --bench mixed_rw =="
# Mixed read/write: one writer floods append_batch while 1/2/4/8 detached
# reader threads run point + sweep queries against epoch-published
# snapshots. MIXED_RW_BLOCKS trims the history/flood streams to smoke
# length; CRITERION_JSON_MERGE folds the reader-latency and
# writer-degradation metrics into the same tracked artifact ledger_scale
# just wrote (merge by name — ledger_scale's entries survive).
MIXED_RW_BLOCKS="${MIXED_RW_BLOCKS:-1000}" \
CRITERION_JSON_MERGE="$PWD/BENCH_ledger_scale.json" \
  cargo bench -p blockprov-bench --bench mixed_rw
echo "perf artifact: BENCH_ledger_scale.json"

echo "== node flood smoke: release blockprov-node + txflood over HTTP =="
# End-to-end service check: start the release node on an ephemeral port
# with a throwaway durable tier, flood it over real sockets with the
# mixed-scenario txflood driver (one producer + query threads; any failed
# request fails the driver), then SIGTERM the node and require the clean
# drain + snapshot exit path. NODE_FLOOD_BLOCKS trims the flood to smoke
# length; the node_flood/* metrics merge into the same tracked artifact.
NODE_DATA_DIR="$(mktemp -d)"
NODE_LOG="$(mktemp)"
./target/release/blockprov-node --addr 127.0.0.1:0 --data-dir "$NODE_DATA_DIR" \
  >"$NODE_LOG" 2>&1 &
NODE_PID=$!
NODE_ADDR=""
for _ in $(seq 1 100); do
  NODE_ADDR="$(sed -n 's/^blockprov-node listening on //p' "$NODE_LOG" | head -n 1)"
  [ -n "$NODE_ADDR" ] && break
  sleep 0.1
done
if [ -z "$NODE_ADDR" ]; then
  echo "verify.sh: node failed to become ready" >&2
  cat "$NODE_LOG" >&2
  kill "$NODE_PID" 2>/dev/null || true
  exit 1
fi
NODE_FLOOD_ADDR="$NODE_ADDR" \
NODE_FLOOD_BLOCKS="${NODE_FLOOD_BLOCKS:-600}" \
CRITERION_JSON_MERGE="$PWD/BENCH_ledger_scale.json" \
  ./target/release/txflood
kill -TERM "$NODE_PID"
wait "$NODE_PID" # non-zero exit = drain/snapshot failure, fails the script
cat "$NODE_LOG"
rm -rf "$NODE_DATA_DIR" "$NODE_LOG"

echo "verify.sh: all checks passed"
