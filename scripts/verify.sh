#!/usr/bin/env bash
# The single verification entrypoint shared by CI and local builds.
#
# Runs the tier-1 command from ROADMAP.md (release build + full test
# suite), compiles every criterion bench target so a bench-only breakage
# cannot slip past review, and smoke-runs the ledger_scale bench (the
# tiered-storage + spilled-index + metadata-tier + compaction harness) so
# the scale measurement path cannot silently rot either.
#
# Flags:
#   --dist   additionally build the bench crate under the fat-LTO `dist`
#            profile — the configuration paper-grade numbers are quoted
#            from — so dist-only breakage (LTO symbol issues, profile
#            drift) surfaces in CI instead of on the day of measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

DIST=0
for arg in "$@"; do
  case "$arg" in
    --dist) DIST=1 ;;
    *)
      echo "verify.sh: unknown flag $arg (supported: --dist)" >&2
      exit 2
      ;;
  esac
done

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== benches compile: cargo bench --no-run =="
cargo bench --no-run

if [ "$DIST" = "1" ]; then
  echo "== dist profile: cargo build --profile dist -p blockprov-bench --benches =="
  cargo build --profile dist -p blockprov-bench --benches
fi

echo "== bench smoke: cargo bench -p blockprov-bench --bench ledger_scale -- lookup =="
# The filter trims the timing loops to the lookup groups; the one-shot
# append/cold-start/compaction measurements always run, which is the point
# — they exercise the 100k-block tiered, spilled-index, metadata-tier
# (snapshot fast-start vs full replay) and compaction paths.
cargo bench -p blockprov-bench --bench ledger_scale -- lookup

echo "verify.sh: all checks passed"
