#!/usr/bin/env bash
# The single verification entrypoint shared by CI and local builds.
#
# Runs the tier-1 command from ROADMAP.md (release build + full test
# suite), compiles every criterion bench target so a bench-only breakage
# cannot slip past review, and smoke-runs the ledger_scale bench (the
# tiered-storage + spilled-index + compaction harness) so the scale
# measurement path cannot silently rot either.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== benches compile: cargo bench --no-run =="
cargo bench --no-run

echo "== bench smoke: cargo bench -p blockprov-bench --bench ledger_scale -- lookup =="
# The filter trims the timing loops to the lookup groups; the one-shot
# append/compaction measurements always run, which is the point — they
# exercise the 100k-block tiered, spilled-index, and compaction paths.
cargo bench -p blockprov-bench --bench ledger_scale -- lookup

echo "verify.sh: all checks passed"
