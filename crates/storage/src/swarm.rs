//! A replicated storage swarm: the distributed half of the IPFS substitute.
//!
//! Every node is placed on `replication` peers chosen by rendezvous
//! (highest-random-weight) hashing, so placement is deterministic, needs no
//! coordinator, and rebalances minimally when membership changes. Retrieval
//! probes peers in rank order and counts probes, which is the latency proxy
//! the availability experiment sweeps: with replication `r` and `f` failed
//! peers, content survives unless all `r` replicas landed on failed peers.
//!
//! This reproduces the property the surveyed systems buy from IPFS —
//! "enhanced availability" (Hasan [33]) — without a network stack; the
//! probe counter stands in for round trips.

use crate::dag::{Cid, DagNode, NodeSink};
use crate::store::BlockStore;
use blockprov_crypto::hmac_sha256;
use std::cell::Cell;

/// One storage peer.
#[derive(Debug, Clone)]
struct Peer {
    name: String,
    store: BlockStore,
    online: bool,
}

/// A set of peers replicating content by rendezvous hashing.
#[derive(Debug)]
pub struct Swarm {
    peers: Vec<Peer>,
    replication: usize,
    probes: Cell<u64>,
    fetches: Cell<u64>,
}

/// Swarm-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwarmStats {
    /// Peer probes issued by all fetches (a latency proxy: 1 probe ≈ 1 RTT).
    pub probes: u64,
    /// Successful fetches.
    pub fetches: u64,
    /// Peers currently online.
    pub online_peers: usize,
    /// Total peers.
    pub peers: usize,
}

impl Swarm {
    /// A swarm of `n_peers` peers storing each node on `replication` of them.
    ///
    /// # Panics
    /// If `n_peers == 0` or `replication == 0`.
    pub fn new(n_peers: usize, replication: usize) -> Self {
        assert!(n_peers > 0, "swarm needs at least one peer");
        assert!(replication > 0, "replication factor must be positive");
        let peers = (0..n_peers)
            .map(|i| Peer {
                name: format!("peer-{i}"),
                store: BlockStore::new(),
                online: true,
            })
            .collect();
        Self {
            peers,
            replication: replication.min(n_peers),
            probes: Cell::new(0),
            fetches: Cell::new(0),
        }
    }

    /// Number of peers.
    pub fn n_peers(&self) -> usize {
        self.peers.len()
    }

    /// Rendezvous ranking of peers for `cid` (best first): peer score is
    /// HMAC(peer-name, cid), highest wins. Includes offline peers — rank is
    /// a pure function of membership, not liveness.
    fn rank(&self, cid: &Cid) -> Vec<usize> {
        let mut scored: Vec<(u64, usize)> = self
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mac = hmac_sha256(p.name.as_bytes(), cid.0.as_bytes());
                let mut w = [0u8; 8];
                w.copy_from_slice(&mac.as_bytes()[..8]);
                (u64::from_be_bytes(w), i)
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.into_iter().map(|(_, i)| i).collect()
    }

    /// Take a peer offline (simulated crash). Returns false for bad index.
    pub fn fail_peer(&mut self, index: usize) -> bool {
        match self.peers.get_mut(index) {
            Some(p) => {
                p.online = false;
                true
            }
            None => false,
        }
    }

    /// Bring a peer back online (its stored content is intact — a restart,
    /// not a disk loss).
    pub fn recover_peer(&mut self, index: usize) -> bool {
        match self.peers.get_mut(index) {
            Some(p) => {
                p.online = true;
                true
            }
            None => false,
        }
    }

    /// Live replicas of `cid` (online peers holding it).
    pub fn replica_count(&self, cid: &Cid) -> usize {
        self.peers.iter().filter(|p| p.online && p.store.has(cid)).count()
    }

    /// Whether a fetch of `cid` would currently succeed.
    pub fn is_retrievable(&self, cid: &Cid) -> bool {
        self.replica_count(cid) > 0
    }

    /// Re-replicate `cid` onto the best-ranked online peers until the
    /// replication factor is met. Returns new copies made, or None if no
    /// online replica exists to copy from.
    pub fn repair(&mut self, cid: &Cid) -> Option<usize> {
        let encoded = self
            .peers
            .iter()
            .find(|p| p.online && p.store.has(cid))?
            .store
            .get_encoded(cid)?
            .to_vec();
        let rank = self.rank(cid);
        let mut live = self.replica_count(cid);
        let mut made = 0usize;
        for idx in rank {
            if live >= self.replication {
                break;
            }
            let peer = &mut self.peers[idx];
            if peer.online && !peer.store.has(cid) {
                peer.store.put_encoded(*cid, encoded.clone());
                live += 1;
                made += 1;
            }
        }
        Some(made)
    }

    /// Repair every node in the subtree rooted at `root`. Returns the total
    /// number of new copies, or None if any node is unrecoverable.
    pub fn repair_subtree(&mut self, root: &Cid) -> Option<usize> {
        let mut made = 0usize;
        let mut stack = vec![*root];
        while let Some(cid) = stack.pop() {
            made += self.repair(&cid)?;
            let node = self.get_node(&cid)?;
            stack.extend(node.children());
        }
        Some(made)
    }

    /// Counters.
    pub fn stats(&self) -> SwarmStats {
        SwarmStats {
            probes: self.probes.get(),
            fetches: self.fetches.get(),
            online_peers: self.peers.iter().filter(|p| p.online).count(),
            peers: self.peers.len(),
        }
    }

    /// Bytes resident across all peers (replication included).
    pub fn resident_bytes(&self) -> u64 {
        self.peers.iter().map(|p| p.store.stats().unique_bytes).sum()
    }
}

impl NodeSink for Swarm {
    fn put_node(&mut self, node: &DagNode) -> Cid {
        let cid = node.cid();
        let encoded = node.encode();
        let targets: Vec<usize> =
            self.rank(&cid).into_iter().take(self.replication).collect();
        for idx in targets {
            // Placement ignores liveness (deterministic rendezvous); an
            // offline target simply misses this write until a repair.
            let peer = &mut self.peers[idx];
            if peer.online {
                peer.store.put_encoded(cid, encoded.clone());
            }
        }
        cid
    }

    fn get_node(&self, cid: &Cid) -> Option<DagNode> {
        for idx in self.rank(cid) {
            self.probes.set(self.probes.get() + 1);
            let peer = &self.peers[idx];
            if peer.online {
                if let Some(node) = peer.store.get_node(cid) {
                    self.fetches.set(self.fetches.get() + 1);
                    return Some(node);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{add_file, cat};
    use crate::Chunker;
    use blockprov_crypto::HmacDrbg;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
        let mut out = vec![0u8; len];
        drbg.fill_bytes(&mut out);
        out
    }

    #[test]
    fn put_places_exactly_replication_copies() {
        let mut swarm = Swarm::new(8, 3);
        let cid = swarm.put_node(&DagNode::Raw(b"replicated".to_vec()));
        assert_eq!(swarm.replica_count(&cid), 3);
    }

    #[test]
    fn fetch_succeeds_until_all_replicas_fail() {
        let mut swarm = Swarm::new(6, 2);
        let data = sample(10_000, 1);
        let root = add_file(&mut swarm, &data, Chunker::Fixed(2048), 4);
        assert_eq!(cat(&swarm, &root).unwrap(), data);

        // Kill peers one at a time; content must remain retrievable while
        // any replica of every node survives, and cat must fail only after
        // some node loses both replicas.
        let mut lost = false;
        for i in 0..6 {
            swarm.fail_peer(i);
            match cat(&swarm, &root) {
                Ok(bytes) => assert_eq!(bytes, data),
                Err(_) => {
                    lost = true;
                    break;
                }
            }
        }
        assert!(lost, "with all peers down content cannot survive");
    }

    #[test]
    fn recovery_restores_retrieval() {
        let mut swarm = Swarm::new(4, 1);
        let cid = swarm.put_node(&DagNode::Raw(b"solo".to_vec()));
        let holder = (0..4)
            .find(|&i| swarm.peers[i].store.has(&cid))
            .expect("one peer must hold the block");
        swarm.fail_peer(holder);
        assert!(!swarm.is_retrievable(&cid));
        swarm.recover_peer(holder);
        assert!(swarm.is_retrievable(&cid));
    }

    #[test]
    fn repair_restores_replication_factor() {
        let mut swarm = Swarm::new(8, 3);
        let data = sample(6_000, 2);
        let root = add_file(&mut swarm, &data, Chunker::Fixed(1024), 4);

        // Fail one holder of the root, degrading it to 2 live replicas.
        let holder = (0..8)
            .find(|&i| swarm.peers[i].store.has(&root))
            .expect("root must be stored somewhere");
        swarm.fail_peer(holder);
        assert!(swarm.replica_count(&root) < 3);

        let made = swarm.repair_subtree(&root).expect("still recoverable");
        assert!(made > 0);
        assert!(swarm.replica_count(&root) >= 3);
        assert_eq!(cat(&swarm, &root).unwrap(), data);
    }

    #[test]
    fn repair_of_lost_content_reports_none() {
        let mut swarm = Swarm::new(3, 1);
        let cid = swarm.put_node(&DagNode::Raw(b"fragile".to_vec()));
        for i in 0..3 {
            swarm.fail_peer(i);
        }
        assert_eq!(swarm.repair(&cid), None);
    }

    #[test]
    fn probes_grow_with_failures() {
        let mut swarm = Swarm::new(8, 2);
        let cid = swarm.put_node(&DagNode::Raw(b"probe-me".to_vec()));
        swarm.get_node(&cid).unwrap();
        let fast = swarm.stats().probes;

        // Fail the best-ranked holder: the fetch now walks further down the
        // rank order, so cumulative probes for one more fetch exceed the
        // first fetch's cost.
        let first_holder = swarm.rank(&cid)[0];
        swarm.fail_peer(first_holder);
        swarm.get_node(&cid);
        let slow = swarm.stats().probes - fast;
        assert!(
            slow >= fast,
            "fetch after failure should probe at least as many peers ({slow} vs {fast})"
        );
    }

    #[test]
    fn rendezvous_rank_is_stable() {
        let swarm = Swarm::new(10, 3);
        let cid = DagNode::Raw(b"stable".to_vec()).cid();
        assert_eq!(swarm.rank(&cid), swarm.rank(&cid));
    }

    #[test]
    fn replication_capped_at_peer_count() {
        let mut swarm = Swarm::new(2, 5);
        let cid = swarm.put_node(&DagNode::Raw(b"capped".to_vec()));
        assert_eq!(swarm.replica_count(&cid), 2);
    }
}
