//! Splitting file contents into chunks before DAG assembly.
//!
//! Two strategies, mirroring the options real IPFS deployments choose
//! between:
//!
//! * [`Chunker::Fixed`] — fixed-size chunks. Simple and fast, but a single
//!   inserted byte shifts every later chunk boundary, so edits destroy
//!   deduplication against earlier versions.
//! * [`Chunker::ContentDefined`] — Gear-style content-defined chunking: a
//!   rolling hash over a sliding window places boundaries at positions
//!   determined by the *content*, so an insertion only re-chunks the
//!   neighbourhood of the edit and the remainder of the file deduplicates.
//!
//! The dedup ratio difference between the two is exactly what experiment
//! E14 (storage overhead under versioned writes) measures; the surveyed
//! cloud/EHR systems (Hasan [33], HealthBlock [1]) inherit whichever ratio
//! their IPFS configuration picks.

use blockprov_crypto::HmacDrbg;

/// Default target chunk size (bytes) for content-defined chunking.
pub const DEFAULT_TARGET: usize = 4096;
/// Fixed chunk size default.
pub const DEFAULT_FIXED: usize = 4096;

/// A chunk-boundary strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chunker {
    /// Fixed-size chunks of the given length (last chunk may be shorter).
    Fixed(usize),
    /// Content-defined chunking with the given *target* (average) size.
    ///
    /// Minimum chunk size is `target / 4`, maximum is `target * 4`; a
    /// boundary is declared when the low `log2(target)` bits of the rolling
    /// gear hash are all zero.
    ContentDefined(usize),
}

impl Default for Chunker {
    fn default() -> Self {
        Chunker::ContentDefined(DEFAULT_TARGET)
    }
}

/// The 256-entry gear table. Deterministic (derived from a fixed seed via
/// the workspace DRBG) so that chunk boundaries — and therefore CIDs — are
/// stable across runs and platforms.
fn gear_table() -> [u64; 256] {
    let mut drbg = HmacDrbg::new(b"blockprov-storage/gear-table/v1");
    let mut table = [0u64; 256];
    for slot in table.iter_mut() {
        *slot = drbg.next_u64();
    }
    table
}

impl Chunker {
    /// Split `data` into chunk slices. Concatenating the returned slices in
    /// order always reproduces `data` exactly.
    pub fn split<'a>(&self, data: &'a [u8]) -> Vec<&'a [u8]> {
        match *self {
            Chunker::Fixed(size) => {
                let size = size.max(1);
                data.chunks(size).collect()
            }
            Chunker::ContentDefined(target) => split_gear(data, target.max(64)),
        }
    }

    /// Human-readable strategy name (used in bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            Chunker::Fixed(_) => "fixed",
            Chunker::ContentDefined(_) => "content-defined",
        }
    }
}

fn split_gear(data: &[u8], target: usize) -> Vec<&[u8]> {
    if data.is_empty() {
        return Vec::new();
    }
    let table = gear_table();
    let min = (target / 4).max(1);
    let max = target * 4;
    // Boundary when the low `bits` bits of the gear hash are zero; for a
    // geometric boundary distribution this yields a mean chunk length of
    // roughly 2^bits past the minimum.
    let bits = usize::BITS - 1 - target.leading_zeros();
    let mask: u64 = (1u64 << bits) - 1;

    let mut chunks = Vec::with_capacity(data.len() / target + 1);
    let mut start = 0usize;
    let mut hash: u64 = 0;
    let mut i = 0usize;
    while i < data.len() {
        hash = (hash << 1).wrapping_add(table[data[i] as usize]);
        let len = i - start + 1;
        if (len >= min && (hash & mask) == 0) || len >= max {
            chunks.push(&data[start..=i]);
            start = i + 1;
            hash = 0;
        }
        i += 1;
    }
    if start < data.len() {
        chunks.push(&data[start..]);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
        let mut out = vec![0u8; len];
        drbg.fill_bytes(&mut out);
        out
    }

    #[test]
    fn fixed_chunks_reassemble() {
        let data = sample(10_000, 1);
        let chunks = Chunker::Fixed(1024).split(&data);
        assert_eq!(chunks.len(), 10);
        let whole: Vec<u8> = chunks.concat();
        assert_eq!(whole, data);
    }

    #[test]
    fn fixed_last_chunk_short() {
        let data = sample(2500, 2);
        let chunks = Chunker::Fixed(1024).split(&data);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].len(), 452);
    }

    #[test]
    fn cdc_chunks_reassemble() {
        let data = sample(100_000, 3);
        let chunks = Chunker::ContentDefined(2048).split(&data);
        let whole: Vec<u8> = chunks.concat();
        assert_eq!(whole, data);
        assert!(chunks.len() > 5, "expected several chunks, got {}", chunks.len());
    }

    #[test]
    fn cdc_respects_min_max() {
        let data = sample(200_000, 4);
        let target = 2048;
        let chunks = Chunker::ContentDefined(target).split(&data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= target * 4, "chunk {i} over max: {}", c.len());
            if i + 1 != chunks.len() {
                assert!(c.len() >= target / 4, "chunk {i} under min: {}", c.len());
            }
        }
    }

    #[test]
    fn cdc_is_deterministic() {
        let data = sample(50_000, 5);
        let a = Chunker::ContentDefined(4096).split(&data);
        let b = Chunker::ContentDefined(4096).split(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(Chunker::Fixed(8).split(&[]).is_empty());
        assert!(Chunker::ContentDefined(4096).split(&[]).is_empty());
    }

    /// The motivating property: after a prefix insertion, content-defined
    /// chunking re-synchronizes and most chunks are shared with the
    /// original, while fixed chunking shares (almost) nothing.
    #[test]
    fn cdc_survives_insertion_fixed_does_not() {
        let original = sample(120_000, 6);
        let mut edited = Vec::with_capacity(original.len() + 7);
        edited.extend_from_slice(&original[..500]);
        edited.extend_from_slice(b"INSERT!");
        edited.extend_from_slice(&original[500..]);

        let shared = |chunker: Chunker| -> f64 {
            use std::collections::HashSet;
            let a: HashSet<Vec<u8>> =
                chunker.split(&original).iter().map(|c| c.to_vec()).collect();
            let b: Vec<Vec<u8>> = chunker.split(&edited).iter().map(|c| c.to_vec()).collect();
            let hit = b.iter().filter(|c| a.contains(*c)).count();
            hit as f64 / b.len() as f64
        };

        let cdc_shared = shared(Chunker::ContentDefined(2048));
        let fixed_shared = shared(Chunker::Fixed(2048));
        assert!(
            cdc_shared > 0.8,
            "content-defined should re-sync after an insertion (shared {cdc_shared:.2})"
        );
        assert!(
            fixed_shared < 0.1,
            "fixed chunking should lose alignment after an insertion (shared {fixed_shared:.2})"
        );
    }
}
