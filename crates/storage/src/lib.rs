//! Content-addressed distributed storage — the workspace's IPFS substitute.
//!
//! Several systems the paper surveys park bulk payloads in IPFS and anchor
//! only digests on chain: Hasan et al. [33] (cloud provenance), HealthBlock
//! [1] (EHR sharing), Ahmed et al. [8] (media evidence). This crate rebuilds
//! that substrate from scratch so those reproductions exercise a real
//! content-addressed path instead of a mock:
//!
//! * [`chunker`] — fixed-size and content-defined (gear rolling hash)
//!   chunking; the latter preserves deduplication across file edits;
//! * [`dag`] — Merkle-DAG nodes ([`DagNode`]) addressed by [`Cid`] digests,
//!   file/directory assembly, `cat`, and subtree verification;
//! * [`store`] — the local [`BlockStore`]: dedup accounting, pinning, and
//!   mark-and-sweep GC;
//! * [`swarm`] — a replicated [`Swarm`] of peers using rendezvous hashing,
//!   with failure injection, probe-count latency proxies, and repair.
//!
//! On-chain anchoring of roots is done by the consuming crates (a [`Cid`]
//! is 32 bytes — exactly the hash-on-chain/payload-off-chain split whose
//! storage ratio experiment E3 measures); see `tests/storage_anchoring.rs`
//! at the workspace root for the end-to-end flow.

pub mod chunker;
pub mod dag;
pub mod store;
pub mod swarm;

pub use chunker::Chunker;
pub use dag::{
    add_directory, add_file, cat, resolve, verify_subtree, Cid, DagError, DagLink, DagNode,
    DirEntry, NodeSink,
};
pub use store::{BlockStore, StoreStats};
pub use swarm::{Swarm, SwarmStats};
