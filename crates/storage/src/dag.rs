//! The Merkle-DAG: content identifiers, node encoding, and file assembly.
//!
//! Files are chunked (see [`crate::chunker`]) into [`DagNode::Raw`] leaves,
//! then grouped under [`DagNode::File`] branch nodes with a bounded fanout
//! until a single root remains — the same unixfs-style layout IPFS uses.
//! Directories map names to child CIDs. A [`Cid`] is the SHA-256 digest of
//! the node's canonical wire encoding under a domain-separation prefix, so
//! two logically identical nodes always share storage and any byte flip
//! changes the identifier (the availability + integrity argument of
//! Hasan [33] and HealthBlock [1]).

use blockprov_crypto::{sha256, Hash256};
use blockprov_wire::{Reader, WireError, Writer};
use std::fmt;

/// Content identifier: digest of the canonical node encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cid(pub Hash256);

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid:{}", self.0)
    }
}

/// A link from a branch node to a child, carrying the child's cumulative
/// payload size so readers can seek without fetching subtrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagLink {
    /// Child content identifier.
    pub cid: Cid,
    /// Total payload bytes reachable through this link.
    pub size: u64,
}

/// A named directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (unique within the directory).
    pub name: String,
    /// Child content identifier.
    pub cid: Cid,
    /// Total payload bytes reachable through this entry.
    pub size: u64,
}

/// A node of the Merkle-DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagNode {
    /// A leaf carrying raw file bytes (one chunk).
    Raw(Vec<u8>),
    /// An interior file node: ordered children whose payloads concatenate
    /// to the file contents.
    File {
        /// Ordered child links.
        links: Vec<DagLink>,
        /// Total payload size (sum of link sizes).
        total_size: u64,
    },
    /// A directory: entries sorted by name.
    Directory(Vec<DirEntry>),
}

const TAG_RAW: u8 = 0;
const TAG_FILE: u8 = 1;
const TAG_DIR: u8 = 2;
const CID_DOMAIN: &[u8] = b"blockprov-storage/cid/v1";

impl DagNode {
    /// Canonical wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            DagNode::Raw(bytes) => {
                w.put_u8(TAG_RAW);
                w.put_bytes(bytes);
            }
            DagNode::File { links, total_size } => {
                w.put_u8(TAG_FILE);
                w.put_u64(*total_size);
                w.put_varint(links.len() as u64);
                for l in links {
                    w.put_raw(l.cid.0.as_bytes());
                    w.put_u64(l.size);
                }
            }
            DagNode::Directory(entries) => {
                w.put_u8(TAG_DIR);
                w.put_varint(entries.len() as u64);
                for e in entries {
                    w.put_str(&e.name);
                    w.put_raw(e.cid.0.as_bytes());
                    w.put_u64(e.size);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a canonical encoding. Rejects trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let node = match r.get_u8()? {
            TAG_RAW => DagNode::Raw(r.get_bytes()?),
            TAG_FILE => {
                let total_size = r.get_u64()?;
                let n = r.get_varint()? as usize;
                let mut links = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let cid = Cid(read_hash(&mut r)?);
                    let size = r.get_u64()?;
                    links.push(DagLink { cid, size });
                }
                DagNode::File { links, total_size }
            }
            TAG_DIR => {
                let n = r.get_varint()? as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = r.get_string()?;
                    let cid = Cid(read_hash(&mut r)?);
                    let size = r.get_u64()?;
                    entries.push(DirEntry { name, cid, size });
                }
                DagNode::Directory(entries)
            }
            other => {
                return Err(WireError::UnknownDiscriminant {
                    type_name: "DagNode",
                    value: other as u64,
                })
            }
        };
        if !r.is_exhausted() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(node)
    }

    /// The node's content identifier.
    pub fn cid(&self) -> Cid {
        let mut material = Vec::with_capacity(CID_DOMAIN.len() + 64);
        material.extend_from_slice(CID_DOMAIN);
        material.extend_from_slice(&self.encode());
        Cid(sha256(&material))
    }

    /// Payload bytes reachable from this node (file bytes; directories sum
    /// their entries).
    pub fn payload_size(&self) -> u64 {
        match self {
            DagNode::Raw(b) => b.len() as u64,
            DagNode::File { total_size, .. } => *total_size,
            DagNode::Directory(entries) => entries.iter().map(|e| e.size).sum(),
        }
    }

    /// CIDs of all direct children.
    pub fn children(&self) -> Vec<Cid> {
        match self {
            DagNode::Raw(_) => Vec::new(),
            DagNode::File { links, .. } => links.iter().map(|l| l.cid).collect(),
            DagNode::Directory(entries) => entries.iter().map(|e| e.cid).collect(),
        }
    }
}

fn read_hash(r: &mut Reader<'_>) -> Result<Hash256, WireError> {
    let raw = r.get_raw(32)?;
    let mut h = [0u8; 32];
    h.copy_from_slice(raw);
    Ok(Hash256::from(h))
}

/// Anything DAG nodes can be written into: the local [`crate::BlockStore`]
/// and the replicated [`crate::Swarm`] both implement it, so file assembly
/// is written once.
pub trait NodeSink {
    /// Store `node`, returning its CID.
    fn put_node(&mut self, node: &DagNode) -> Cid;
    /// Fetch a node by CID.
    fn get_node(&self, cid: &Cid) -> Option<DagNode>;
}

/// Errors from DAG read paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A referenced node is not present in the sink.
    Missing(Cid),
    /// A node's declared sizes are inconsistent with its children.
    SizeMismatch(Cid),
    /// The root of a `cat` was a directory.
    NotAFile(Cid),
    /// Directory entry not found.
    NoSuchEntry(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Missing(c) => write!(f, "missing node {c}"),
            DagError::SizeMismatch(c) => write!(f, "size mismatch at {c}"),
            DagError::NotAFile(c) => write!(f, "{c} is a directory, not a file"),
            DagError::NoSuchEntry(n) => write!(f, "no directory entry named {n:?}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Assemble `data` into a file DAG inside `sink`: chunk, store leaves,
/// then fold `fanout` links at a time into branch nodes. Returns the root
/// CID (a single `Raw` leaf for files that fit one chunk).
pub fn add_file<S: NodeSink>(
    sink: &mut S,
    data: &[u8],
    chunker: crate::Chunker,
    fanout: usize,
) -> Cid {
    let fanout = fanout.max(2);
    let chunks = chunker.split(data);
    if chunks.is_empty() {
        return sink.put_node(&DagNode::Raw(Vec::new()));
    }
    let mut level: Vec<DagLink> = chunks
        .iter()
        .map(|c| {
            let node = DagNode::Raw(c.to_vec());
            let cid = sink.put_node(&node);
            DagLink { cid, size: c.len() as u64 }
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(fanout)
            .map(|group| {
                let total: u64 = group.iter().map(|l| l.size).sum();
                let node = DagNode::File { links: group.to_vec(), total_size: total };
                DagLink { cid: sink.put_node(&node), size: total }
            })
            .collect();
    }
    level[0].cid
}

/// Build a directory node over `(name, root_cid)` pairs. Entries are
/// sorted by name for canonical encoding; sizes are read from the sink.
pub fn add_directory<S: NodeSink>(
    sink: &mut S,
    entries: &[(String, Cid)],
) -> Result<Cid, DagError> {
    let mut dir: Vec<DirEntry> = entries
        .iter()
        .map(|(name, cid)| {
            let node = sink.get_node(cid).ok_or(DagError::Missing(*cid))?;
            Ok(DirEntry { name: name.clone(), cid: *cid, size: node.payload_size() })
        })
        .collect::<Result<_, DagError>>()?;
    dir.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(sink.put_node(&DagNode::Directory(dir)))
}

/// Reassemble a file's bytes from its root CID (depth-first traversal).
pub fn cat<S: NodeSink>(sink: &S, root: &Cid) -> Result<Vec<u8>, DagError> {
    let mut out = Vec::new();
    let mut stack = vec![*root];
    // Depth-first with explicit stack; children pushed in reverse so the
    // leftmost child is popped first and bytes come out in order.
    while let Some(cid) = stack.pop() {
        let node = sink.get_node(&cid).ok_or(DagError::Missing(cid))?;
        match node {
            DagNode::Raw(bytes) => out.extend_from_slice(&bytes),
            DagNode::File { links, .. } => {
                for l in links.iter().rev() {
                    stack.push(l.cid);
                }
            }
            DagNode::Directory(_) => return Err(DagError::NotAFile(cid)),
        }
    }
    Ok(out)
}

/// Look up a name in a directory node.
pub fn resolve<S: NodeSink>(sink: &S, dir: &Cid, name: &str) -> Result<Cid, DagError> {
    match sink.get_node(dir).ok_or(DagError::Missing(*dir))? {
        DagNode::Directory(entries) => entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.cid)
            .ok_or_else(|| DagError::NoSuchEntry(name.to_string())),
        _ => Err(DagError::NoSuchEntry(name.to_string())),
    }
}

/// Verify the subtree under `root`: every declared link size must match the
/// child's actual payload, and every node must be present. Returns the
/// number of nodes visited.
pub fn verify_subtree<S: NodeSink>(sink: &S, root: &Cid) -> Result<usize, DagError> {
    let mut visited = 0usize;
    let mut stack = vec![*root];
    while let Some(cid) = stack.pop() {
        let node = sink.get_node(&cid).ok_or(DagError::Missing(cid))?;
        visited += 1;
        match &node {
            DagNode::Raw(_) => {}
            DagNode::File { links, total_size } => {
                let mut sum = 0u64;
                for l in links {
                    let child = sink.get_node(&l.cid).ok_or(DagError::Missing(l.cid))?;
                    if child.payload_size() != l.size {
                        return Err(DagError::SizeMismatch(cid));
                    }
                    sum += l.size;
                    stack.push(l.cid);
                }
                if sum != *total_size {
                    return Err(DagError::SizeMismatch(cid));
                }
            }
            DagNode::Directory(entries) => {
                for e in entries {
                    let child = sink.get_node(&e.cid).ok_or(DagError::Missing(e.cid))?;
                    if child.payload_size() != e.size {
                        return Err(DagError::SizeMismatch(cid));
                    }
                    stack.push(e.cid);
                }
            }
        }
    }
    Ok(visited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockStore, Chunker};
    use blockprov_crypto::HmacDrbg;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
        let mut out = vec![0u8; len];
        drbg.fill_bytes(&mut out);
        out
    }

    #[test]
    fn node_codec_round_trips() {
        let nodes = [
            DagNode::Raw(b"hello".to_vec()),
            DagNode::File {
                links: vec![DagLink { cid: Cid(sha256(b"a")), size: 5 }],
                total_size: 5,
            },
            DagNode::Directory(vec![DirEntry {
                name: "report.pdf".into(),
                cid: Cid(sha256(b"b")),
                size: 9,
            }]),
        ];
        for n in &nodes {
            let rt = DagNode::decode(&n.encode()).unwrap();
            assert_eq!(&rt, n);
            assert_eq!(rt.cid(), n.cid());
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_trailing() {
        assert!(DagNode::decode(&[9]).is_err());
        let mut enc = DagNode::Raw(b"x".to_vec()).encode();
        enc.push(0);
        assert!(DagNode::decode(&enc).is_err());
    }

    #[test]
    fn add_then_cat_round_trips() {
        let mut store = BlockStore::new();
        for len in [0usize, 1, 100, 4096, 50_000] {
            let data = sample(len, len as u64);
            let root = add_file(&mut store, &data, Chunker::Fixed(1024), 4);
            assert_eq!(cat(&store, &root).unwrap(), data, "len={len}");
        }
    }

    #[test]
    fn identical_content_same_cid_different_content_different_cid() {
        let mut store = BlockStore::new();
        let a = add_file(&mut store, b"same bytes", Chunker::Fixed(4), 4);
        let b = add_file(&mut store, b"same bytes", Chunker::Fixed(4), 4);
        let c = add_file(&mut store, b"same byteZ", Chunker::Fixed(4), 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn large_file_builds_multi_level_tree() {
        let mut store = BlockStore::new();
        let data = sample(64 * 1024, 7);
        let root = add_file(&mut store, &data, Chunker::Fixed(1024), 4);
        // 64 leaves, fanout 4 → 16 + 4 + 1 interior nodes: depth ≥ 3.
        let node = store.get_node(&root).unwrap();
        assert!(matches!(node, DagNode::File { .. }));
        assert_eq!(node.payload_size(), data.len() as u64);
        assert_eq!(verify_subtree(&store, &root).unwrap(), 64 + 16 + 4 + 1);
    }

    #[test]
    fn directory_resolution() {
        let mut store = BlockStore::new();
        let a = add_file(&mut store, b"alpha", Chunker::Fixed(16), 4);
        let b = add_file(&mut store, b"bravo!", Chunker::Fixed(16), 4);
        let dir =
            add_directory(&mut store, &[("b.txt".into(), b), ("a.txt".into(), a)]).unwrap();
        assert_eq!(resolve(&store, &dir, "a.txt").unwrap(), a);
        assert_eq!(resolve(&store, &dir, "b.txt").unwrap(), b);
        assert!(matches!(
            resolve(&store, &dir, "missing"),
            Err(DagError::NoSuchEntry(_))
        ));
        // Directory payload is the sum of entry sizes.
        assert_eq!(store.get_node(&dir).unwrap().payload_size(), 5 + 6);
        // Entry order does not affect the CID (canonical sort).
        let dir2 =
            add_directory(&mut store, &[("a.txt".into(), a), ("b.txt".into(), b)]).unwrap();
        assert_eq!(dir, dir2);
    }

    #[test]
    fn cat_on_directory_fails() {
        let mut store = BlockStore::new();
        let a = add_file(&mut store, b"alpha", Chunker::Fixed(16), 4);
        let dir = add_directory(&mut store, &[("a".into(), a)]).unwrap();
        assert!(matches!(cat(&store, &dir), Err(DagError::NotAFile(_))));
    }

    #[test]
    fn verify_detects_size_tamper() {
        let mut store = BlockStore::new();
        let data = sample(8_000, 9);
        let root = add_file(&mut store, &data, Chunker::Fixed(1024), 4);
        // Forge a branch that lies about a child's size.
        if let DagNode::File { mut links, total_size } = store.get_node(&root).unwrap() {
            links[0].size += 1;
            let forged = DagNode::File { links, total_size: total_size + 1 };
            let forged_cid = store.put_node(&forged);
            assert!(matches!(
                verify_subtree(&store, &forged_cid),
                Err(DagError::SizeMismatch(_))
            ));
        } else {
            panic!("expected branch root");
        }
    }

    #[test]
    fn missing_child_is_reported() {
        let mut store = BlockStore::new();
        let ghost = Cid(sha256(b"never stored"));
        let branch = DagNode::File {
            links: vec![DagLink { cid: ghost, size: 3 }],
            total_size: 3,
        };
        let root = store.put_node(&branch);
        assert_eq!(cat(&store, &root), Err(DagError::Missing(ghost)));
    }
}
