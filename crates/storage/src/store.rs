//! The local content-addressed block store: deduplication, pinning, and
//! mark-and-sweep garbage collection.
//!
//! Storage is keyed by [`Cid`], so identical nodes are stored once no matter
//! how many files reference them — the deduplication that experiment E14
//! quantifies. Pins declare GC roots; [`BlockStore::gc`] removes everything
//! unreachable from a pin, the discipline IPFS-backed systems (Ahmed [8],
//! HealthBlock [1]) rely on to bound evidence-store growth.

use crate::dag::{Cid, DagNode, NodeSink};
use std::collections::{HashMap, HashSet};

/// Cumulative ingest/dedup statistics for a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes offered across all `put_node` calls (including duplicates).
    pub logical_bytes: u64,
    /// Bytes actually resident (unique encoded nodes).
    pub unique_bytes: u64,
    /// `put_node` calls that were deduplicated against existing content.
    pub dedup_hits: u64,
    /// Unique nodes currently resident.
    pub nodes: usize,
}

impl StoreStats {
    /// logical/unique ratio; 1.0 means no deduplication occurred.
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.unique_bytes as f64
        }
    }
}

/// An in-memory content-addressed node store with pinning and GC.
#[derive(Debug, Default, Clone)]
pub struct BlockStore {
    blocks: HashMap<Cid, Vec<u8>>,
    pins: HashSet<Cid>,
    logical_bytes: u64,
    dedup_hits: u64,
}

impl BlockStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a node with this CID is resident.
    pub fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    /// Raw encoded bytes of a node (what a wire transfer would ship).
    pub fn get_encoded(&self, cid: &Cid) -> Option<&[u8]> {
        self.blocks.get(cid).map(Vec::as_slice)
    }

    /// Insert a pre-encoded node *after verifying* its digest matches `cid`.
    /// Returns false (and stores nothing) on a digest mismatch — the defense
    /// that makes content addressing tamper-evident in transit.
    pub fn put_encoded(&mut self, cid: Cid, encoded: Vec<u8>) -> bool {
        match DagNode::decode(&encoded) {
            Ok(node) if node.cid() == cid => {
                self.logical_bytes += encoded.len() as u64;
                match self.blocks.entry(cid) {
                    std::collections::hash_map::Entry::Occupied(_) => self.dedup_hits += 1,
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(encoded);
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Mark `cid` as a GC root. Returns false if the node is absent.
    pub fn pin(&mut self, cid: Cid) -> bool {
        if self.blocks.contains_key(&cid) {
            self.pins.insert(cid);
            true
        } else {
            false
        }
    }

    /// Remove a pin (the node stays until the next [`Self::gc`]).
    pub fn unpin(&mut self, cid: &Cid) -> bool {
        self.pins.remove(cid)
    }

    /// Currently pinned roots.
    pub fn pins(&self) -> impl Iterator<Item = &Cid> {
        self.pins.iter()
    }

    /// Mark-and-sweep: keep every node reachable from a pin, drop the rest.
    /// Returns (nodes removed, bytes reclaimed).
    pub fn gc(&mut self) -> (usize, u64) {
        let mut live: HashSet<Cid> = HashSet::with_capacity(self.blocks.len());
        let mut stack: Vec<Cid> = self.pins.iter().copied().collect();
        while let Some(cid) = stack.pop() {
            if !live.insert(cid) {
                continue;
            }
            if let Some(enc) = self.blocks.get(&cid) {
                if let Ok(node) = DagNode::decode(enc) {
                    stack.extend(node.children());
                }
            }
        }
        let mut removed = 0usize;
        let mut reclaimed = 0u64;
        self.blocks.retain(|cid, enc| {
            if live.contains(cid) {
                true
            } else {
                removed += 1;
                reclaimed += enc.len() as u64;
                false
            }
        });
        (removed, reclaimed)
    }

    /// Current statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            logical_bytes: self.logical_bytes,
            unique_bytes: self.blocks.values().map(|b| b.len() as u64).sum(),
            dedup_hits: self.dedup_hits,
            nodes: self.blocks.len(),
        }
    }

    /// Number of unique resident nodes.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl NodeSink for BlockStore {
    fn put_node(&mut self, node: &DagNode) -> Cid {
        let cid = node.cid();
        let encoded = node.encode();
        self.logical_bytes += encoded.len() as u64;
        match self.blocks.entry(cid) {
            std::collections::hash_map::Entry::Occupied(_) => self.dedup_hits += 1,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(encoded);
            }
        }
        cid
    }

    fn get_node(&self, cid: &Cid) -> Option<DagNode> {
        self.blocks.get(cid).and_then(|enc| DagNode::decode(enc).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{add_file, cat};
    use crate::Chunker;
    use blockprov_crypto::{sha256, HmacDrbg};

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
        let mut out = vec![0u8; len];
        drbg.fill_bytes(&mut out);
        out
    }

    #[test]
    fn duplicate_puts_dedup() {
        let mut store = BlockStore::new();
        let node = DagNode::Raw(b"dup".to_vec());
        let a = store.put_node(&node);
        let b = store.put_node(&node);
        assert_eq!(a, b);
        let s = store.stats();
        assert_eq!(s.nodes, 1);
        assert_eq!(s.dedup_hits, 1);
        assert!(s.dedup_ratio() > 1.9 && s.dedup_ratio() < 2.1);
    }

    #[test]
    fn put_encoded_verifies_digest() {
        let mut store = BlockStore::new();
        let node = DagNode::Raw(b"payload".to_vec());
        let cid = node.cid();
        assert!(store.put_encoded(cid, node.encode()));
        // Wrong CID for these bytes → rejected, nothing stored.
        let wrong = Cid(sha256(b"not the digest"));
        assert!(!store.put_encoded(wrong, node.encode()));
        assert!(!store.has(&wrong));
        // Corrupted bytes under the right CID → rejected.
        let mut bad = node.encode();
        bad[1] ^= 0xff;
        let fresh_cid = DagNode::Raw(b"other".to_vec()).cid();
        assert!(!store.put_encoded(fresh_cid, bad));
    }

    #[test]
    fn gc_keeps_pinned_subtree_only() {
        let mut store = BlockStore::new();
        let keep = sample(8_000, 1);
        let drop_ = sample(8_000, 2);
        let keep_root = add_file(&mut store, &keep, Chunker::Fixed(1024), 4);
        let drop_root = add_file(&mut store, &drop_, Chunker::Fixed(1024), 4);
        assert!(store.pin(keep_root));
        let before = store.len();
        let (removed, reclaimed) = store.gc();
        assert!(removed > 0 && reclaimed > 0);
        assert_eq!(store.len(), before - removed);
        // Pinned file still fully readable; unpinned one is gone.
        assert_eq!(cat(&store, &keep_root).unwrap(), keep);
        assert!(cat(&store, &drop_root).is_err());
    }

    #[test]
    fn gc_with_no_pins_clears_everything() {
        let mut store = BlockStore::new();
        add_file(&mut store, &sample(4_000, 3), Chunker::Fixed(512), 4);
        let (removed, _) = store.gc();
        assert!(removed > 0);
        assert!(store.is_empty());
    }

    #[test]
    fn unpin_then_gc_removes() {
        let mut store = BlockStore::new();
        let root = add_file(&mut store, b"short", Chunker::Fixed(16), 4);
        assert!(store.pin(root));
        assert!(store.unpin(&root));
        store.gc();
        assert!(!store.has(&root));
    }

    #[test]
    fn pin_missing_node_fails() {
        let mut store = BlockStore::new();
        assert!(!store.pin(Cid(sha256(b"ghost"))));
    }

    #[test]
    fn shared_chunks_survive_gc_of_sibling() {
        let mut store = BlockStore::new();
        // Two files sharing a long common prefix chunk-align under fixed
        // chunking, so they share leaves.
        let common = sample(4_096, 4);
        let mut a = common.clone();
        a.extend_from_slice(b"tail-a");
        let mut b = common.clone();
        b.extend_from_slice(b"tail-b");
        let ra = add_file(&mut store, &a, Chunker::Fixed(1024), 4);
        let rb = add_file(&mut store, &b, Chunker::Fixed(1024), 4);
        assert!(store.stats().dedup_hits >= 4, "prefix leaves should dedup");
        store.pin(ra);
        store.gc();
        // a intact, b's unique tail gone but shared leaves remain.
        assert_eq!(cat(&store, &ra).unwrap(), a);
        assert!(cat(&store, &rb).is_err());
    }
}
