//! Property tests for the storage substrate: chunking reassembly, DAG
//! round-trips, dedup invariants, and swarm availability.

use blockprov_storage::{
    add_file, cat, verify_subtree, BlockStore, Chunker, DagNode, NodeSink, Swarm,
};
use proptest::prelude::*;

proptest! {
    /// Chunks always concatenate back to the input, for both strategies.
    #[test]
    fn chunking_reassembles(data in proptest::collection::vec(any::<u8>(), 0..20_000),
                            fixed in 1usize..4096,
                            target in 64usize..4096) {
        let f: Vec<u8> = Chunker::Fixed(fixed).split(&data).concat();
        prop_assert_eq!(&f, &data);
        let c: Vec<u8> = Chunker::ContentDefined(target).split(&data).concat();
        prop_assert_eq!(&c, &data);
    }

    /// add_file → cat is the identity for any contents / chunker / fanout.
    #[test]
    fn add_cat_identity(data in proptest::collection::vec(any::<u8>(), 0..30_000),
                        fanout in 2usize..16,
                        fixed in prop::bool::ANY) {
        let chunker = if fixed { Chunker::Fixed(512) } else { Chunker::ContentDefined(512) };
        let mut store = BlockStore::new();
        let root = add_file(&mut store, &data, chunker, fanout);
        prop_assert_eq!(cat(&store, &root).unwrap(), data);
        prop_assert!(verify_subtree(&store, &root).is_ok());
    }

    /// Node encoding round-trips and CIDs are stable.
    #[test]
    fn node_codec_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let node = DagNode::Raw(bytes);
        let enc = node.encode();
        let back = DagNode::decode(&enc).unwrap();
        prop_assert_eq!(&back, &node);
        prop_assert_eq!(back.cid(), node.cid());
    }

    /// Storing the same file twice costs zero additional unique bytes.
    #[test]
    fn duplicate_files_fully_dedup(data in proptest::collection::vec(any::<u8>(), 1..10_000)) {
        let mut store = BlockStore::new();
        let r1 = add_file(&mut store, &data, Chunker::Fixed(1024), 8);
        let unique_after_first = store.stats().unique_bytes;
        let r2 = add_file(&mut store, &data, Chunker::Fixed(1024), 8);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(store.stats().unique_bytes, unique_after_first);
    }

    /// Swarm fetch agrees with a plain local store for the same content,
    /// and survives any single peer failure when replication ≥ 2.
    #[test]
    fn swarm_single_failure_tolerance(data in proptest::collection::vec(any::<u8>(), 1..8_000),
                                      kill in 0usize..6) {
        let mut swarm = Swarm::new(6, 2);
        let root = add_file(&mut swarm, &data, Chunker::Fixed(1024), 4);
        swarm.fail_peer(kill);
        prop_assert_eq!(cat(&swarm, &root).unwrap(), data);
    }

    /// GC never breaks a pinned file, regardless of what else was stored.
    #[test]
    fn gc_preserves_pinned(a in proptest::collection::vec(any::<u8>(), 1..5_000),
                           b in proptest::collection::vec(any::<u8>(), 1..5_000)) {
        let mut store = BlockStore::new();
        let ra = add_file(&mut store, &a, Chunker::ContentDefined(512), 4);
        let _rb = add_file(&mut store, &b, Chunker::ContentDefined(512), 4);
        store.pin(ra);
        store.gc();
        prop_assert_eq!(cat(&store, &ra).unwrap(), a);
    }
}

/// Deterministic placement: two swarms with identical membership place and
/// rank identically, so CIDs are portable across swarm instances.
#[test]
fn placement_is_deterministic_across_instances() {
    let mut s1 = Swarm::new(8, 3);
    let mut s2 = Swarm::new(8, 3);
    let data = b"deterministic placement".repeat(100);
    let r1 = add_file(&mut s1, &data, Chunker::Fixed(256), 4);
    let r2 = add_file(&mut s2, &data, Chunker::Fixed(256), 4);
    assert_eq!(r1, r2);
    assert_eq!(s1.replica_count(&r1), s2.replica_count(&r2));
    assert_eq!(s1.get_node(&r1), s2.get_node(&r2));
}
