//! Provenance records and the Table 1 domain field schemas.

use blockprov_crypto::sha256::{sha256, Hash256};
use blockprov_ledger::tx::AccountId;
use blockprov_wire::{decode_seq, encode_seq, Codec, Reader, WireError, Writer};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a provenance record (digest of its canonical encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub Hash256);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec:{}", self.0.short())
    }
}

impl Codec for RecordId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RecordId(Hash256::decode(r)?))
    }
}

/// What the agent did to the subject (the data-operation vocabulary shared
/// by ProvChain-style cloud auditing and the collaborative domains).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Entity came into existence.
    Create,
    /// Entity content was read.
    Read,
    /// Entity content changed.
    Update,
    /// Entity removed.
    Delete,
    /// Entity shared with another party.
    Share,
    /// Custody/ownership moved.
    Transfer,
    /// A task/process executed over the entity.
    Execute,
    /// Entity (and dependents) declared invalid.
    Invalidate,
    /// Domain-specific action.
    Custom(String),
}

impl Action {
    /// Stable label.
    pub fn label(&self) -> &str {
        match self {
            Action::Create => "create",
            Action::Read => "read",
            Action::Update => "update",
            Action::Delete => "delete",
            Action::Share => "share",
            Action::Transfer => "transfer",
            Action::Execute => "execute",
            Action::Invalidate => "invalidate",
            Action::Custom(s) => s,
        }
    }
}

impl Codec for Action {
    fn encode(&self, w: &mut Writer) {
        match self {
            Action::Create => w.put_u8(0),
            Action::Read => w.put_u8(1),
            Action::Update => w.put_u8(2),
            Action::Delete => w.put_u8(3),
            Action::Share => w.put_u8(4),
            Action::Transfer => w.put_u8(5),
            Action::Execute => w.put_u8(6),
            Action::Invalidate => w.put_u8(7),
            Action::Custom(s) => {
                w.put_u8(255);
                w.put_str(s);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Action::Create,
            1 => Action::Read,
            2 => Action::Update,
            3 => Action::Delete,
            4 => Action::Share,
            5 => Action::Transfer,
            6 => Action::Execute,
            7 => Action::Invalidate,
            255 => Action::Custom(r.get_string()?),
            v => {
                return Err(WireError::UnknownDiscriminant {
                    type_name: "Action",
                    value: v as u64,
                })
            }
        })
    }
}

/// Application domain (the columns of Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Single-entity cloud storage auditing (RQ1).
    Cloud,
    /// Product supply chains.
    SupplyChain,
    /// Digital forensics.
    DigitalForensics,
    /// Scientific workflow collaboration.
    ScientificCollaboration,
    /// Healthcare / EHR systems.
    Healthcare,
    /// Machine-learning asset tracking.
    MachineLearning,
    /// Unconstrained.
    Generic,
}

impl Domain {
    /// All domains, in Table 1/2 order.
    pub const ALL: [Domain; 7] = [
        Domain::SupplyChain,
        Domain::DigitalForensics,
        Domain::ScientificCollaboration,
        Domain::Healthcare,
        Domain::MachineLearning,
        Domain::Cloud,
        Domain::Generic,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Cloud => "Cloud Storage",
            Domain::SupplyChain => "Product Supply Chain",
            Domain::DigitalForensics => "Digital Forensics",
            Domain::ScientificCollaboration => "Scientific Collaboration",
            Domain::Healthcare => "Healthcare Systems",
            Domain::MachineLearning => "Machine Learning",
            Domain::Generic => "Generic",
        }
    }

    /// The provenance record fields of **Table 1** for this domain.
    ///
    /// Exactly the rows of the paper's table for the three tabulated
    /// domains; the remaining domains list the fields their surveyed
    /// systems record (§4.3–§4.4, [47]).
    pub fn record_fields(&self) -> &'static [&'static str] {
        match self {
            Domain::SupplyChain => &[
                "unique_product_id",
                "batch_or_lot_number",
                "manufacturing_date",
                "expiration_date",
                "travel_trace",
                "product_type_or_category",
                "manufacturer_id",
                "quick_access_url_or_qr",
            ],
            Domain::DigitalForensics => &[
                "case_number",
                "investigation_stage",
                "case_start_date",
                "case_closure_date",
                "file_types",
                "access_patterns",
                "files_dependency",
            ],
            Domain::ScientificCollaboration => &[
                "task_id",
                "workflow_id",
                "execution_time",
                "user_id",
                "input_data",
                "output_data",
                "invalidated_results",
            ],
            Domain::Healthcare => &[
                "patient_id",
                "record_type",
                "consent_reference",
                "provider_id",
                "access_purpose",
            ],
            Domain::MachineLearning => &[
                "asset_kind",
                "dataset_ids",
                "operation",
                "model_version",
                "training_round",
            ],
            Domain::Cloud => &["file_id", "operation", "user_pseudonym", "content_digest"],
            Domain::Generic => &[],
        }
    }

    /// Fields that must be present for a record of this domain to validate.
    ///
    /// A pragmatic subset of [`Domain::record_fields`] — fields knowable at
    /// record-creation time (e.g. `case_closure_date` only exists at case
    /// end, so it is optional).
    pub fn required_fields(&self) -> &'static [&'static str] {
        match self {
            Domain::SupplyChain => &["unique_product_id", "manufacturer_id"],
            Domain::DigitalForensics => &["case_number", "investigation_stage"],
            Domain::ScientificCollaboration => &["task_id", "workflow_id"],
            Domain::Healthcare => &["patient_id", "record_type"],
            Domain::MachineLearning => &["asset_kind"],
            Domain::Cloud => &["file_id", "operation"],
            Domain::Generic => &[],
        }
    }
}

impl Codec for Domain {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Domain::Cloud => 0,
            Domain::SupplyChain => 1,
            Domain::DigitalForensics => 2,
            Domain::ScientificCollaboration => 3,
            Domain::Healthcare => 4,
            Domain::MachineLearning => 5,
            Domain::Generic => 6,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Domain::Cloud,
            1 => Domain::SupplyChain,
            2 => Domain::DigitalForensics,
            3 => Domain::ScientificCollaboration,
            4 => Domain::Healthcare,
            5 => Domain::MachineLearning,
            6 => Domain::Generic,
            v => {
                return Err(WireError::UnknownDiscriminant {
                    type_name: "Domain",
                    value: v as u64,
                })
            }
        })
    }
}

/// The on-chain unit of provenance.
///
/// A record states: `agent` performed `action` on `subject` at
/// `timestamp_ms`, deriving from `parents`, with `fields` carrying the
/// domain schema of Table 1 and `content_hash` anchoring off-chain payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Stable name of the entity the record is about (file id, device id,
    /// case/evidence id, task id…).
    pub subject: String,
    /// Acting account (possibly a pseudonym — see `AccountId::pseudonym`).
    pub agent: AccountId,
    /// What happened.
    pub action: Action,
    /// When (milliseconds).
    pub timestamp_ms: u64,
    /// Which domain schema `fields` follows.
    pub domain: Domain,
    /// Table 1 fields (sorted map ⇒ canonical encoding).
    pub fields: BTreeMap<String, String>,
    /// Records this one derives from (DAG edges).
    pub parents: Vec<RecordId>,
    /// Digest of the off-chain content this record attests, if any.
    pub content_hash: Option<Hash256>,
}

impl ProvenanceRecord {
    /// Build a minimal record.
    pub fn new(
        subject: &str,
        agent: AccountId,
        action: Action,
        timestamp_ms: u64,
        domain: Domain,
    ) -> Self {
        Self {
            subject: subject.to_string(),
            agent,
            action,
            timestamp_ms,
            domain,
            fields: BTreeMap::new(),
            parents: Vec::new(),
            content_hash: None,
        }
    }

    /// Builder: set a Table 1 field.
    pub fn with_field(mut self, key: &str, value: &str) -> Self {
        self.fields.insert(key.to_string(), value.to_string());
        self
    }

    /// Builder: add a parent edge.
    pub fn with_parent(mut self, parent: RecordId) -> Self {
        self.parents.push(parent);
        self
    }

    /// Builder: anchor off-chain content.
    pub fn with_content(mut self, content: &[u8]) -> Self {
        self.content_hash = Some(sha256(content));
        self
    }

    /// The record id (digest of the canonical encoding).
    pub fn id(&self) -> RecordId {
        RecordId(sha256(&self.to_wire()))
    }

    /// Check the Table 1 schema: all required fields for the domain present.
    pub fn validate_schema(&self) -> Result<(), MissingField> {
        for field in self.domain.required_fields() {
            if !self.fields.contains_key(*field) {
                return Err(MissingField {
                    domain: self.domain,
                    field,
                });
            }
        }
        Ok(())
    }

    /// Encoded size in bytes (storage experiments).
    pub fn encoded_len(&self) -> usize {
        self.to_wire().len()
    }
}

/// Schema violation: a required Table 1 field is absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingField {
    /// The record's domain.
    pub domain: Domain,
    /// The missing field name.
    pub field: &'static str,
}

impl fmt::Display for MissingField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} record missing required field `{}`",
            self.domain.name(),
            self.field
        )
    }
}

impl std::error::Error for MissingField {}

impl Codec for ProvenanceRecord {
    fn encode(&self, w: &mut Writer) {
        self.subject.encode(w);
        self.agent.encode(w);
        self.action.encode(w);
        w.put_u64(self.timestamp_ms);
        self.domain.encode(w);
        w.put_varint(self.fields.len() as u64);
        for (k, v) in &self.fields {
            w.put_str(k);
            w.put_str(v);
        }
        encode_seq(&self.parents, w);
        self.content_hash.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let subject = String::decode(r)?;
        let agent = AccountId::decode(r)?;
        let action = Action::decode(r)?;
        let timestamp_ms = r.get_u64()?;
        let domain = Domain::decode(r)?;
        let n = r.get_len()?;
        let mut fields = BTreeMap::new();
        for _ in 0..n {
            let k = r.get_string()?;
            let v = r.get_string()?;
            fields.insert(k, v);
        }
        let parents = decode_seq(r)?;
        let content_hash = Option::<Hash256>::decode(r)?;
        Ok(Self {
            subject,
            agent,
            action,
            timestamp_ms,
            domain,
            fields,
            parents,
            content_hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ProvenanceRecord {
        ProvenanceRecord::new(
            "report.pdf",
            AccountId::from_name("alice"),
            Action::Update,
            1_700_000_000_000,
            Domain::Cloud,
        )
        .with_field("file_id", "report.pdf")
        .with_field("operation", "update")
        .with_content(b"v2 contents")
    }

    #[test]
    fn id_is_content_addressed() {
        let a = record();
        let b = record();
        assert_eq!(a.id(), b.id());
        let c = record().with_field("extra", "x");
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn codec_round_trip() {
        let r = record().with_parent(RecordId(sha256(b"parent")));
        let decoded = ProvenanceRecord::from_wire(&r.to_wire()).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.id(), r.id());
    }

    #[test]
    fn schema_validation_per_domain() {
        assert!(record().validate_schema().is_ok());
        let bad = ProvenanceRecord::new(
            "dev-1",
            AccountId::from_name("factory"),
            Action::Create,
            1,
            Domain::SupplyChain,
        );
        let err = bad.validate_schema().unwrap_err();
        assert_eq!(err.field, "unique_product_id");
        let good = bad
            .with_field("unique_product_id", "dev-1")
            .with_field("manufacturer_id", "acme");
        assert!(good.validate_schema().is_ok());
    }

    #[test]
    fn table1_fields_match_paper_columns() {
        // Spot-check the exact Table 1 rows.
        let sc = Domain::SupplyChain.record_fields();
        assert!(sc.contains(&"unique_product_id"));
        assert!(sc.contains(&"travel_trace"));
        assert!(sc.contains(&"quick_access_url_or_qr"));
        let df = Domain::DigitalForensics.record_fields();
        assert!(df.contains(&"case_number"));
        assert!(df.contains(&"files_dependency"));
        let sci = Domain::ScientificCollaboration.record_fields();
        assert!(sci.contains(&"workflow_id"));
        assert!(sci.contains(&"invalidated_results"));
    }

    #[test]
    fn custom_action_round_trips() {
        let mut r = record();
        r.action = Action::Custom("anonymize".to_string());
        let decoded = ProvenanceRecord::from_wire(&r.to_wire()).unwrap();
        assert_eq!(decoded.action.label(), "anonymize");
    }

    #[test]
    fn generic_domain_has_no_requirements() {
        let r = ProvenanceRecord::new(
            "x",
            AccountId::from_name("u"),
            Action::Read,
            0,
            Domain::Generic,
        );
        assert!(r.validate_schema().is_ok());
    }
}
