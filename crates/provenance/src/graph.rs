//! The provenance DAG: derivation edges, traversal and invalidation.
//!
//! Records form a DAG by construction (a record's parents must already
//! exist when it is inserted, so no cycle can be created). Invalidation
//! follows SciBlock [28]: invalidating a record marks it and every
//! *descendant whose timestamp is later than the invalidation point* —
//! results computed before the flaw was introduced stay valid.

use crate::model::{ProvenanceRecord, RecordId};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Graph mutation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A parent edge points at an unknown record.
    UnknownParent(RecordId),
    /// The record id is already present.
    DuplicateRecord(RecordId),
    /// Record not found.
    UnknownRecord(RecordId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownParent(id) => write!(f, "unknown parent {id}"),
            GraphError::DuplicateRecord(id) => write!(f, "duplicate record {id}"),
            GraphError::UnknownRecord(id) => write!(f, "unknown record {id}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// In-memory provenance DAG with derivation indexes.
#[derive(Debug, Default)]
pub struct ProvGraph {
    records: HashMap<RecordId, ProvenanceRecord>,
    /// parent → children.
    children: HashMap<RecordId, Vec<RecordId>>,
    /// Insertion order (stable iteration for queries).
    order: Vec<RecordId>,
    invalidated: BTreeSet<RecordId>,
}

impl ProvGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Insert a record; its parents must already be present (DAG invariant).
    pub fn insert(&mut self, record: ProvenanceRecord) -> Result<RecordId, GraphError> {
        let id = record.id();
        if self.records.contains_key(&id) {
            return Err(GraphError::DuplicateRecord(id));
        }
        for parent in &record.parents {
            if !self.records.contains_key(parent) {
                return Err(GraphError::UnknownParent(*parent));
            }
        }
        for parent in &record.parents {
            self.children.entry(*parent).or_default().push(id);
        }
        self.order.push(id);
        self.records.insert(id, record);
        Ok(id)
    }

    /// Fetch a record.
    pub fn get(&self, id: &RecordId) -> Option<&ProvenanceRecord> {
        self.records.get(id)
    }

    /// Records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&RecordId, &ProvenanceRecord)> {
        self.order.iter().map(move |id| (id, &self.records[id]))
    }

    /// Direct children of a record.
    pub fn children_of(&self, id: &RecordId) -> &[RecordId] {
        self.children.get(id).map_or(&[], Vec::as_slice)
    }

    /// All ancestors (transitive parents), breadth-first, nearest first.
    pub fn ancestors(&self, id: &RecordId) -> Result<Vec<RecordId>, GraphError> {
        if !self.records.contains_key(id) {
            return Err(GraphError::UnknownRecord(*id));
        }
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<RecordId> = self.records[id].parents.iter().copied().collect();
        while let Some(next) = queue.pop_front() {
            if !seen.insert(next) {
                continue;
            }
            out.push(next);
            queue.extend(self.records[&next].parents.iter().copied());
        }
        Ok(out)
    }

    /// All descendants (transitive children), breadth-first.
    pub fn descendants(&self, id: &RecordId) -> Result<Vec<RecordId>, GraphError> {
        if !self.records.contains_key(id) {
            return Err(GraphError::UnknownRecord(*id));
        }
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<RecordId> = self.children_of(id).iter().copied().collect();
        while let Some(next) = queue.pop_front() {
            if !seen.insert(next) {
                continue;
            }
            out.push(next);
            queue.extend(self.children_of(&next).iter().copied());
        }
        Ok(out)
    }

    /// Whether a record has been invalidated.
    pub fn is_invalidated(&self, id: &RecordId) -> bool {
        self.invalidated.contains(id)
    }

    /// Invalidate `id` and every descendant with `timestamp_ms >= cutoff_ms`
    /// (SciBlock's timestamp rule). Returns the ids invalidated, root first.
    pub fn invalidate_from(
        &mut self,
        id: &RecordId,
        cutoff_ms: u64,
    ) -> Result<Vec<RecordId>, GraphError> {
        let descendants = self.descendants(id)?;
        let mut hit = vec![*id];
        hit.extend(
            descendants
                .into_iter()
                .filter(|d| self.records[d].timestamp_ms >= cutoff_ms),
        );
        for h in &hit {
            self.invalidated.insert(*h);
        }
        Ok(hit)
    }

    /// Count of invalidated records.
    pub fn invalidated_count(&self) -> usize {
        self.invalidated.len()
    }

    /// Valid (non-invalidated) records in insertion order.
    pub fn valid_records(&self) -> impl Iterator<Item = (&RecordId, &ProvenanceRecord)> {
        self.iter()
            .filter(move |(id, _)| !self.invalidated.contains(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Action, Domain};
    use blockprov_ledger::tx::AccountId;

    fn rec(subject: &str, ts: u64, parents: Vec<RecordId>) -> ProvenanceRecord {
        let mut r = ProvenanceRecord::new(
            subject,
            AccountId::from_name("u"),
            Action::Update,
            ts,
            Domain::Generic,
        );
        r.parents = parents;
        r
    }

    /// Build:  a(10) → b(20) → d(40)
    ///              ↘ c(30) ↗
    fn diamond() -> (ProvGraph, [RecordId; 4]) {
        let mut g = ProvGraph::new();
        let a = g.insert(rec("a", 10, vec![])).unwrap();
        let b = g.insert(rec("b", 20, vec![a])).unwrap();
        let c = g.insert(rec("c", 30, vec![a])).unwrap();
        let d = g.insert(rec("d", 40, vec![b, c])).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn parents_must_exist() {
        let mut g = ProvGraph::new();
        let ghost = rec("x", 1, vec![]).id();
        assert_eq!(
            g.insert(rec("y", 2, vec![ghost])),
            Err(GraphError::UnknownParent(ghost))
        );
    }

    #[test]
    fn duplicates_rejected() {
        let mut g = ProvGraph::new();
        g.insert(rec("a", 1, vec![])).unwrap();
        assert!(matches!(
            g.insert(rec("a", 1, vec![])),
            Err(GraphError::DuplicateRecord(_))
        ));
    }

    #[test]
    fn ancestry_and_descent() {
        let (g, [a, b, c, d]) = diamond();
        let anc: BTreeSet<_> = g.ancestors(&d).unwrap().into_iter().collect();
        assert_eq!(anc, [a, b, c].into_iter().collect());
        let desc: BTreeSet<_> = g.descendants(&a).unwrap().into_iter().collect();
        assert_eq!(desc, [b, c, d].into_iter().collect());
        assert!(g.ancestors(&a).unwrap().is_empty());
        assert!(g.descendants(&d).unwrap().is_empty());
    }

    #[test]
    fn diamond_traversal_deduplicates() {
        let (g, [a, _, _, d]) = diamond();
        // `a` is reachable from `d` via two paths but appears once.
        let anc = g.ancestors(&d).unwrap();
        assert_eq!(anc.iter().filter(|x| **x == a).count(), 1);
    }

    #[test]
    fn invalidation_propagates_by_timestamp() {
        let (mut g, [_a, b, c, d]) = diamond();
        // Invalidate b (ts 20) with cutoff 35: d (40) falls, c (30) is not a
        // descendant of b so it stays valid regardless.
        let hit = g.invalidate_from(&b, 35).unwrap();
        assert_eq!(hit, vec![b, d]);
        assert!(g.is_invalidated(&b) && g.is_invalidated(&d));
        assert!(!g.is_invalidated(&c));
        assert_eq!(g.invalidated_count(), 2);
        assert_eq!(g.valid_records().count(), 2);
    }

    #[test]
    fn invalidation_cutoff_spares_earlier_descendants() {
        let mut g = ProvGraph::new();
        let a = g.insert(rec("a", 10, vec![])).unwrap();
        let b = g.insert(rec("b", 20, vec![a])).unwrap();
        let c = g.insert(rec("c", 90, vec![b])).unwrap();
        // Cutoff 50: b (20) is a descendant but predates the cutoff → valid.
        let hit = g.invalidate_from(&a, 50).unwrap();
        assert_eq!(hit, vec![a, c]);
        assert!(!g.is_invalidated(&b));
    }

    #[test]
    fn unknown_record_errors() {
        let g = ProvGraph::new();
        let ghost = rec("x", 1, vec![]).id();
        assert!(matches!(
            g.ancestors(&ghost),
            Err(GraphError::UnknownRecord(_))
        ));
        assert!(matches!(
            g.descendants(&ghost),
            Err(GraphError::UnknownRecord(_))
        ));
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let (g, [a, b, c, d]) = diamond();
        let ids: Vec<RecordId> = g.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![a, b, c, d]);
    }
}
