//! Data accountability and usage control — the Neisse et al. [58]
//! reproduction (GDPR-style provenance).
//!
//! The survey lists GDPR as a driving use case for collaborative provenance
//! (§1). Neisse et al. put *data-usage policies* on a blockchain and hold
//! controllers/processors accountable by recording every usage event
//! against them. This module reproduces that accountability core:
//!
//! * a controller declares a [`UsagePolicy`] per data item: permitted
//!   purposes, authorized processors, a retention deadline and the consent
//!   state;
//! * every processing action is recorded as a hash-chained [`UsageEvent`]
//!   and judged against the policy at record time — violations are
//!   *recorded, not hidden* (accountability means the evidence of misuse is
//!   as durable as the evidence of use);
//! * data-subject rights map to queries: right of access =
//!   [`AccountabilityLedger::subject_report`], right to erasure = the
//!   retention obligation surfaced by
//!   [`AccountabilityLedger::due_obligations`] and discharged by
//!   [`AccountabilityLedger::record_erasure`];
//! * consent withdrawal flips the policy so later events are violations.

use blockprov_crypto::sha256::{hash_parts, Hash256};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A declared data-usage policy for one data item.
#[derive(Debug, Clone)]
pub struct UsagePolicy {
    /// The data subject the item is about.
    pub subject: String,
    /// The controller who declared the policy.
    pub controller: String,
    /// Purposes processing may claim.
    pub purposes: BTreeSet<String>,
    /// Processors authorized to act.
    pub processors: BTreeSet<String>,
    /// Last day (inclusive) the data may be processed / retained.
    pub retention_until_day: u64,
    /// Whether the subject has withdrawn consent.
    pub consent_withdrawn: bool,
    /// Whether the item has been erased.
    pub erased: bool,
}

/// Why a usage event violated its policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// No policy declared for the data item.
    NoPolicy,
    /// Purpose not in the policy's permitted set.
    PurposeMismatch,
    /// Processor not authorized.
    UnauthorizedProcessor,
    /// Processing after the retention deadline.
    RetentionExpired,
    /// Processing after consent withdrawal.
    ConsentWithdrawn,
    /// Processing after erasure.
    DataErased,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            Violation::NoPolicy => "no policy declared",
            Violation::PurposeMismatch => "purpose not permitted",
            Violation::UnauthorizedProcessor => "processor not authorized",
            Violation::RetentionExpired => "retention period expired",
            Violation::ConsentWithdrawn => "consent withdrawn",
            Violation::DataErased => "data already erased",
        };
        write!(f, "{msg}")
    }
}

/// Verdict recorded with each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Event complied with the policy.
    Compliant,
    /// Event violated the policy.
    Violation(Violation),
}

/// One recorded usage event (hash-chained).
#[derive(Debug, Clone)]
pub struct UsageEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The data item.
    pub data_key: String,
    /// Acting processor.
    pub processor: String,
    /// Claimed purpose.
    pub purpose: String,
    /// Logical day of the event.
    pub day: u64,
    /// The verdict at record time.
    pub verdict: Verdict,
    /// Hash chain value.
    pub chain: Hash256,
}

/// A due obligation surfaced by the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obligation {
    /// Retention deadline passed; the item must be erased.
    EraseExpired {
        /// The overdue data item.
        data_key: String,
        /// Deadline that passed.
        deadline_day: u64,
    },
    /// Consent withdrawn; the item must be erased.
    EraseWithdrawn {
        /// The data item.
        data_key: String,
    },
}

/// Errors from the accountability ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccountabilityError {
    /// Policy already declared for this data item.
    DuplicatePolicy(String),
    /// No policy for this data item.
    UnknownData(String),
}

impl fmt::Display for AccountabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountabilityError::DuplicatePolicy(k) => {
                write!(f, "policy for {k:?} already declared")
            }
            AccountabilityError::UnknownData(k) => write!(f, "no policy for {k:?}"),
        }
    }
}

impl std::error::Error for AccountabilityError {}

/// The accountability ledger: policies + the hash-chained event log.
#[derive(Debug, Default)]
pub struct AccountabilityLedger {
    policies: BTreeMap<String, UsagePolicy>,
    events: Vec<UsageEvent>,
    day: u64,
}

impl AccountabilityLedger {
    /// Empty ledger at day 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the logical calendar.
    pub fn advance_days(&mut self, days: u64) {
        self.day += days;
    }

    /// Current logical day.
    pub fn today(&self) -> u64 {
        self.day
    }

    /// Declare a policy for a data item.
    pub fn declare_policy(
        &mut self,
        data_key: &str,
        subject: &str,
        controller: &str,
        purposes: &[&str],
        processors: &[&str],
        retention_days: u64,
    ) -> Result<(), AccountabilityError> {
        if self.policies.contains_key(data_key) {
            return Err(AccountabilityError::DuplicatePolicy(data_key.to_string()));
        }
        self.policies.insert(
            data_key.to_string(),
            UsagePolicy {
                subject: subject.to_string(),
                controller: controller.to_string(),
                purposes: purposes.iter().map(|s| s.to_string()).collect(),
                processors: processors.iter().map(|s| s.to_string()).collect(),
                retention_until_day: self.day + retention_days,
                consent_withdrawn: false,
                erased: false,
            },
        );
        Ok(())
    }

    /// The policy for a data item.
    pub fn policy(&self, data_key: &str) -> Option<&UsagePolicy> {
        self.policies.get(data_key)
    }

    fn judge(&self, data_key: &str, processor: &str, purpose: &str) -> Verdict {
        let Some(policy) = self.policies.get(data_key) else {
            return Verdict::Violation(Violation::NoPolicy);
        };
        if policy.erased {
            Verdict::Violation(Violation::DataErased)
        } else if policy.consent_withdrawn {
            Verdict::Violation(Violation::ConsentWithdrawn)
        } else if self.day > policy.retention_until_day {
            Verdict::Violation(Violation::RetentionExpired)
        } else if !policy.processors.contains(processor) {
            Verdict::Violation(Violation::UnauthorizedProcessor)
        } else if !policy.purposes.contains(purpose) {
            Verdict::Violation(Violation::PurposeMismatch)
        } else {
            Verdict::Compliant
        }
    }

    fn append_event(&mut self, data_key: &str, processor: &str, purpose: &str, verdict: Verdict) {
        let seq = self.events.len() as u64;
        let prev = self.events.last().map(|e| e.chain).unwrap_or(Hash256::ZERO);
        let verdict_byte = [match verdict {
            Verdict::Compliant => 0u8,
            Verdict::Violation(_) => 1u8,
        }];
        let chain = hash_parts(
            "blockprov-accountability",
            &[
                prev.as_bytes(),
                data_key.as_bytes(),
                processor.as_bytes(),
                purpose.as_bytes(),
                &self.day.to_le_bytes(),
                &verdict_byte,
            ],
        );
        self.events.push(UsageEvent {
            seq,
            data_key: data_key.to_string(),
            processor: processor.to_string(),
            purpose: purpose.to_string(),
            day: self.day,
            verdict,
            chain,
        });
    }

    /// Record a processing action and judge it. The verdict is returned
    /// *and* durably recorded — violations are evidence, not errors.
    pub fn record_usage(&mut self, data_key: &str, processor: &str, purpose: &str) -> Verdict {
        let verdict = self.judge(data_key, processor, purpose);
        self.append_event(data_key, processor, purpose, verdict);
        verdict
    }

    /// The subject withdraws consent for a data item.
    pub fn withdraw_consent(&mut self, data_key: &str) -> Result<(), AccountabilityError> {
        let policy = self
            .policies
            .get_mut(data_key)
            .ok_or_else(|| AccountabilityError::UnknownData(data_key.to_string()))?;
        policy.consent_withdrawn = true;
        Ok(())
    }

    /// Obligations currently due (erasures for expired / withdrawn items).
    pub fn due_obligations(&self) -> Vec<Obligation> {
        let mut due = Vec::new();
        for (key, p) in &self.policies {
            if p.erased {
                continue;
            }
            if p.consent_withdrawn {
                due.push(Obligation::EraseWithdrawn { data_key: key.clone() });
            } else if self.day > p.retention_until_day {
                due.push(Obligation::EraseExpired {
                    data_key: key.clone(),
                    deadline_day: p.retention_until_day,
                });
            }
        }
        due
    }

    /// Discharge an erasure obligation (recorded as a compliant event with
    /// the reserved purpose `"erasure"`).
    pub fn record_erasure(
        &mut self,
        data_key: &str,
        processor: &str,
    ) -> Result<(), AccountabilityError> {
        let policy = self
            .policies
            .get_mut(data_key)
            .ok_or_else(|| AccountabilityError::UnknownData(data_key.to_string()))?;
        policy.erased = true;
        self.append_event(data_key, processor, "erasure", Verdict::Compliant);
        Ok(())
    }

    /// Right of access: every event about the subject's data items.
    pub fn subject_report(&self, subject: &str) -> Vec<&UsageEvent> {
        let keys: BTreeSet<&str> = self
            .policies
            .iter()
            .filter(|(_, p)| p.subject == subject)
            .map(|(k, _)| k.as_str())
            .collect();
        self.events
            .iter()
            .filter(|e| keys.contains(e.data_key.as_str()))
            .collect()
    }

    /// All recorded violations (the supervisory-authority view).
    pub fn violations(&self) -> Vec<&UsageEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.verdict, Verdict::Violation(_)))
            .collect()
    }

    /// All events, oldest first.
    pub fn events(&self) -> &[UsageEvent] {
        &self.events
    }

    /// Verify the event hash chain.
    pub fn verify_chain(&self) -> bool {
        let mut prev = Hash256::ZERO;
        for e in &self.events {
            let verdict_byte = [match e.verdict {
                Verdict::Compliant => 0u8,
                Verdict::Violation(_) => 1u8,
            }];
            let expect = hash_parts(
                "blockprov-accountability",
                &[
                    prev.as_bytes(),
                    e.data_key.as_bytes(),
                    e.processor.as_bytes(),
                    e.purpose.as_bytes(),
                    &e.day.to_le_bytes(),
                    &verdict_byte,
                ],
            );
            if e.chain != expect {
                return false;
            }
            prev = e.chain;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_with_policy() -> AccountabilityLedger {
        let mut l = AccountabilityLedger::new();
        l.declare_policy(
            "ehr/alice/visit-1",
            "alice",
            "clinic",
            &["treatment", "billing"],
            &["dr-bob", "billing-svc"],
            30,
        )
        .unwrap();
        l
    }

    #[test]
    fn compliant_usage_recorded_as_compliant() {
        let mut l = ledger_with_policy();
        let v = l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment");
        assert_eq!(v, Verdict::Compliant);
        assert_eq!(l.events().len(), 1);
        assert!(l.violations().is_empty());
    }

    #[test]
    fn purpose_mismatch_is_a_recorded_violation() {
        let mut l = ledger_with_policy();
        let v = l.record_usage("ehr/alice/visit-1", "dr-bob", "marketing");
        assert_eq!(v, Verdict::Violation(Violation::PurposeMismatch));
        assert_eq!(l.violations().len(), 1, "violations are evidence, not dropped");
    }

    #[test]
    fn unauthorized_processor_detected() {
        let mut l = ledger_with_policy();
        let v = l.record_usage("ehr/alice/visit-1", "data-broker", "treatment");
        assert_eq!(v, Verdict::Violation(Violation::UnauthorizedProcessor));
    }

    #[test]
    fn retention_expiry_detected() {
        let mut l = ledger_with_policy();
        l.advance_days(31);
        let v = l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment");
        assert_eq!(v, Verdict::Violation(Violation::RetentionExpired));
    }

    #[test]
    fn consent_withdrawal_blocks_future_use() {
        let mut l = ledger_with_policy();
        assert_eq!(l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment"), Verdict::Compliant);
        l.withdraw_consent("ehr/alice/visit-1").unwrap();
        assert_eq!(
            l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment"),
            Verdict::Violation(Violation::ConsentWithdrawn)
        );
    }

    #[test]
    fn unknown_data_is_no_policy_violation() {
        let mut l = AccountabilityLedger::new();
        assert_eq!(
            l.record_usage("unregistered", "p", "x"),
            Verdict::Violation(Violation::NoPolicy)
        );
    }

    #[test]
    fn duplicate_policy_rejected() {
        let mut l = ledger_with_policy();
        assert_eq!(
            l.declare_policy("ehr/alice/visit-1", "alice", "clinic", &[], &[], 1)
                .unwrap_err(),
            AccountabilityError::DuplicatePolicy("ehr/alice/visit-1".into())
        );
    }

    #[test]
    fn obligations_surface_and_discharge() {
        let mut l = ledger_with_policy();
        assert!(l.due_obligations().is_empty());
        l.advance_days(31);
        assert_eq!(
            l.due_obligations(),
            vec![Obligation::EraseExpired {
                data_key: "ehr/alice/visit-1".into(),
                deadline_day: 30
            }]
        );
        l.record_erasure("ehr/alice/visit-1", "clinic").unwrap();
        assert!(l.due_obligations().is_empty());
        // Post-erasure use is its own violation class.
        assert_eq!(
            l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment"),
            Verdict::Violation(Violation::DataErased)
        );
    }

    #[test]
    fn withdrawal_creates_erasure_obligation() {
        let mut l = ledger_with_policy();
        l.withdraw_consent("ehr/alice/visit-1").unwrap();
        assert_eq!(
            l.due_obligations(),
            vec![Obligation::EraseWithdrawn { data_key: "ehr/alice/visit-1".into() }]
        );
    }

    #[test]
    fn subject_report_covers_only_their_data() {
        let mut l = ledger_with_policy();
        l.declare_policy("ehr/bob/visit-9", "bob", "clinic", &["treatment"], &["dr-bob"], 30)
            .unwrap();
        l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment");
        l.record_usage("ehr/bob/visit-9", "dr-bob", "treatment");
        l.record_usage("ehr/alice/visit-1", "billing-svc", "billing");
        let alice = l.subject_report("alice");
        assert_eq!(alice.len(), 2);
        assert!(alice.iter().all(|e| e.data_key.contains("alice")));
        assert_eq!(l.subject_report("bob").len(), 1);
        assert!(l.subject_report("nobody").is_empty());
    }

    #[test]
    fn event_chain_is_tamper_evident() {
        let mut l = ledger_with_policy();
        l.record_usage("ehr/alice/visit-1", "dr-bob", "treatment");
        l.record_usage("ehr/alice/visit-1", "data-broker", "treatment");
        assert!(l.verify_chain());
        // A processor trying to scrub its violation from history:
        l.events[1].verdict = Verdict::Compliant;
        assert!(!l.verify_chain());
    }
}
