//! Provenance query engine and the repeated-query cache.
//!
//! §6.1 "Provenance Query": *"sometimes precise information is extracted,
//! while other times a batch of information containing the required data is
//! retrieved"*. The engine supports both: precise subject/agent/time-window
//! queries over indexes, whole-lineage retrieval, and batch execution.
//!
//! §6.2 lists **repeated queries** as under-explored future work — identical
//! queries causing redundant retrievals. [`QueryCache`] implements the
//! suggested optimization: a bounded memoization layer keyed by query
//! digest, invalidated wholesale when the graph version advances, so cached
//! answers can never go stale.

use crate::graph::ProvGraph;
use crate::model::{Action, Domain, ProvenanceRecord, RecordId};
use blockprov_crypto::sha256::{hash_parts, Hash256};
use blockprov_ledger::tx::AccountId;
use std::collections::{BTreeMap, HashMap};

/// A provenance query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProvQuery {
    /// All records about a subject, oldest first.
    BySubject(String),
    /// All records authored by an agent.
    ByAgent(AccountId),
    /// Records in `[from_ms, until_ms)`.
    ByTimeRange {
        /// Inclusive lower bound (ms).
        from_ms: u64,
        /// Exclusive upper bound (ms).
        until_ms: u64,
    },
    /// Records of a domain.
    ByDomain(Domain),
    /// Records with a given action.
    ByAction(Action),
    /// Full lineage of a subject: its records plus all their ancestors.
    Lineage(String),
}

impl ProvQuery {
    /// Stable digest of the query (cache key).
    pub fn digest(&self) -> Hash256 {
        match self {
            ProvQuery::BySubject(s) => hash_parts("q-subject", &[s.as_bytes()]),
            ProvQuery::ByAgent(a) => hash_parts("q-agent", &[a.0.as_bytes()]),
            ProvQuery::ByTimeRange { from_ms, until_ms } => {
                hash_parts("q-time", &[&from_ms.to_le_bytes(), &until_ms.to_le_bytes()])
            }
            ProvQuery::ByDomain(d) => hash_parts("q-domain", &[d.name().as_bytes()]),
            ProvQuery::ByAction(a) => hash_parts("q-action", &[a.label().as_bytes()]),
            ProvQuery::Lineage(s) => hash_parts("q-lineage", &[s.as_bytes()]),
        }
    }
}

/// A query answer: matching record ids in a deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Matching records, oldest first.
    pub ids: Vec<RecordId>,
    /// Whether this answer came from the cache.
    pub from_cache: bool,
}

/// Indexed query engine over a [`ProvGraph`].
///
/// Indexes are maintained incrementally by [`QueryEngine::index_record`];
/// the engine holds ids only — record bodies stay in the graph.
#[derive(Debug, Default)]
pub struct QueryEngine {
    by_subject: HashMap<String, Vec<RecordId>>,
    by_agent: HashMap<AccountId, Vec<RecordId>>,
    by_domain: HashMap<Domain, Vec<RecordId>>,
    by_action: HashMap<String, Vec<RecordId>>,
    by_time: BTreeMap<(u64, RecordId), RecordId>,
    /// Monotonic version, bumped on every index mutation.
    version: u64,
}

impl QueryEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an engine over every record already in a graph.
    pub fn build_from(graph: &ProvGraph) -> Self {
        let mut engine = Self::new();
        for (id, record) in graph.iter() {
            engine.index_record(*id, record);
        }
        engine
    }

    /// Index one record (call after inserting it into the graph).
    pub fn index_record(&mut self, id: RecordId, record: &ProvenanceRecord) {
        self.by_subject
            .entry(record.subject.clone())
            .or_default()
            .push(id);
        self.by_agent.entry(record.agent).or_default().push(id);
        self.by_domain.entry(record.domain).or_default().push(id);
        self.by_action
            .entry(record.action.label().to_string())
            .or_default()
            .push(id);
        self.by_time.insert((record.timestamp_ms, id), id);
        self.version += 1;
    }

    /// Current index version (cache invalidation token).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Execute a query against the graph using the indexes.
    pub fn execute(&self, graph: &ProvGraph, query: &ProvQuery) -> QueryResult {
        let ids = match query {
            ProvQuery::BySubject(s) => self.by_subject.get(s).cloned().unwrap_or_default(),
            ProvQuery::ByAgent(a) => self.by_agent.get(a).cloned().unwrap_or_default(),
            ProvQuery::ByDomain(d) => self.by_domain.get(d).cloned().unwrap_or_default(),
            ProvQuery::ByAction(a) => self.by_action.get(a.label()).cloned().unwrap_or_default(),
            ProvQuery::ByTimeRange { from_ms, until_ms } => self
                .by_time
                .range((*from_ms, RecordId(Hash256::ZERO))..(*until_ms, RecordId(Hash256::ZERO)))
                .map(|(_, id)| *id)
                .collect(),
            ProvQuery::Lineage(s) => {
                let own = self.by_subject.get(s).cloned().unwrap_or_default();
                let mut out = Vec::new();
                let mut seen = std::collections::BTreeSet::new();
                for id in own {
                    if seen.insert(id) {
                        out.push(id);
                    }
                    if let Ok(ancestors) = graph.ancestors(&id) {
                        for a in ancestors {
                            if seen.insert(a) {
                                out.push(a);
                            }
                        }
                    }
                }
                out
            }
        };
        QueryResult {
            ids,
            from_cache: false,
        }
    }

    /// Linear-scan execution (no indexes) — the baseline experiment E2
    /// compares against.
    pub fn execute_scan(graph: &ProvGraph, query: &ProvQuery) -> QueryResult {
        let matches = |record: &ProvenanceRecord| -> bool {
            match query {
                ProvQuery::BySubject(s) | ProvQuery::Lineage(s) => record.subject == *s,
                ProvQuery::ByAgent(a) => record.agent == *a,
                ProvQuery::ByDomain(d) => record.domain == *d,
                ProvQuery::ByAction(a) => record.action == *a,
                ProvQuery::ByTimeRange { from_ms, until_ms } => {
                    record.timestamp_ms >= *from_ms && record.timestamp_ms < *until_ms
                }
            }
        };
        let mut ids: Vec<RecordId> = graph
            .iter()
            .filter(|(_, r)| matches(r))
            .map(|(id, _)| *id)
            .collect();
        if let ProvQuery::Lineage(_) = query {
            let own = ids.clone();
            let mut seen: std::collections::BTreeSet<RecordId> = own.iter().copied().collect();
            for id in own {
                if let Ok(ancestors) = graph.ancestors(&id) {
                    for a in ancestors {
                        if seen.insert(a) {
                            ids.push(a);
                        }
                    }
                }
            }
        }
        QueryResult {
            ids,
            from_cache: false,
        }
    }

    /// Execute a batch of queries (returns answers in input order).
    pub fn execute_batch(&self, graph: &ProvGraph, queries: &[ProvQuery]) -> Vec<QueryResult> {
        queries.iter().map(|q| self.execute(graph, q)).collect()
    }
}

/// Bounded repeated-query cache (§6.2 future work).
///
/// Entries are valid only for the engine version they were computed at; a
/// version bump (any new record) invalidates everything, guaranteeing
/// freshness — the conservative consistency model the paper's "freshness
/// concerns" ask for.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    entries: HashMap<Hash256, (u64, Vec<RecordId>)>,
    /// Insertion order for cheap eviction.
    fifo: std::collections::VecDeque<Hash256>,
    /// Cache hits served.
    pub hits: u64,
    /// Cache misses (computed fresh).
    pub misses: u64,
}

impl QueryCache {
    /// Create with an entry bound.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            fifo: std::collections::VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Execute with memoization.
    pub fn execute(
        &mut self,
        engine: &QueryEngine,
        graph: &ProvGraph,
        query: &ProvQuery,
    ) -> QueryResult {
        let key = query.digest();
        if let Some((version, ids)) = self.entries.get(&key) {
            if *version == engine.version() {
                self.hits += 1;
                return QueryResult {
                    ids: ids.clone(),
                    from_cache: true,
                };
            }
        }
        self.misses += 1;
        let result = engine.execute(graph, query);
        if self.entries.len() >= self.capacity {
            if let Some(evict) = self.fifo.pop_front() {
                self.entries.remove(&evict);
            }
        }
        self.entries
            .insert(key, (engine.version(), result.ids.clone()));
        self.fifo.push_back(key);
        result
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(n: &str) -> AccountId {
        AccountId::from_name(n)
    }

    fn rec(subject: &str, agent: &str, ts: u64, parents: Vec<RecordId>) -> ProvenanceRecord {
        let mut r = ProvenanceRecord::new(subject, acct(agent), Action::Update, ts, Domain::Cloud);
        r.parents = parents;
        r
    }

    fn setup() -> (ProvGraph, QueryEngine, Vec<RecordId>) {
        let mut g = ProvGraph::new();
        let a = g.insert(rec("raw.csv", "alice", 10, vec![])).unwrap();
        let b = g.insert(rec("clean.csv", "bob", 20, vec![a])).unwrap();
        let c = g.insert(rec("model.bin", "bob", 30, vec![b])).unwrap();
        let d = g.insert(rec("raw.csv", "alice", 40, vec![a])).unwrap();
        let e = QueryEngine::build_from(&g);
        (g, e, vec![a, b, c, d])
    }

    #[test]
    fn subject_agent_time_queries() {
        let (g, e, ids) = setup();
        assert_eq!(
            e.execute(&g, &ProvQuery::BySubject("raw.csv".into())).ids,
            vec![ids[0], ids[3]]
        );
        assert_eq!(
            e.execute(&g, &ProvQuery::ByAgent(acct("bob"))).ids,
            vec![ids[1], ids[2]]
        );
        let window = e.execute(
            &g,
            &ProvQuery::ByTimeRange {
                from_ms: 15,
                until_ms: 35,
            },
        );
        assert_eq!(window.ids, vec![ids[1], ids[2]]);
        // Exclusive upper bound.
        let edge = e.execute(
            &g,
            &ProvQuery::ByTimeRange {
                from_ms: 10,
                until_ms: 10,
            },
        );
        assert!(edge.ids.is_empty());
    }

    #[test]
    fn lineage_includes_ancestors() {
        let (g, e, ids) = setup();
        let lineage = e.execute(&g, &ProvQuery::Lineage("model.bin".into()));
        // model.bin record + its ancestors clean.csv and raw.csv(a).
        assert_eq!(lineage.ids.len(), 3);
        assert!(lineage.ids.contains(&ids[0]));
        assert!(lineage.ids.contains(&ids[1]));
        assert!(lineage.ids.contains(&ids[2]));
    }

    #[test]
    fn indexed_matches_scan_for_every_query_kind() {
        let (g, e, _) = setup();
        let queries = [
            ProvQuery::BySubject("raw.csv".into()),
            ProvQuery::ByAgent(acct("alice")),
            ProvQuery::ByTimeRange {
                from_ms: 0,
                until_ms: 100,
            },
            ProvQuery::ByDomain(Domain::Cloud),
            ProvQuery::ByAction(Action::Update),
            ProvQuery::Lineage("model.bin".into()),
        ];
        for q in &queries {
            let indexed: std::collections::BTreeSet<_> = e.execute(&g, q).ids.into_iter().collect();
            let scanned: std::collections::BTreeSet<_> =
                QueryEngine::execute_scan(&g, q).ids.into_iter().collect();
            assert_eq!(indexed, scanned, "query {q:?}");
        }
    }

    #[test]
    fn batch_returns_in_input_order() {
        let (g, e, _) = setup();
        let qs = vec![
            ProvQuery::BySubject("raw.csv".into()),
            ProvQuery::BySubject("model.bin".into()),
        ];
        let results = e.execute_batch(&g, &qs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].ids.len(), 2);
        assert_eq!(results[1].ids.len(), 1);
    }

    #[test]
    fn cache_hits_repeated_queries_and_invalidates_on_growth() {
        let (mut g, mut e, _) = setup();
        let mut cache = QueryCache::new(16);
        let q = ProvQuery::BySubject("raw.csv".into());
        let first = cache.execute(&e, &g, &q);
        assert!(!first.from_cache);
        let second = cache.execute(&e, &g, &q);
        assert!(second.from_cache);
        assert_eq!(second.ids, first.ids);
        assert_eq!((cache.hits, cache.misses), (1, 1));

        // New record bumps the version: the cached entry must not be served.
        let id = g.insert(rec("raw.csv", "carol", 50, vec![])).unwrap();
        e.index_record(id, g.get(&id).unwrap());
        let third = cache.execute(&e, &g, &q);
        assert!(!third.from_cache, "stale entry must not be served");
        assert_eq!(third.ids.len(), 3);
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        let (g, e, _) = setup();
        let mut cache = QueryCache::new(2);
        cache.execute(&e, &g, &ProvQuery::BySubject("a".into()));
        cache.execute(&e, &g, &ProvQuery::BySubject("b".into()));
        cache.execute(&e, &g, &ProvQuery::BySubject("c".into()));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn unknown_subject_yields_empty() {
        let (g, e, _) = setup();
        assert!(e
            .execute(&g, &ProvQuery::BySubject("ghost".into()))
            .ids
            .is_empty());
        assert!(e
            .execute(&g, &ProvQuery::Lineage("ghost".into()))
            .ids
            .is_empty());
    }

    #[test]
    fn query_digests_are_distinct() {
        let qs = [
            ProvQuery::BySubject("x".into()),
            ProvQuery::Lineage("x".into()),
            ProvQuery::ByAgent(acct("x")),
            ProvQuery::ByTimeRange {
                from_ms: 0,
                until_ms: 1,
            },
        ];
        let digests: std::collections::BTreeSet<_> = qs.iter().map(ProvQuery::digest).collect();
        assert_eq!(digests.len(), qs.len());
    }
}
