//! The provenance model: records, graph, capture pathways and queries.
//!
//! This crate operationalizes the paper's §2.2 ("Provenance") and the
//! Table 1 / Figure 3 artifacts:
//!
//! * [`model`] — [`model::ProvenanceRecord`], the on-chain unit of
//!   provenance: who ([`model::ProvenanceRecord::agent`]) did what
//!   ([`model::Action`]) to which entity, when, in which domain — plus the
//!   per-domain record field schemas of **Table 1** and their validation;
//! * [`graph`] — the derivation DAG with SciBlock-style timestamp-based
//!   invalidation propagation;
//! * [`capture`] — the four capture pathways of **Figure 3** (user-direct,
//!   data-store-emitted, third-party-mediated centralized/decentralized,
//!   multi-source);
//! * [`query`] — the query engine (§6.1 "Provenance Query"): subject
//!   lineage, time windows, agents, batch queries, plus the repeated-query
//!   cache the paper's future-work section calls for;
//! * [`accountability`] — GDPR-style data accountability (Neisse et al.
//!   [58]): usage policies, judged hash-chained usage events, consent
//!   withdrawal, and erasure obligations.

pub mod accountability;
pub mod capture;
pub mod graph;
pub mod model;
pub mod multimodal;
pub mod query;

pub use accountability::{AccountabilityLedger, Obligation, UsagePolicy, Verdict, Violation};
pub use capture::{CaptureError, CapturePathway, CapturePipeline, CaptureStats, DataOperation};
pub use graph::{GraphError, ProvGraph};
pub use model::{Action, Domain, ProvenanceRecord, RecordId};
pub use multimodal::{ModalToken, Modality};
pub use query::{ProvQuery, QueryCache, QueryEngine, QueryResult};
