//! Multi-modal evidence tokenization — the paper's §6.2 future-work item.
//!
//! *"Different data types require unique tokenization and methods to ensure
//! their uniqueness, essential for accurate provenance tracking."* Digital
//! forensics and healthcare records mix text, images, video and raw dumps;
//! hashing them all as opaque bytes loses modality-specific identity (e.g.
//! the same image re-encoded should be linkable; a transcript should be
//! tokenized case-insensitively).
//!
//! This module implements the suggested mechanism: per-modality
//! **canonicalization** before digesting, producing a [`ModalToken`] that
//! combines the modality tag with the canonical digest. Two artifacts of
//! the same modality that canonicalize identically receive the same token;
//! artifacts of different modalities can never collide (domain-separated
//! digests). Canonicalizers here are deliberately simple, deterministic
//! stand-ins for production perceptual hashing — the *interface* and the
//! provenance semantics are the contribution.

use crate::model::ProvenanceRecord;
use blockprov_crypto::sha256::{hash_parts, Hash256};
use std::fmt;

/// Supported data modalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Modality {
    /// Natural-language text.
    Text,
    /// Raster images (width × height × RGB8 samples).
    Image,
    /// Video (a sequence of frames).
    Video,
    /// Uninterpreted bytes (disk images, binaries).
    Binary,
}

impl Modality {
    /// Stable label (stored in record fields).
    pub fn label(&self) -> &'static str {
        match self {
            Modality::Text => "text",
            Modality::Image => "image",
            Modality::Video => "video",
            Modality::Binary => "binary",
        }
    }
}

/// A modality-aware content token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModalToken {
    /// The modality the content was interpreted as.
    pub modality: Modality,
    /// Digest of the canonicalized content.
    pub digest: Hash256,
}

impl fmt::Display for ModalToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.modality.label(), self.digest.short())
    }
}

/// Tokenize text: Unicode-lowercased, whitespace-collapsed.
///
/// "Chain of  Custody\n" and "chain of custody" tokenize identically —
/// transcript re-exports stay linkable.
pub fn tokenize_text(text: &str) -> ModalToken {
    let canonical: String = text
        .split_whitespace()
        .map(str::to_lowercase)
        .collect::<Vec<_>>()
        .join(" ");
    ModalToken {
        modality: Modality::Text,
        digest: hash_parts("modal-text", &[canonical.as_bytes()]),
    }
}

/// A minimal raster image: RGB8 samples, row-major.
#[derive(Debug, Clone)]
pub struct RasterImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// RGB8 samples, `3 * width * height` bytes.
    pub pixels: Vec<u8>,
}

/// Tokenize an image by a perceptual-hash stand-in: the image is reduced to
/// an 8×8 luminance grid and thresholded against its mean, so re-encoding
/// (identical pixels) and benign brightness scaling map to the same token
/// while different pictures do not.
pub fn tokenize_image(img: &RasterImage) -> ModalToken {
    const GRID: u32 = 8;
    let mut cells = [0f64; (GRID * GRID) as usize];
    let mut counts = [0u32; (GRID * GRID) as usize];
    for y in 0..img.height {
        for x in 0..img.width {
            let idx = 3 * (y * img.width + x) as usize;
            let (r, g, b) = (
                img.pixels[idx] as f64,
                img.pixels[idx + 1] as f64,
                img.pixels[idx + 2] as f64,
            );
            let luma = 0.299 * r + 0.587 * g + 0.114 * b;
            let cx = x * GRID / img.width.max(1);
            let cy = y * GRID / img.height.max(1);
            let c = (cy * GRID + cx) as usize;
            cells[c] += luma;
            counts[c] += 1;
        }
    }
    let means: Vec<f64> = cells
        .iter()
        .zip(counts.iter())
        .map(|(sum, n)| if *n == 0 { 0.0 } else { sum / *n as f64 })
        .collect();
    let global = means.iter().sum::<f64>() / means.len() as f64;
    let mut bits = [0u8; 8];
    for (i, m) in means.iter().enumerate() {
        if *m > global {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    ModalToken {
        modality: Modality::Image,
        digest: hash_parts("modal-image", &[&bits]),
    }
}

/// Tokenize video as the ordered sequence of frame tokens.
pub fn tokenize_video(frames: &[RasterImage]) -> ModalToken {
    let frame_digests: Vec<Hash256> = frames.iter().map(|f| tokenize_image(f).digest).collect();
    let parts: Vec<&[u8]> = frame_digests
        .iter()
        .map(|d| d.as_bytes() as &[u8])
        .collect();
    ModalToken {
        modality: Modality::Video,
        digest: hash_parts("modal-video", &parts),
    }
}

/// Tokenize opaque bytes (exact-match identity).
pub fn tokenize_binary(bytes: &[u8]) -> ModalToken {
    ModalToken {
        modality: Modality::Binary,
        digest: hash_parts("modal-binary", &[bytes]),
    }
}

/// Attach a modal token to a provenance record (fields `modality` and
/// `modal_token`), per the future-work proposal.
pub fn with_modal_token(record: ProvenanceRecord, token: ModalToken) -> ProvenanceRecord {
    record
        .with_field("modality", token.modality.label())
        .with_field("modal_token", &token.digest.to_hex())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Action, Domain};
    use blockprov_ledger::tx::AccountId;

    /// An 8×8-cell checkerboard that scales with the image (same *picture*
    /// at any resolution, which is what resizing preserves).
    fn checker(w: u32, h: u32, invert: bool) -> RasterImage {
        let (sq_x, sq_y) = ((w / 8).max(1), (h / 8).max(1));
        let mut pixels = Vec::with_capacity((3 * w * h) as usize);
        for y in 0..h {
            for x in 0..w {
                let on = ((x / sq_x + y / sq_y) % 2 == 0) != invert;
                let v = if on { 220 } else { 30 };
                pixels.extend_from_slice(&[v, v, v]);
            }
        }
        RasterImage {
            width: w,
            height: h,
            pixels,
        }
    }

    #[test]
    fn text_canonicalization_links_reformatted_transcripts() {
        let a = tokenize_text("Chain of   Custody\nreport");
        let b = tokenize_text("chain of custody report");
        let c = tokenize_text("chain of custody report v2");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn image_tokens_survive_brightness_scaling_but_not_content_change() {
        let base = checker(64, 64, false);
        let mut brighter = base.clone();
        for px in &mut brighter.pixels {
            *px = (*px as u32 * 110 / 100).min(255) as u8;
        }
        assert_eq!(
            tokenize_image(&base),
            tokenize_image(&brighter),
            "brightness-invariant"
        );
        let inverted = checker(64, 64, true);
        assert_ne!(tokenize_image(&base), tokenize_image(&inverted));
    }

    #[test]
    fn resized_image_keeps_its_token() {
        // Same checkerboard pattern at 64×64 vs 128×128 reduces to the same
        // 8×8 grid signature.
        let small = checker(64, 64, false);
        let large = checker(128, 128, false);
        assert_eq!(tokenize_image(&small).digest, tokenize_image(&large).digest);
    }

    #[test]
    fn video_tokens_are_order_sensitive() {
        let f1 = checker(32, 32, false);
        let f2 = checker(32, 32, true);
        let v_ab = tokenize_video(&[f1.clone(), f2.clone()]);
        let v_ba = tokenize_video(&[f2, f1]);
        assert_ne!(v_ab, v_ba);
    }

    #[test]
    fn modalities_never_collide() {
        // Identical raw bytes interpreted under different modalities give
        // different tokens (domain separation).
        let text = tokenize_text("abc");
        let binary = tokenize_binary(b"abc");
        assert_ne!(text.digest, binary.digest);
        assert_ne!(text.modality, binary.modality);
    }

    #[test]
    fn records_carry_modal_tokens() {
        let token = tokenize_text("witness statement");
        let record = with_modal_token(
            ProvenanceRecord::new(
                "stmt-1",
                AccountId::from_name("officer"),
                Action::Create,
                1,
                Domain::DigitalForensics,
            )
            .with_field("case_number", "c-1")
            .with_field("investigation_stage", "collection"),
            token,
        );
        assert_eq!(record.fields["modality"], "text");
        assert_eq!(record.fields["modal_token"], token.digest.to_hex());
        record.validate_schema().unwrap();
    }
}
