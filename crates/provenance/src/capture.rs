//! The four provenance-capture pathways of Figure 3.
//!
//! The paper distinguishes how the metadata reaches provenance storage:
//!
//! 1. **user-direct** — the user has direct access to the data store and
//!    sends the metadata itself;
//! 2. **data-store-emitted** — the store observes operations and emits the
//!    metadata (ProvChain's Swift/ownCloud hook);
//! 3. **third-party-mediated** — users lack direct access; a centralized or
//!    decentralized third party authenticates the access and forwards the
//!    metadata;
//! 4. **multi-source** — several parties each contribute partial metadata
//!    that is merged into one record.
//!
//! Each pathway has a different per-operation overhead (authentication,
//! attestation, merging) — exactly the differences experiment F3 measures.

use crate::model::{Action, Domain, ProvenanceRecord};
use blockprov_crypto::hmac::hmac_sha256_parts;
use blockprov_crypto::sha256::{sha256, Hash256};
use blockprov_ledger::tx::AccountId;
use std::fmt;

/// How provenance metadata reaches the ledger (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapturePathway {
    /// Scenario 1: the user writes the record directly.
    UserDirect,
    /// Scenario 2: the data store emits the record from its operation log.
    DataStoreEmitted,
    /// Scenario 3: a third party authenticates access and forwards the
    /// record; `decentralized` selects a quorum of attestors instead of one.
    ThirdParty {
        /// Single mediator (false) or attestor quorum (true).
        decentralized: bool,
    },
    /// Scenario 4: multiple sources contribute partial records.
    MultiSource {
        /// Number of contributing sources.
        sources: u8,
    },
}

impl CapturePathway {
    /// Display name used in tables.
    pub fn name(&self) -> String {
        match self {
            CapturePathway::UserDirect => "user-direct".into(),
            CapturePathway::DataStoreEmitted => "data-store-emitted".into(),
            CapturePathway::ThirdParty {
                decentralized: false,
            } => "third-party (centralized)".into(),
            CapturePathway::ThirdParty {
                decentralized: true,
            } => "third-party (decentralized)".into(),
            CapturePathway::MultiSource { sources } => format!("multi-source (k={sources})"),
        }
    }
}

/// A raw data operation observed by the capture layer.
#[derive(Debug, Clone)]
pub struct DataOperation {
    /// Acting user.
    pub user: AccountId,
    /// Target object (file id, record id…).
    pub object: String,
    /// Operation kind.
    pub action: Action,
    /// Operation time (ms).
    pub timestamp_ms: u64,
    /// Object content after the operation (hashed, never stored).
    pub content: Vec<u8>,
}

/// Capture failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// Third-party pathway refused the user (not authenticated).
    NotAuthenticated(AccountId),
    /// Multi-source pathway received no source fragments.
    NoSources,
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::NotAuthenticated(a) => write!(f, "user {a} not authenticated"),
            CaptureError::NoSources => write!(f, "multi-source capture with zero sources"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Per-pathway work counters (experiment F3).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CaptureStats {
    /// Operations captured.
    pub captured: u64,
    /// Hash evaluations performed.
    pub hashes: u64,
    /// Authentication checks performed.
    pub auth_checks: u64,
    /// Attestation MACs computed.
    pub attestations: u64,
    /// Fragment merges performed.
    pub merges: u64,
}

/// Converts raw [`DataOperation`]s into [`ProvenanceRecord`]s along a
/// configured pathway, tracking the extra work each pathway implies.
pub struct CapturePipeline {
    pathway: CapturePathway,
    domain: Domain,
    /// Users the third-party mediator recognizes.
    authenticated: Vec<AccountId>,
    /// Mediator/attestor keys (decentralized third party uses several).
    attestor_keys: Vec<[u8; 32]>,
    /// Pseudonymization salt (privacy-preserving capture), if enabled.
    pseudonym_salt: Option<Hash256>,
    /// Work counters.
    pub stats: CaptureStats,
}

impl CapturePipeline {
    /// Build a pipeline for a pathway and record domain.
    pub fn new(pathway: CapturePathway, domain: Domain) -> Self {
        let attestors = match pathway {
            CapturePathway::ThirdParty {
                decentralized: true,
            } => 3,
            CapturePathway::ThirdParty {
                decentralized: false,
            } => 1,
            _ => 0,
        };
        Self {
            pathway,
            domain,
            authenticated: Vec::new(),
            attestor_keys: (0..attestors)
                .map(|i| sha256(format!("attestor-{i}").as_bytes()).0)
                .collect(),
            pseudonym_salt: None,
            stats: CaptureStats::default(),
        }
    }

    /// Register a user with the third-party mediator.
    pub fn authenticate(&mut self, user: AccountId) {
        self.authenticated.push(user);
    }

    /// Enable ProvChain-style pseudonymization of user identities.
    pub fn with_pseudonyms(mut self, epoch_salt: Hash256) -> Self {
        self.pseudonym_salt = Some(epoch_salt);
        self
    }

    /// The pathway this pipeline implements.
    pub fn pathway(&self) -> CapturePathway {
        self.pathway
    }

    fn base_record(&mut self, op: &DataOperation) -> ProvenanceRecord {
        self.stats.hashes += 1; // content digest
        let agent = match self.pseudonym_salt {
            Some(salt) => {
                self.stats.hashes += 1;
                op.user.pseudonym(&salt)
            }
            None => op.user,
        };
        let mut record = ProvenanceRecord::new(
            &op.object,
            agent,
            op.action.clone(),
            op.timestamp_ms,
            self.domain,
        )
        .with_content(&op.content);
        if self.domain == Domain::Cloud {
            record = record
                .with_field("file_id", &op.object)
                .with_field("operation", op.action.label())
                .with_field("user_pseudonym", &agent.0.short())
                .with_field("content_digest", &sha256(&op.content).short());
        }
        record
    }

    /// Capture one operation, producing the record to anchor on-chain.
    pub fn capture(&mut self, op: &DataOperation) -> Result<ProvenanceRecord, CaptureError> {
        let mut record = match self.pathway {
            CapturePathway::UserDirect => self.base_record(op),
            CapturePathway::DataStoreEmitted => {
                // The store stamps its own observation marker.
                let mut r = self.base_record(op);
                r = r.with_field("captured_by", "data-store");
                r
            }
            CapturePathway::ThirdParty { decentralized } => {
                self.stats.auth_checks += 1;
                if !self.authenticated.contains(&op.user) {
                    return Err(CaptureError::NotAuthenticated(op.user));
                }
                let mut r = self.base_record(op);
                // Each attestor MACs the record id; the MACs ride along as
                // fields (they would be checked by the provenance storage).
                let rid = r.id();
                for (i, key) in self.attestor_keys.iter().enumerate() {
                    self.stats.attestations += 1;
                    let mac = hmac_sha256_parts(key, &[rid.0.as_bytes()]);
                    r = r.with_field(&format!("attestation_{i}"), &mac.short());
                }
                let label = if decentralized {
                    "third-party-quorum"
                } else {
                    "third-party"
                };
                r.with_field("captured_by", label)
            }
            CapturePathway::MultiSource { sources } => {
                if sources == 0 {
                    return Err(CaptureError::NoSources);
                }
                // Each source contributes a fragment digest; the pipeline
                // merges them into one record.
                let r = self.base_record(op);
                let mut merged = Vec::with_capacity(sources as usize * 32);
                for s in 0..sources {
                    self.stats.hashes += 1;
                    let frag =
                        sha256(format!("{}|{}|{}", s, op.object, op.timestamp_ms).as_bytes());
                    merged.extend_from_slice(frag.as_bytes());
                }
                self.stats.merges += 1;
                self.stats.hashes += 1;
                r.with_field("merged_fragments", &sha256(&merged).short())
                    .with_field("source_count", &sources.to_string())
            }
        };
        if self.domain == Domain::Generic {
            record = record.with_field("pathway", &self.pathway.name());
        }
        self.stats.captured += 1;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(user: &str, object: &str, ts: u64) -> DataOperation {
        DataOperation {
            user: AccountId::from_name(user),
            object: object.to_string(),
            action: Action::Update,
            timestamp_ms: ts,
            content: format!("content of {object} at {ts}").into_bytes(),
        }
    }

    #[test]
    fn user_direct_produces_valid_cloud_record() {
        let mut p = CapturePipeline::new(CapturePathway::UserDirect, Domain::Cloud);
        let r = p.capture(&op("alice", "report.pdf", 100)).unwrap();
        assert!(r.validate_schema().is_ok());
        assert_eq!(r.subject, "report.pdf");
        assert_eq!(p.stats.captured, 1);
        assert_eq!(p.stats.auth_checks, 0);
    }

    #[test]
    fn third_party_requires_authentication() {
        let mut p = CapturePipeline::new(
            CapturePathway::ThirdParty {
                decentralized: false,
            },
            Domain::Cloud,
        );
        let o = op("alice", "f", 1);
        assert_eq!(p.capture(&o), Err(CaptureError::NotAuthenticated(o.user)));
        p.authenticate(AccountId::from_name("alice"));
        let r = p.capture(&o).unwrap();
        assert!(r.fields.contains_key("attestation_0"));
        assert_eq!(p.stats.auth_checks, 2);
        assert_eq!(p.stats.attestations, 1);
    }

    #[test]
    fn decentralized_third_party_collects_quorum_attestations() {
        let mut p = CapturePipeline::new(
            CapturePathway::ThirdParty {
                decentralized: true,
            },
            Domain::Cloud,
        );
        p.authenticate(AccountId::from_name("alice"));
        let r = p.capture(&op("alice", "f", 1)).unwrap();
        assert!(r.fields.contains_key("attestation_0"));
        assert!(r.fields.contains_key("attestation_1"));
        assert!(r.fields.contains_key("attestation_2"));
        assert_eq!(p.stats.attestations, 3);
    }

    #[test]
    fn multi_source_merges_fragments() {
        let mut p = CapturePipeline::new(CapturePathway::MultiSource { sources: 4 }, Domain::Cloud);
        let r = p.capture(&op("alice", "f", 1)).unwrap();
        assert_eq!(r.fields["source_count"], "4");
        assert_eq!(p.stats.merges, 1);
        // 1 content hash + 4 fragments + 1 merge hash
        assert_eq!(p.stats.hashes, 6);

        let mut none =
            CapturePipeline::new(CapturePathway::MultiSource { sources: 0 }, Domain::Cloud);
        assert_eq!(none.capture(&op("a", "f", 1)), Err(CaptureError::NoSources));
    }

    #[test]
    fn pseudonymization_hides_the_user_identity() {
        let salt = sha256(b"epoch");
        let mut p =
            CapturePipeline::new(CapturePathway::UserDirect, Domain::Cloud).with_pseudonyms(salt);
        let r = p.capture(&op("alice", "f", 1)).unwrap();
        assert_ne!(r.agent, AccountId::from_name("alice"));
        // Deterministic within the epoch (linkable by the owner who knows the salt).
        let r2 = p.capture(&op("alice", "g", 2)).unwrap();
        assert_eq!(r.agent, r2.agent);
    }

    #[test]
    fn pathway_work_ordering_matches_figure3_expectations() {
        // Per-op hash work: direct < third-party(1) < third-party(3) < multi(4).
        let run = |pathway| {
            let mut p = CapturePipeline::new(pathway, Domain::Cloud);
            p.authenticate(AccountId::from_name("u"));
            for i in 0..10 {
                p.capture(&op("u", "obj", i)).unwrap();
            }
            p.stats.hashes + p.stats.attestations + p.stats.auth_checks
        };
        let direct = run(CapturePathway::UserDirect);
        let tp1 = run(CapturePathway::ThirdParty {
            decentralized: false,
        });
        let tp3 = run(CapturePathway::ThirdParty {
            decentralized: true,
        });
        let ms = run(CapturePathway::MultiSource { sources: 4 });
        assert!(
            direct < tp1 && tp1 < tp3 && tp3 < ms,
            "{direct} {tp1} {tp3} {ms}"
        );
    }

    #[test]
    fn store_emitted_marks_the_capturer() {
        let mut p = CapturePipeline::new(CapturePathway::DataStoreEmitted, Domain::Cloud);
        let r = p.capture(&op("alice", "f", 1)).unwrap();
        assert_eq!(r.fields["captured_by"], "data-store");
    }
}
