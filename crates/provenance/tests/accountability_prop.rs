//! Property tests for the GDPR accountability ledger: chain integrity over
//! arbitrary operation sequences and verdict consistency.

use blockprov_provenance::accountability::{AccountabilityLedger, Verdict};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Use { processor: u8, purpose: u8 },
    Advance(u8),
    Withdraw,
    Erase,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(processor, purpose)| Op::Use { processor, purpose }),
        (1u8..40).prop_map(Op::Advance),
        Just(Op::Withdraw),
        Just(Op::Erase),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sequence of operations runs, the event chain verifies, and
    /// every compliant verdict implies the policy actually allowed the
    /// event at its recorded day.
    #[test]
    fn chain_and_verdicts_consistent(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let mut l = AccountabilityLedger::new();
        l.declare_policy("item", "subject", "controller", &["p0", "p1"], &["proc0", "proc1"], 30)
            .unwrap();
        let mut withdrawn = false;
        let mut erased = false;
        for op in ops {
            match op {
                Op::Use { processor, purpose } => {
                    let proc_name = format!("proc{}", processor % 3);
                    let purpose_name = format!("p{}", purpose % 3);
                    let verdict = l.record_usage("item", &proc_name, &purpose_name);
                    let allowed = !erased
                        && !withdrawn
                        && l.today() <= 30
                        && (processor % 3) < 2
                        && (purpose % 3) < 2;
                    prop_assert_eq!(
                        verdict == Verdict::Compliant,
                        allowed,
                        "verdict {:?} at day {} (erased={}, withdrawn={})",
                        verdict, l.today(), erased, withdrawn
                    );
                }
                Op::Advance(d) => l.advance_days(d as u64),
                Op::Withdraw => {
                    l.withdraw_consent("item").unwrap();
                    withdrawn = true;
                }
                Op::Erase => {
                    if !erased {
                        l.record_erasure("item", "controller").unwrap();
                        erased = true;
                    }
                }
            }
        }
        prop_assert!(l.verify_chain());
        // The subject report covers exactly the events about "item".
        prop_assert_eq!(l.subject_report("subject").len(), l.events().len());
    }
}
