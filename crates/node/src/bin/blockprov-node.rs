//! Deployable node entry point: parse flags, start the server, and drain
//! gracefully on SIGTERM/SIGINT (queued ingest batches commit, then the
//! clean-shutdown snapshot is written so the next start is a fast start).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use blockprov_node::{Node, NodeConfig};

/// Set from the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// The process links libc through std already; declaring `signal` directly
// avoids a registry dependency for one symbol. Handler installation is
// best-effort — a failed install only costs graceful shutdown.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn usage() -> ! {
    eprintln!(
        "usage: blockprov-node [--addr HOST:PORT] [--data-dir DIR] [--queue N] \
         [--finality N] [--ingest-threads N] [--hot-capacity N]\n\
         \n\
         --addr           listen address (default 127.0.0.1:7341)\n\
         --data-dir       durable tier root; omit for an in-memory ledger\n\
         --queue          ingest queue bound before 429s (default 64)\n\
         --finality       finality checkpoint depth (default 16)\n\
         --ingest-threads stateless-validation workers (default 4)\n\
         --hot-capacity   hot block-cache capacity (default 1024)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7341");
    let mut config = NodeConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--addr" => addr = value(&mut args),
            "--data-dir" => config.data_dir = Some(PathBuf::from(value(&mut args))),
            "--queue" => config.queue_capacity = parse(&value(&mut args)),
            "--finality" => config.finality_depth = parse(&value(&mut args)),
            "--ingest-threads" => config.ingest_threads = parse(&value(&mut args)),
            "--hot-capacity" => config.hot_capacity = parse(&value(&mut args)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }

    let mut node = match Node::start(&addr, config) {
        Ok(node) => node,
        Err(e) => {
            eprintln!("blockprov-node: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The readiness line scripts wait for (the port resolves 0 → actual).
    println!("blockprov-node listening on {}", node.addr());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }

    eprintln!("blockprov-node: draining on signal");
    match node.shutdown() {
        Ok(()) => {
            eprintln!("blockprov-node: clean shutdown (snapshot written)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("blockprov-node: shutdown sync failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => usage(),
    }
}
