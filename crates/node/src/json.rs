//! A hand-rolled JSON *writer* (no parser): response bodies are built by
//! chaining typed field appends, so the node never formats JSON by string
//! concatenation in handler code.
//!
//! Only what the endpoints emit is supported — objects, arrays, strings,
//! integers and booleans. Ingest request bodies are the ledger's binary
//! wire codec, not JSON, so no parsing is needed anywhere.

/// Escape and quote a string per RFC 8259.
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON object under construction; chain field appends, then
/// [`Obj::build`].
#[derive(Debug)]
pub struct Obj {
    out: String,
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Self {
            out: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
        self.out.push_str(&str_lit(k));
        self.out.push(':');
    }

    /// Append a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push_str(&str_lit(v));
        self
    }

    /// Append an integer (or any `Display`-renders-as-JSON-number) field.
    pub fn num<T: std::fmt::Display>(mut self, k: &str, v: T) -> Self {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Append a field whose value is already-serialized JSON.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Close the object.
    pub fn build(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Serialize an iterator of already-serialized JSON values as an array.
pub fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_shapes() {
        let body = Obj::new()
            .str("name", "a\"b\n")
            .num("height", 42u64)
            .bool("ok", true)
            .raw("items", &arr(["1".to_string(), str_lit("x")]))
            .build();
        assert_eq!(
            body,
            "{\"name\":\"a\\\"b\\n\",\"height\":42,\"ok\":true,\"items\":[1,\"x\"]}"
        );
        assert_eq!(arr(Vec::<String>::new()), "[]");
    }
}
