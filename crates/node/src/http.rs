//! A minimal HTTP/1.1 server-side codec over [`std::net::TcpStream`].
//!
//! The workspace has no registry access, so there is no axum/hyper/tokio —
//! this module hand-rolls exactly the subset the node needs, in the same
//! spirit as [`blockprov_ledger::ValidationPool`] hand-rolls its thread
//! pool: blocking reads on a per-connection thread, persistent connections
//! by default (HTTP/1.1 keep-alive), `Content-Length`-framed bodies, and
//! nothing else (no chunked transfer, no TLS, no compression).
//!
//! [`read_request`] returns `Ok(None)` on a clean end-of-stream so
//! connection loops can distinguish "client hung up between requests" from
//! a malformed request (an `Err`), which the caller answers with `400` and
//! a close.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body (one ingest batch of blocks).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, percent-encoded as received, query string split
    /// off and discarded (no endpoint takes query parameters).
    pub path: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one request from the stream.
///
/// `Ok(None)` means the peer closed the connection cleanly before sending
/// another request; `Err` means the bytes on the wire were not a request
/// this codec accepts (answer 400 and close).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None); // clean EOF between requests
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), t),
        _ => return Err(bad("malformed request line")),
    };
    let path = target.split('?').next().unwrap_or("/").to_string();

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(bad("eof inside headers"));
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(bad("malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// One response to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`), sent verbatim.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    /// Attach an extra header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra.push((name, value));
        self
    }
}

/// Canonical reason phrase for the status codes the node emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize a response onto the stream (keep-alive framing via
/// `Content-Length`; the caller decides whether to close).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Decode `%XX` percent-escapes (and `+` as space) in a path segment.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 3 <= bytes.len() => {
                let hex = &s[i + 1..i + 3];
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("batch%2F7"), "batch/7");
        assert_eq!(percent_decode("trailing%2"), "trailing%2");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
    }
}
