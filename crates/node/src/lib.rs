//! The blockprov node: a long-running HTTP service over a
//! [`blockprov_core::ProvenanceLedger`].
//!
//! The paper surveys provenance blockchains as *services* — systems that
//! clients ingest into and query over a network. This crate is that
//! service tier for the reproduction: a single-writer node that accepts
//! block batches over HTTP, serves provenance queries and Merkle inclusion
//! proofs from lock-free reader snapshots, and exposes its own health as
//! `GET /healthz` + `GET /metrics` (via [`blockprov_health::metrics`]).
//!
//! # Endpoints
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /blocks` | Ingest a batch (wire-codec body) through the bounded queue; `429 Retry-After` under backpressure |
//! | `GET /tip` | Published tip height/hash and finality checkpoint |
//! | `GET /block/{height}` | Canonical block summary at a height |
//! | `GET /tx/{id}` | Canonical transaction by id (decoded provenance record when applicable) |
//! | `GET /provenance/{artifact}` | All canonical provenance records for an artifact, oldest first |
//! | `GET /prove/{tx}` | Self-contained Merkle inclusion proof |
//! | `GET /healthz` | Liveness + ledger summary |
//! | `GET /metrics` | Prometheus-style text exposition |
//!
//! # Design
//!
//! There is no web framework in the workspace (no registry access), so
//! [`http`] hand-rolls the HTTP/1.1 subset the node needs over
//! [`std::net`] threads, the same way the ledger hand-rolls its
//! validation pool. [`server`] holds the threading model: exactly one
//! writer thread owns the ledger, every read is answered from a cloneable
//! [`blockprov_core::LedgerReader`] pinned view, and the two meet only at
//! a bounded ingest queue. [`json`] is the tiny response serializer.
//!
//! See `docs/OPERATIONS.md` for the operator's handbook and the
//! `blockprov-node` binary for the deployable entry point (SIGTERM drains
//! the queue and writes the clean-shutdown snapshot before exit).

pub mod http;
pub mod json;
pub mod server;

pub use server::{Node, NodeConfig};
