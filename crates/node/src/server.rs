//! The node proper: one writer thread owning the [`ProvenanceLedger`], a
//! bounded ingest queue in front of it, and an accept loop that serves
//! every read from a cloneable [`LedgerReader`] — request threads never
//! touch the writer.
//!
//! # Threading model
//!
//! ```text
//!  clients ──► accept loop ──► per-connection handler threads
//!                                  │ reads: reader.view() (pinned snapshot)
//!                                  │ writes: try_send ──► bounded queue ──► writer thread
//!                                  │          (full ⇒ 429 Retry-After)        │
//!                                  └── reply channel ◄── ingest_blocks ───────┘
//! ```
//!
//! The writer thread is the only owner of the `ProvenanceLedger`; ingest
//! batches reach it through a [`std::sync::mpsc::sync_channel`] whose bound
//! is the backpressure limit. Handlers `try_send` — a full queue is an
//! immediate `429` with `Retry-After`, never a blocked accept thread. Each
//! job carries a reply channel, so `POST /blocks` returns only after the
//! batch is group-flushed across all durable tiers ([PR 8] semantics:
//! committed means on disk).
//!
//! # Shutdown
//!
//! [`Node::shutdown`] flips the drain flag (new ingest → `503`), drops the
//! queue's sender, and joins the writer: the writer first drains every
//! queued batch, then calls [`ProvenanceLedger::sync`] to write the
//! clean-shutdown checkpoint snapshot the next open fast-starts from. The
//! accept loop is unblocked with a self-connection and joined; in-flight
//! read connections finish on their own threads against reader handles
//! that outlive the writer.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use blockprov_core::{txkind, CoreError, LedgerConfig, LedgerReader, ProvenanceLedger};
use blockprov_health::metrics::NodeMetrics;
use blockprov_ledger::{
    Block, ChainView, MetaConfig, MetaStore, TieredConfig, TieredReader, TieredStore, TxId,
    TxIndex, TxIndexConfig,
};
use blockprov_provenance::ProvenanceRecord;
use blockprov_wire::{decode_seq, Codec, Reader};

use crate::http::{percent_decode, read_request, write_response, Request, Response};
use crate::json::{arr, str_lit, Obj};

/// How the node opens its ledger and sizes its queue.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Durable root directory (`blocks/`, `index/`, `meta/` subtrees).
    /// `None` runs fully in memory — useful for tests, useless for
    /// restarts.
    pub data_dir: Option<PathBuf>,
    /// Finality depth (PR 6 checkpoint cadence).
    pub finality_depth: u64,
    /// Stateless-validation worker threads inside the ledger (PR 4).
    pub ingest_threads: usize,
    /// Ingest queue bound: batches that may wait for the writer before
    /// handlers start answering `429`.
    pub queue_capacity: usize,
    /// Hot-tier block cache capacity (blocks) for the durable store.
    pub hot_capacity: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            data_dir: None,
            finality_depth: 16,
            ingest_threads: 4,
            queue_capacity: 64,
            hot_capacity: 1024,
        }
    }
}

/// One queued ingest batch plus its reply path.
struct IngestJob {
    blocks: Vec<Block>,
    received: Instant,
    reply: mpsc::Sender<Result<usize, String>>,
}

/// State shared by the accept loop, every handler thread and [`Node`].
struct Shared {
    reader: LedgerReader,
    metrics: Arc<NodeMetrics>,
    /// `Some(sender)` while accepting ingest; `None` once draining.
    ingest: Mutex<Option<SyncSender<IngestJob>>>,
    /// Set by [`Node::shutdown`]; read endpoints keep serving, ingest
    /// answers `503`, the accept loop exits on its next wakeup.
    draining: AtomicBool,
    /// Hot-tier stats source for the reader-cache gauges (durable mode
    /// only; the in-memory store has no tiered cache).
    tier_reader: Option<TieredReader>,
}

/// A running node: accept loop + writer thread + shared reader handles.
///
/// Dropping the node shuts it down (best-effort); call [`Node::shutdown`]
/// for an error-checked drain.
pub struct Node {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<io::Result<()>>>,
}

impl Node {
    /// Open the ledger per `config`, bind `addr` (use port 0 for an
    /// ephemeral port) and start serving.
    pub fn start(addr: &str, config: NodeConfig) -> io::Result<Node> {
        let ledger_config = LedgerConfig::private_default()
            .with_finality(config.finality_depth)
            .with_ingest_threads(config.ingest_threads);

        let (mut ledger, tier_reader) = match &config.data_dir {
            Some(dir) => {
                let store = TieredStore::open(
                    dir.join("blocks"),
                    TieredConfig {
                        hot_capacity: config.hot_capacity,
                        ..TieredConfig::default()
                    },
                )?;
                let tier_reader = store.tiered_reader();
                let index = TxIndex::open(dir.join("index"), TxIndexConfig::default())?;
                let meta = MetaStore::open(dir.join("meta"), MetaConfig::default())?;
                let ledger = ProvenanceLedger::open_with_tiers(
                    ledger_config,
                    Box::new(store),
                    index,
                    meta,
                )?;
                (ledger, Some(tier_reader))
            }
            None => (ProvenanceLedger::open(ledger_config), None),
        };

        let reader = ledger.reader();
        let metrics = Arc::new(NodeMetrics::new());
        let (tx, rx) = mpsc::sync_channel::<IngestJob>(config.queue_capacity);

        let writer_metrics = Arc::clone(&metrics);
        let writer = thread::Builder::new()
            .name("node-writer".into())
            .spawn(move || -> io::Result<()> {
                for job in rx {
                    writer_metrics.queue_depth.dec();
                    let txs: usize = job.blocks.iter().map(|b| b.txs.len()).sum();
                    match ledger.ingest_blocks(job.blocks) {
                        Ok(outcomes) => {
                            writer_metrics.ingest_batches.inc();
                            writer_metrics.ingest_blocks.add(outcomes.len() as u64);
                            writer_metrics.ingest_txs.add(txs as u64);
                            let _ = job.reply.send(Ok(outcomes.len()));
                        }
                        Err(e) => {
                            writer_metrics.ingest_invalid.inc();
                            let _ = job.reply.send(Err(describe_core_error(&e)));
                        }
                    }
                    writer_metrics
                        .ingest_latency
                        .record(job.received.elapsed());
                }
                // All senders gone: the queue is drained. Write the
                // clean-shutdown snapshot so the next open fast-starts.
                ledger.sync()
            })?;

        let shared = Arc::new(Shared {
            reader,
            metrics,
            ingest: Mutex::new(Some(tx)),
            draining: AtomicBool::new(false),
            tier_reader,
        });

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("node-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&accept_shared);
                    let _ = thread::Builder::new()
                        .name("node-conn".into())
                        .spawn(move || handle_connection(stream, shared));
                }
            })?;

        Ok(Node {
            addr: local,
            shared,
            accept: Some(accept),
            writer: Some(writer),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's metrics registry (shared with all server threads).
    pub fn metrics(&self) -> Arc<NodeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// A fresh reader handle over the node's ledger.
    pub fn reader(&self) -> LedgerReader {
        self.shared.reader.clone()
    }

    /// Graceful drain: refuse new ingest (`503`), drain every queued
    /// batch, write the clean-shutdown snapshot, stop accepting.
    ///
    /// Idempotent; returns the writer's final sync result.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Dropping the sender lets the writer drain and exit.
        *self.shared.ingest.lock().unwrap() = None;
        // Unblock the accept loop so it observes the drain flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        match self.writer.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("node writer thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Flatten a [`CoreError`] into the stable one-line form ingest replies
/// carry (the full enum is not part of the HTTP contract).
fn describe_core_error(e: &CoreError) -> String {
    format!("{e}")
}

/// Serve one connection until EOF, `Connection: close`, or a parse error.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                shared.metrics.http_requests.inc();
                let close = req.wants_close();
                let resp = route(&req, &shared);
                if write_response(&mut stream, &resp).is_err() || close {
                    break;
                }
            }
            Ok(None) => break, // client done
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.metrics.http_bad_request.inc();
                let resp = error_body(400, &e.to_string());
                let _ = write_response(&mut stream, &resp);
                break;
            }
            Err(_) => break, // connection-level failure
        }
    }
}

/// Dispatch one request to its endpoint.
fn route(req: &Request, shared: &Shared) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["blocks"]) => ingest(req, shared),
        ("GET", ["tip"]) => timed_query(shared, &shared.metrics.query_tip, get_tip),
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["metrics"]) => metrics_page(shared),
        ("GET", ["block", height]) => {
            let height = height.to_string();
            timed_query(shared, &shared.metrics.query_block, move |view| {
                get_block(view, &height)
            })
        }
        ("GET", ["tx", id]) => {
            let id = id.to_string();
            timed_query(shared, &shared.metrics.query_tx, move |view| {
                get_tx(view, &id)
            })
        }
        ("GET", ["provenance", artifact]) => {
            let artifact = percent_decode(artifact);
            timed_query(shared, &shared.metrics.query_provenance, move |view| {
                get_provenance(view, &artifact)
            })
        }
        ("GET", ["prove", id]) => {
            let id = id.to_string();
            timed_query(shared, &shared.metrics.query_prove, move |view| {
                get_prove(view, &id)
            })
        }
        ("GET", _) => {
            shared.metrics.http_not_found.inc();
            error_body(404, "no such endpoint")
        }
        _ => error_body(405, "method not allowed"),
    }
}

/// Pin one snapshot, run the endpoint against it, record latency, and
/// bump the endpoint counter (plus the 404 counter when the entity is
/// absent).
fn timed_query(
    shared: &Shared,
    counter: &blockprov_health::metrics::Counter,
    f: impl FnOnce(&ChainView) -> Response,
) -> Response {
    let start = Instant::now();
    let view = shared.reader.view();
    let resp = f(&view);
    shared.metrics.query_latency.record(start.elapsed());
    counter.inc();
    if resp.status == 404 {
        shared.metrics.http_not_found.inc();
    } else if resp.status == 400 {
        shared.metrics.http_bad_request.inc();
    }
    resp
}

/// `POST /blocks`: body is the wire codec's `encode_seq` of blocks.
fn ingest(req: &Request, shared: &Shared) -> Response {
    let start = Instant::now();
    let mut r = Reader::new(&req.body);
    let blocks: Vec<Block> = match decode_seq(&mut r) {
        Ok(blocks) if r.remaining() == 0 && !blocks.is_empty() => blocks,
        Ok(_) => {
            shared.metrics.http_bad_request.inc();
            return error_body(400, "empty batch or trailing bytes");
        }
        Err(e) => {
            shared.metrics.http_bad_request.inc();
            return error_body(400, &format!("undecodable block batch: {e:?}"));
        }
    };
    // Clone the sender out of the slot so the lock is never held across
    // the blocking wait for the writer's reply.
    let sender = shared.ingest.lock().unwrap().clone();
    let Some(sender) = sender else {
        shared.metrics.ingest_shutdown.inc();
        return error_body(503, "node is draining");
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = IngestJob {
        blocks,
        received: start,
        reply: reply_tx,
    };
    match sender.try_send(job) {
        Ok(()) => shared.metrics.queue_depth.inc(),
        Err(TrySendError::Full(_)) => {
            shared.metrics.ingest_backpressure.inc();
            return error_body(429, "ingest queue full").with_header("retry-after", "1".into());
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.metrics.ingest_shutdown.inc();
            return error_body(503, "node is draining");
        }
    }
    drop(sender);
    match reply_rx.recv() {
        Ok(Ok(committed)) => Response::json(
            200,
            Obj::new()
                .num("committed", committed)
                .num("height", shared.reader.height())
                .build(),
        ),
        Ok(Err(msg)) => error_body(409, &msg),
        Err(_) => error_body(503, "writer exited before reply"),
    }
}

/// `GET /tip`.
fn get_tip(view: &ChainView) -> Response {
    Response::json(
        200,
        Obj::new()
            .num("height", view.height())
            .str("hash", &view.tip().0.to_hex())
            .num("finalized_height", view.finalized_height())
            .build(),
    )
}

/// `GET /block/{height}`.
fn get_block(view: &ChainView, height: &str) -> Response {
    let Ok(height) = height.parse::<u64>() else {
        return error_body(400, "height must be a decimal integer");
    };
    let Some(block) = view.block_at(height) else {
        return error_body(404, "no canonical block at that height");
    };
    let txs = arr(block.txs.iter().map(|tx| str_lit(&tx.id().0.to_hex())));
    Response::json(
        200,
        Obj::new()
            .num("height", block.header.height)
            .str("hash", &block.hash().0.to_hex())
            .str("prev", &block.header.prev.0.to_hex())
            .num("timestamp_ms", block.header.timestamp_ms)
            .str("proposer", &block.header.proposer.0.to_hex())
            .str("tx_root", &block.header.tx_root.to_hex())
            .num("tx_count", block.txs.len())
            .raw("txs", &txs)
            .build(),
    )
}

/// `GET /tx/{id}` (id = 64-char hex).
fn get_tx(view: &ChainView, id: &str) -> Response {
    let Some(id) = parse_tx_id(id) else {
        return error_body(400, "tx id must be 64 hex chars");
    };
    let Some((block, pos)) = view.find_tx(&id) else {
        return error_body(404, "transaction not on the canonical chain");
    };
    let tx = &block.txs[pos as usize];
    let mut obj = Obj::new()
        .str("id", &id.0.to_hex())
        .str("author", &tx.author.0.to_hex())
        .num("nonce", tx.nonce)
        .num("timestamp_ms", tx.timestamp_ms)
        .num("kind", tx.kind)
        .num("payload_len", tx.payload.len())
        .str("block", &block.hash().0.to_hex())
        .num("block_height", block.header.height)
        .num("position", pos);
    if tx.kind == txkind::PROVENANCE {
        if let Some(record) = decode_record_prefix(&tx.payload) {
            obj = obj.raw("record", &record_json(&id, &record));
        }
    }
    Response::json(200, obj.build())
}

/// `GET /provenance/{artifact}`: every canonical provenance record whose
/// subject is the (percent-decoded) artifact name, oldest first.
fn get_provenance(view: &ChainView, artifact: &str) -> Response {
    let mut records = Vec::new();
    for id in view.txs_by_kind(txkind::PROVENANCE) {
        let Some(tx) = view.get_tx(&id) else { continue };
        let Some(record) = decode_record_prefix(&tx.payload) else {
            continue;
        };
        if record.subject == artifact {
            records.push(record_json(&id, &record));
        }
    }
    Response::json(
        200,
        Obj::new()
            .str("artifact", artifact)
            .num("count", records.len())
            .raw("records", &arr(records))
            .build(),
    )
}

/// `GET /prove/{tx}`: self-contained Merkle inclusion proof.
fn get_prove(view: &ChainView, id: &str) -> Response {
    let Some(id) = parse_tx_id(id) else {
        return error_body(400, "tx id must be 64 hex chars");
    };
    let Some(proof) = view.prove_tx(&id) else {
        return error_body(404, "transaction not on the canonical chain");
    };
    let siblings = arr(proof.proof.siblings.iter().map(|s| {
        Obj::new()
            .str("hash", &s.hash.to_hex())
            .bool("left", s.sibling_on_left)
            .build()
    }));
    let header = Obj::new()
        .num("height", proof.header.height)
        .str("prev", &proof.header.prev.0.to_hex())
        .str("tx_root", &proof.header.tx_root.to_hex())
        .num("timestamp_ms", proof.header.timestamp_ms)
        .str("proposer", &proof.header.proposer.0.to_hex())
        .build();
    Response::json(
        200,
        Obj::new()
            .str("tx_id", &proof.tx_id.0.to_hex())
            .str("block", &proof.block_hash.0.to_hex())
            .raw("header", &header)
            .num("leaf_index", proof.proof.leaf_index)
            .num("leaf_count", proof.proof.leaf_count)
            .raw("siblings", &siblings)
            .bool("verified", proof.verify())
            .build(),
    )
}

/// `GET /healthz`: liveness plus a one-glance ledger summary.
fn healthz(shared: &Shared) -> Response {
    sample_cache_gauges(shared);
    let view = shared.reader.view();
    let draining = shared.draining.load(Ordering::SeqCst);
    Response::json(
        200,
        Obj::new()
            .str("status", if draining { "draining" } else { "ok" })
            .num("height", view.height())
            .str("tip", &view.tip().0.to_hex())
            .num("finalized_height", view.finalized_height())
            .num("queue_depth", shared.metrics.queue_depth.get())
            .num("ingested_blocks", shared.metrics.ingest_blocks.get())
            .num("queries_served", shared.metrics.queries_total())
            .build(),
    )
}

/// `GET /metrics`: Prometheus-style text exposition.
fn metrics_page(shared: &Shared) -> Response {
    sample_cache_gauges(shared);
    Response::text(200, shared.metrics.render())
}

/// Refresh the reader-cache gauges from the shared hot tier (durable
/// deployments only).
fn sample_cache_gauges(shared: &Shared) {
    if let Some(tr) = &shared.tier_reader {
        let (hits, misses) = tr.tier_stats();
        shared.metrics.reader_cache_hits.set(hits as i64);
        shared.metrics.reader_cache_misses.set(misses as i64);
    }
}

/// Uniform error body.
fn error_body(status: u16, msg: &str) -> Response {
    Response::json(status, Obj::new().str("error", msg).build())
}

fn parse_tx_id(hex: &str) -> Option<TxId> {
    blockprov_crypto::sha256::Hash256::from_hex(hex).map(TxId)
}

/// Decode a provenance record from the front of a payload (OnChainFull
/// payloads carry raw content after the record, so a prefix decode — the
/// same convention [`ProvenanceLedger`] uses when absorbing blocks).
fn decode_record_prefix(payload: &[u8]) -> Option<ProvenanceRecord> {
    let mut r = Reader::new(payload);
    ProvenanceRecord::decode(&mut r).ok()
}

fn record_json(tx_id: &TxId, record: &ProvenanceRecord) -> String {
    Obj::new()
        .str("tx", &tx_id.0.to_hex())
        .str("subject", &record.subject)
        .str("agent", &record.agent.0.to_hex())
        .str("action", record.action.label())
        .str("domain", record.domain.name())
        .num("timestamp_ms", record.timestamp_ms)
        .build()
}
