//! End-to-end node test: a real server on an ephemeral port, a real HTTP
//! client, and a direct [`ProvenanceLedger`] oracle ingesting the very
//! same mixed-scenario stream.
//!
//! Covers the ISSUE 10 acceptance path: HTTP ingest through the bounded
//! queue, every read endpoint agreeing with the oracle (tip, blocks, txs,
//! per-artifact provenance, Merkle proofs), backpressure 429s with
//! `Retry-After`, metrics/healthz wiring, graceful shutdown (the SIGTERM
//! handler in the binary calls the same [`Node::shutdown`]), and a reopen
//! that fast-starts from the clean-shutdown snapshot instead of
//! re-validating finalized history.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use blockprov_bench::flood::{artifact_name, flood_blocks, mixed_tx};
use blockprov_core::{txkind, LedgerConfig, ProvenanceLedger};
use blockprov_crypto::sha256::Hash256;
use blockprov_ledger::{AccountId, Block, BlockHash};
use blockprov_node::{Node, NodeConfig};
use blockprov_wire::{encode_seq, Codec, Writer};

const FINALITY: u64 = 8;
const BLOCKS: u64 = 96;
const TXS_PER_BLOCK: u64 = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blockprov-node-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One-shot HTTP exchange over a fresh connection:
/// `(status, body, retry_after_seconds)`.
fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String, Option<u64>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().unwrap_or(0),
                "retry-after" => retry_after = value.trim().parse().ok(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        String::from_utf8_lossy(&body).into_owned(),
        retry_after,
    )
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, body, _) = request(addr, "GET", path, b"");
    (status, body)
}

fn post_blocks(addr: &str, blocks: &[Block]) -> (u16, String, Option<u64>) {
    let mut w = Writer::new();
    encode_seq(blocks, &mut w);
    request(addr, "POST", "/blocks", &w.into_bytes())
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag)? + tag.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

fn json_u64(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = body.find(&tag)? + tag.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// `(genesis hash, genesis timestamp)` as served by the node.
fn genesis_info(addr: &str) -> (BlockHash, u64) {
    let (_, tip_body) = get(addr, "/tip");
    let hash = BlockHash(
        Hash256::from_hex(&json_str(&tip_body, "hash").expect("tip hash")).expect("tip hex"),
    );
    let (_, genesis_body) = get(addr, "/block/0");
    let ts = json_u64(&genesis_body, "timestamp_ms").expect("genesis ts");
    (hash, ts)
}

#[test]
fn node_agrees_with_direct_ledger_oracle_and_fast_starts() {
    let dir = temp_dir("oracle");
    let config = NodeConfig {
        data_dir: Some(dir.clone()),
        finality_depth: FINALITY,
        ingest_threads: 2,
        queue_capacity: 8,
        hot_capacity: 64,
    };
    let mut node = Node::start("127.0.0.1:0", config.clone()).expect("start node");
    let addr = node.addr().to_string();

    // The node starts at the deterministic genesis; the oracle shares it.
    let (status, tip_body) = get(&addr, "/tip");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&tip_body, "height"), Some(0));
    let (genesis_hash, genesis_ts) = genesis_info(&addr);

    let mut oracle = ProvenanceLedger::open(
        LedgerConfig::private_default()
            .with_finality(FINALITY)
            .with_ingest_threads(1),
    );
    let oracle_reader = oracle.reader();
    assert_eq!(
        oracle_reader.tip().0,
        genesis_hash.0,
        "node and oracle must share the deterministic genesis"
    );

    // Ingest the same mixed-scenario stream over HTTP and directly.
    let stream = flood_blocks(genesis_hash, 0, genesis_ts, BLOCKS, TXS_PER_BLOCK, 0);
    for chunk in stream.chunks(16) {
        let (status, body, _) = post_blocks(&addr, chunk);
        assert_eq!(status, 200, "ingest failed: {body}");
        assert_eq!(json_u64(&body, "committed"), Some(chunk.len() as u64));
        oracle.ingest_blocks(chunk.to_vec()).expect("oracle ingest");
    }

    // Tip agreement.
    let (_, tip_body) = get(&addr, "/tip");
    assert_eq!(json_u64(&tip_body, "height"), Some(BLOCKS));
    assert_eq!(
        json_str(&tip_body, "hash"),
        Some(oracle_reader.tip().0.to_hex())
    );
    assert_eq!(
        json_u64(&tip_body, "finalized_height"),
        Some(oracle_reader.finalized_height())
    );

    // Block agreement at a finalized height, a suffix height and the tip.
    for h in [1, BLOCKS / 2, BLOCKS] {
        let (status, body) = get(&addr, &format!("/block/{h}"));
        assert_eq!(status, 200);
        let oracle_hash = oracle_reader.hash_at(h).expect("oracle hash").0.to_hex();
        assert_eq!(json_str(&body, "hash"), Some(oracle_hash), "height {h}");
        assert_eq!(json_u64(&body, "tx_count"), Some(TXS_PER_BLOCK));
    }
    let (status, _) = get(&addr, &format!("/block/{}", BLOCKS + 100));
    assert_eq!(status, 404);

    // Transaction agreement: one finalized, one in the mutable suffix.
    for block_idx in [0usize, (BLOCKS - 1) as usize] {
        let tx = &stream[block_idx].txs[1];
        let id_hex = tx.id().0.to_hex();
        let (status, body) = get(&addr, &format!("/tx/{id_hex}"));
        assert_eq!(status, 200);
        assert_eq!(json_u64(&body, "block_height"), Some(block_idx as u64 + 1));
        assert_eq!(json_u64(&body, "kind"), Some(txkind::PROVENANCE as u64));
        let (ob, opos) = oracle_reader.tx_by_id(&tx.id()).expect("oracle tx");
        assert_eq!(json_str(&body, "block"), Some(ob.0.to_hex()));
        assert_eq!(json_u64(&body, "position"), Some(opos as u64));
        // The decoded record rides along for provenance txs.
        assert_eq!(
            json_str(&body, "subject"),
            Some(artifact_name(block_idx as u64 * TXS_PER_BLOCK + 1))
        );
    }

    // Per-artifact provenance agreement against a stream-derived count.
    let artifact = artifact_name(1);
    let expected = (0..BLOCKS * TXS_PER_BLOCK)
        .filter(|i| artifact_name(*i) == artifact)
        .count();
    let (status, body) = get(&addr, &format!("/provenance/{artifact}"));
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "count"), Some(expected as u64));
    assert!(expected > 0, "artifact rotation must revisit names");

    // Proof agreement: the node's proof verifies and matches the oracle's.
    let proved_tx = &stream[3].txs[2];
    let id_hex = proved_tx.id().0.to_hex();
    let (status, body) = get(&addr, &format!("/prove/{id_hex}"));
    assert_eq!(status, 200);
    assert!(
        body.contains("\"verified\":true"),
        "proof must verify: {body}"
    );
    let oracle_proof = oracle_reader
        .prove_tx(&proved_tx.id())
        .expect("oracle proof");
    assert_eq!(
        json_u64(&body, "leaf_index"),
        Some(oracle_proof.proof.leaf_index)
    );
    assert_eq!(
        json_u64(&body, "leaf_count"),
        Some(oracle_proof.proof.leaf_count)
    );
    assert_eq!(
        json_str(&body, "block"),
        Some(oracle_proof.block_hash.0.to_hex())
    );

    // Unknown entities 404; malformed ids 400.
    let fake = "00".repeat(32);
    assert_eq!(get(&addr, &format!("/tx/{fake}")).0, 404);
    assert_eq!(get(&addr, &format!("/prove/{fake}")).0, 404);
    assert_eq!(get(&addr, "/tx/not-hex").0, 400);
    assert_eq!(get(&addr, "/nope").0, 404);

    // Health + metrics reflect the traffic.
    let (status, health) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(json_str(&health, "status"), Some("ok".into()));
    assert_eq!(json_u64(&health, "height"), Some(BLOCKS));
    assert_eq!(json_u64(&health, "ingested_blocks"), Some(BLOCKS));
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains(&format!("node_ingest_blocks_total {BLOCKS}")));
    assert!(metrics.contains("node_query_tip_total"));
    assert!(metrics.contains("node_ingest_latency_ns_count"));

    // SIGTERM-equivalent shutdown: drains, syncs the snapshot, stops.
    node.shutdown().expect("clean shutdown");
    drop(node);

    // Reopen from the same tiers: tip and finalized history both survive.
    let node2 = Node::start("127.0.0.1:0", config).expect("reopen node");
    let addr2 = node2.addr().to_string();
    let (status, tip_body) = get(&addr2, "/tip");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&tip_body, "height"), Some(BLOCKS));
    assert_eq!(
        json_str(&tip_body, "hash"),
        Some(oracle_reader.tip().0.to_hex())
    );
    let (status, body) = get(
        &addr2,
        &format!("/tx/{}", stream[0].txs[0].id().0.to_hex()),
    );
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "block_height"), Some(1));
    drop(node2);

    // The fast-start claim itself, via a direct reopen: a snapshot-driven
    // open re-absorbs at most the non-finalized suffix.
    let store = blockprov_ledger::TieredStore::open(
        dir.join("blocks"),
        blockprov_ledger::TieredConfig::default(),
    )
    .expect("reopen store");
    let index = blockprov_ledger::TxIndex::open(
        dir.join("index"),
        blockprov_ledger::TxIndexConfig::default(),
    )
    .expect("reopen index");
    let meta =
        blockprov_ledger::MetaStore::open(dir.join("meta"), blockprov_ledger::MetaConfig::default())
            .expect("reopen meta");
    let reopened = ProvenanceLedger::open_with_tiers(
        LedgerConfig::private_default().with_finality(FINALITY),
        Box::new(store),
        index,
        meta,
    )
    .expect("reopen ledger");
    let replayed = reopened.chain().appended_blocks();
    assert!(
        replayed <= BLOCKS - FINALITY + 1,
        "fast start must skip finalized history (re-absorbed {replayed} of {BLOCKS})"
    );
    drop(reopened);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_surfaces_as_429_with_retry_after() {
    // A rendezvous queue (capacity 0) accepts a batch only while the
    // writer is blocked waiting for one — so with the writer busy on a
    // large commit, the next POST bounces deterministically.
    let config = NodeConfig {
        data_dir: None,
        finality_depth: 4,
        ingest_threads: 1,
        queue_capacity: 0,
        hot_capacity: 16,
    };
    let mut node = Node::start("127.0.0.1:0", config).expect("start node");
    let addr = node.addr().to_string();
    let (genesis_hash, genesis_ts) = genesis_info(&addr);

    // One chained stream, split into an expensive head and a small tail.
    let stream = flood_blocks(genesis_hash, 0, genesis_ts, 520, 8, 0);
    let (head, tail) = stream.split_at(512);

    let post_addr = addr.clone();
    let head_blocks = head.to_vec();
    let head_thread =
        std::thread::spawn(move || post_blocks(&post_addr, &head_blocks));
    // Give the head time to reach the writer; it commits 512 blocks x
    // 8 txs, far longer than these margins.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let (status, body, retry_after) = post_blocks(&addr, tail);
    assert_eq!(status, 429, "expected backpressure bounce, got: {body}");
    assert!(
        retry_after.is_some(),
        "429 must carry Retry-After for well-behaved clients"
    );

    let (status, body, _) = head_thread.join().expect("head thread");
    assert_eq!(status, 200, "head batch must commit: {body}");

    // A bounced batch is not partially applied: retry it verbatim.
    loop {
        let (status, body, _) = post_blocks(&addr, tail);
        if status == 200 {
            assert_eq!(json_u64(&body, "committed"), Some(tail.len() as u64));
            break;
        }
        assert_eq!(status, 429, "retry must bounce or commit: {body}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let (_, tip_body) = get(&addr, "/tip");
    assert_eq!(json_u64(&tip_body, "height"), Some(520));

    // The bounce is visible on /metrics.
    let (_, metrics) = get(&addr, "/metrics");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("node_ingest_backpressure_total"))
        .expect("backpressure metric");
    let count: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(count >= 1, "backpressure counter must record the bounce");

    // Validation failures are 409 (orphan parent), not transport errors.
    // A rendezvous queue accepts only while the writer is parked in recv,
    // so ride out scheduling jitter by retrying 429s.
    let orphan = flood_blocks(BlockHash::ZERO, 41, genesis_ts, 1, 1, 777);
    let status = loop {
        let (status, body, _) = post_blocks(&addr, &orphan);
        if status != 429 {
            assert_eq!(status, 409, "orphan must be rejected by the chain: {body}");
            break status;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert_eq!(status, 409);

    // Undecodable bodies are 400.
    let (status, _, _) = request(&addr, "POST", "/blocks", b"garbage");
    assert_eq!(status, 400);

    // After shutdown, ingest is refused (connection or request level).
    node.shutdown().expect("shutdown");
    let refused = match TcpStream::connect(&addr) {
        Err(_) => true,
        Ok(_) => match std::panic::catch_unwind(|| post_blocks(&addr, tail)) {
            Ok((status, _, _)) => status != 200,
            Err(_) => true, // connection reset mid-request
        },
    };
    assert!(refused, "ingest must be refused after shutdown");
}

#[test]
fn in_memory_node_serves_mixed_tx_shapes() {
    // Cheap smoke for the in-memory mode (no data_dir): single txs built
    // by `mixed_tx` round-trip through ingest and decode on /tx.
    let mut node = Node::start("127.0.0.1:0", NodeConfig::default()).expect("start");
    let addr = node.addr().to_string();
    let (genesis_hash, ts) = genesis_info(&addr);

    let tx = mixed_tx(0, ts + 1);
    let block = Block::assemble(
        1,
        genesis_hash,
        ts + 1,
        AccountId::from_name("sealer"),
        0,
        vec![tx.clone()],
    );
    let (status, _, _) = post_blocks(&addr, &[block]);
    assert_eq!(status, 200);
    let (status, body) = get(&addr, &format!("/tx/{}", tx.id().0.to_hex()));
    assert_eq!(status, 200);
    assert_eq!(json_str(&body, "subject"), Some(artifact_name(0)));
    node.shutdown().expect("shutdown");
}
