//! ForensiCross [11]: cross-chain digital-forensics collaboration through a
//! BridgeChain.
//!
//! Multiple organizations each run a private forensics chain; a BridgeChain
//! mediates: it relays investigation records between organizations
//! (verified by Merkle proof through the relay layer), synchronizes
//! investigation stages, and requires **unanimous agreement** of all member
//! organizations for stage progression — the paper: "Nodes validate
//! transactions across blockchains, requiring unanimous agreement for
//! progression."

use crate::relay::RelayChain;
use blockprov_core::{CoreError, LedgerConfig, ProvenanceLedger};
use blockprov_forensics::Stage;
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord, RecordId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bridge failures.
#[derive(Debug)]
pub enum BridgeError {
    /// Organization id not registered.
    UnknownOrg(String),
    /// Case not opened on the bridge.
    UnknownCase(String),
    /// A vote from a non-member or duplicate vote.
    BadVote(String),
    /// Stage transition attempted without unanimity.
    NotUnanimous {
        /// Votes collected so far.
        votes: usize,
        /// Members required.
        needed: usize,
    },
    /// The requested stage is not the successor of the current stage.
    BadTransition {
        /// Current bridge-level stage.
        from: Stage,
        /// Requested stage.
        to: Stage,
    },
    /// Cross-chain record verification failed.
    VerificationFailed,
    /// Ledger failure.
    Core(CoreError),
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::UnknownOrg(o) => write!(f, "unknown org {o}"),
            BridgeError::UnknownCase(c) => write!(f, "unknown case {c}"),
            BridgeError::BadVote(m) => write!(f, "bad vote: {m}"),
            BridgeError::NotUnanimous { votes, needed } => {
                write!(f, "only {votes}/{needed} organizations approved")
            }
            BridgeError::BadTransition { from, to } => {
                write!(f, "cannot move from {} to {}", from.label(), to.label())
            }
            BridgeError::VerificationFailed => write!(f, "cross-chain proof failed"),
            BridgeError::Core(e) => write!(f, "ledger: {e}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<CoreError> for BridgeError {
    fn from(e: CoreError) -> Self {
        BridgeError::Core(e)
    }
}

/// One member organization: a private provenance ledger plus its relay feed.
pub struct OrgChain {
    /// Organization id.
    pub id: String,
    /// The org's private ledger.
    pub ledger: ProvenanceLedger,
    /// The org's investigator account used on the bridge.
    pub delegate: AccountId,
}

impl OrgChain {
    /// Create an organization chain.
    pub fn new(id: &str) -> Self {
        let mut ledger = ProvenanceLedger::open(
            LedgerConfig::private_default().with_domain(Domain::DigitalForensics),
        );
        let delegate = ledger
            .register_agent(&format!("{id}-delegate"))
            .expect("register delegate");
        Self {
            id: id.to_string(),
            ledger,
            delegate,
        }
    }

    /// Record an investigation step on the org's own chain and seal it.
    pub fn record_step(
        &mut self,
        case: &str,
        stage: Stage,
        description: &str,
    ) -> Result<RecordId, BridgeError> {
        let ts = self.ledger.advance_clock();
        let record = ProvenanceRecord::new(
            &format!("case:{case}"),
            self.delegate,
            Action::Custom(description.to_string()),
            ts,
            Domain::DigitalForensics,
        )
        .with_field("case_number", case)
        .with_field("investigation_stage", stage.label())
        .with_field("access_patterns", description);
        let rid = self.ledger.submit_record(record, &[])?;
        self.ledger.seal_block()?;
        Ok(rid)
    }
}

struct BridgeCase {
    stage: Stage,
    /// Pending stage-change votes: target stage → orgs approving.
    votes: BTreeMap<&'static str, BTreeSet<String>>,
    /// Synchronized records: (org, record) pairs accepted by the bridge.
    synced: Vec<(String, RecordId)>,
}

/// The BridgeChain: membership, case registry, record sync, stage votes.
pub struct Bridge {
    orgs: Vec<String>,
    relay: RelayChain,
    cases: BTreeMap<String, BridgeCase>,
    /// Bridge's own audit ledger (communication records — ForensiBlock
    /// tracks these too).
    pub audit: ProvenanceLedger,
    bridge_agent: AccountId,
}

impl Bridge {
    /// Create a bridge over the given organizations.
    pub fn new(org_ids: &[&str]) -> Self {
        let mut audit =
            ProvenanceLedger::open(LedgerConfig::private_default().with_domain(Domain::Generic));
        let bridge_agent = audit
            .register_agent("bridge")
            .expect("register bridge agent");
        let mut relay = RelayChain::new();
        for id in org_ids {
            relay.register_chain(id);
        }
        Self {
            orgs: org_ids.iter().map(|s| s.to_string()).collect(),
            relay,
            cases: BTreeMap::new(),
            audit,
            bridge_agent,
        }
    }

    /// Member organizations.
    pub fn members(&self) -> &[String] {
        &self.orgs
    }

    /// Feed an org's latest headers to the bridge relay.
    pub fn sync_headers(&mut self, org: &OrgChain) -> Result<(), BridgeError> {
        if !self.orgs.contains(&org.id) {
            return Err(BridgeError::UnknownOrg(org.id.clone()));
        }
        let from = self.relay.tip_height(&org.id).map_or(0, |h| h + 1);
        for height in from..=org.ledger.chain().height() {
            let header = org
                .ledger
                .chain()
                .block_at(height)
                .expect("height on canonical chain")
                .header
                .clone();
            self.relay
                .submit_header(&org.id, header)
                .map_err(|_| BridgeError::VerificationFailed)?;
        }
        Ok(())
    }

    /// Open a case across all organizations (starts at Identification).
    pub fn open_case(&mut self, case: &str) -> Result<(), BridgeError> {
        self.cases.insert(
            case.to_string(),
            BridgeCase {
                stage: Stage::Identification,
                votes: BTreeMap::new(),
                synced: Vec::new(),
            },
        );
        self.audit_event(case, "case-opened")?;
        Ok(())
    }

    /// Current bridge-level stage of a case.
    pub fn stage_of(&self, case: &str) -> Option<Stage> {
        self.cases.get(case).map(|c| c.stage)
    }

    /// Share a record from an org's chain with the bridge: the org provides
    /// the record id; the bridge demands an inclusion proof and checks it
    /// against the relayed headers before accepting.
    pub fn sync_record(
        &mut self,
        org: &OrgChain,
        case: &str,
        record: &RecordId,
    ) -> Result<(), BridgeError> {
        if !self.orgs.contains(&org.id) {
            return Err(BridgeError::UnknownOrg(org.id.clone()));
        }
        if !self.cases.contains_key(case) {
            return Err(BridgeError::UnknownCase(case.to_string()));
        }
        let proof = org
            .ledger
            .prove_record(record)
            .map_err(|_| BridgeError::VerificationFailed)?;
        let ok = self
            .relay
            .verify_inclusion(&org.id, &proof.inclusion)
            .map_err(|_| BridgeError::VerificationFailed)?;
        if !ok {
            return Err(BridgeError::VerificationFailed);
        }
        self.cases
            .get_mut(case)
            .expect("checked")
            .synced
            .push((org.id.clone(), *record));
        self.audit_event(case, &format!("record-synced:{}", org.id))?;
        Ok(())
    }

    /// Records the bridge has accepted for a case.
    pub fn synced_records(&self, case: &str) -> &[(String, RecordId)] {
        self.cases.get(case).map_or(&[], |c| c.synced.as_slice())
    }

    /// An organization votes to advance a case to `to`.
    ///
    /// Returns `Ok(true)` when unanimity is reached and the stage advances.
    pub fn vote_stage(&mut self, org_id: &str, case: &str, to: Stage) -> Result<bool, BridgeError> {
        if !self.orgs.iter().any(|o| o == org_id) {
            return Err(BridgeError::UnknownOrg(org_id.to_string()));
        }
        let state = self
            .cases
            .get_mut(case)
            .ok_or_else(|| BridgeError::UnknownCase(case.to_string()))?;
        if state.stage.next() != Some(to) {
            return Err(BridgeError::BadTransition {
                from: state.stage,
                to,
            });
        }
        let voters = state.votes.entry(to.label()).or_default();
        if !voters.insert(org_id.to_string()) {
            return Err(BridgeError::BadVote(format!("{org_id} already voted")));
        }
        if voters.len() == self.orgs.len() {
            state.stage = to;
            state.votes.clear();
            self.audit_event(case, &format!("stage-advanced:{}", to.label()))?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn audit_event(&mut self, case: &str, what: &str) -> Result<(), BridgeError> {
        let ts = self.audit.advance_clock();
        let record = ProvenanceRecord::new(
            &format!("bridge-case:{case}"),
            self.bridge_agent,
            Action::Custom(what.to_string()),
            ts,
            Domain::Generic,
        );
        self.audit.submit_record(record, &[])?;
        Ok(())
    }

    /// Audit-trail length (communication records).
    pub fn audit_len(&self) -> usize {
        self.audit.graph().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Bridge, OrgChain, OrgChain) {
        let bridge = Bridge::new(&["org-A", "org-B"]);
        (bridge, OrgChain::new("org-A"), OrgChain::new("org-B"))
    }

    #[test]
    fn record_sync_requires_valid_proof() {
        let (mut bridge, mut org_a, _org_b) = setup();
        bridge.open_case("x-case").unwrap();
        let rid = org_a
            .record_step("x-case", Stage::Identification, "seize-router")
            .unwrap();
        // Without header sync, verification fails.
        assert!(matches!(
            bridge.sync_record(&org_a, "x-case", &rid),
            Err(BridgeError::VerificationFailed)
        ));
        bridge.sync_headers(&org_a).unwrap();
        bridge.sync_record(&org_a, "x-case", &rid).unwrap();
        assert_eq!(bridge.synced_records("x-case").len(), 1);
    }

    #[test]
    fn unanimous_vote_advances_stage() {
        let (mut bridge, _a, _b) = setup();
        bridge.open_case("c").unwrap();
        assert_eq!(bridge.stage_of("c"), Some(Stage::Identification));
        assert!(!bridge
            .vote_stage("org-A", "c", Stage::Preservation)
            .unwrap());
        assert_eq!(
            bridge.stage_of("c"),
            Some(Stage::Identification),
            "one vote is not enough"
        );
        assert!(bridge
            .vote_stage("org-B", "c", Stage::Preservation)
            .unwrap());
        assert_eq!(bridge.stage_of("c"), Some(Stage::Preservation));
    }

    #[test]
    fn double_votes_and_outsiders_rejected() {
        let (mut bridge, _a, _b) = setup();
        bridge.open_case("c").unwrap();
        bridge
            .vote_stage("org-A", "c", Stage::Preservation)
            .unwrap();
        assert!(matches!(
            bridge.vote_stage("org-A", "c", Stage::Preservation),
            Err(BridgeError::BadVote(_))
        ));
        assert!(matches!(
            bridge.vote_stage("org-C", "c", Stage::Preservation),
            Err(BridgeError::UnknownOrg(_))
        ));
    }

    #[test]
    fn stage_skipping_rejected_at_bridge_level() {
        let (mut bridge, _a, _b) = setup();
        bridge.open_case("c").unwrap();
        assert!(matches!(
            bridge.vote_stage("org-A", "c", Stage::Analysis),
            Err(BridgeError::BadTransition { .. })
        ));
    }

    #[test]
    fn full_cross_org_investigation_flow() {
        let (mut bridge, mut org_a, mut org_b) = setup();
        bridge.open_case("joint-1").unwrap();

        let ra = org_a
            .record_step("joint-1", Stage::Identification, "identify-suspect-laptop")
            .unwrap();
        let rb = org_b
            .record_step("joint-1", Stage::Identification, "identify-cloud-account")
            .unwrap();
        bridge.sync_headers(&org_a).unwrap();
        bridge.sync_headers(&org_b).unwrap();
        bridge.sync_record(&org_a, "joint-1", &ra).unwrap();
        bridge.sync_record(&org_b, "joint-1", &rb).unwrap();

        for stage in [
            Stage::Preservation,
            Stage::Collection,
            Stage::Analysis,
            Stage::Reporting,
        ] {
            bridge.vote_stage("org-A", "joint-1", stage).unwrap();
            bridge.vote_stage("org-B", "joint-1", stage).unwrap();
        }
        assert_eq!(bridge.stage_of("joint-1"), Some(Stage::Reporting));
        assert!(bridge.audit_len() >= 7, "open + 2 syncs + 4 stage advances");
    }

    #[test]
    fn incremental_header_sync() {
        let (mut bridge, mut org_a, _b) = setup();
        bridge.open_case("c").unwrap();
        org_a.record_step("c", Stage::Identification, "s1").unwrap();
        bridge.sync_headers(&org_a).unwrap();
        let first = bridge.relay.headers_relayed;
        // More blocks later sync incrementally without re-submitting.
        org_a.record_step("c", Stage::Identification, "s2").unwrap();
        bridge.sync_headers(&org_a).unwrap();
        assert_eq!(bridge.relay.headers_relayed, first + 1);
    }
}
