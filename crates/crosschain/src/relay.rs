//! Relay chain: cross-chain verification without a trusted third party.
//!
//! §2.3: "relay chains focus solely on data transfer between different
//! chains". A relay chain stores the *headers* of member chains; any party
//! holding a transaction's Merkle inclusion proof can then verify it against
//! the relayed header — a light client of the foreign chain. This is the
//! trustless mechanism Vassago and ForensiCross sit on.

use blockprov_ledger::block::{BlockHash, BlockHeader};
use blockprov_ledger::chain::TxInclusionProof;
use std::collections::BTreeMap;
use std::fmt;

/// Relay failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// Chain id not registered with the relay.
    UnknownChain(String),
    /// Header does not extend the last relayed header.
    BrokenLink {
        /// Expected parent hash.
        expected_parent: BlockHash,
        /// Parent hash in the submitted header.
        got_parent: BlockHash,
    },
    /// Header height is not the successor height.
    BadHeight {
        /// Expected height.
        expected: u64,
        /// Submitted height.
        got: u64,
    },
    /// The header at this height was never relayed.
    UnknownHeader(u64),
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::UnknownChain(c) => write!(f, "unknown chain {c}"),
            RelayError::BrokenLink {
                expected_parent,
                got_parent,
            } => {
                write!(
                    f,
                    "header does not link: expected parent {expected_parent}, got {got_parent}"
                )
            }
            RelayError::BadHeight { expected, got } => {
                write!(f, "bad relayed height: expected {expected}, got {got}")
            }
            RelayError::UnknownHeader(h) => write!(f, "no relayed header at height {h}"),
        }
    }
}

impl std::error::Error for RelayError {}

#[derive(Debug, Default)]
struct ChainTrack {
    /// Relayed headers by height.
    headers: BTreeMap<u64, BlockHeader>,
    tip_hash: Option<BlockHash>,
    tip_height: Option<u64>,
}

/// The relay chain: an append-only registry of member-chain headers.
#[derive(Debug, Default)]
pub struct RelayChain {
    chains: BTreeMap<String, ChainTrack>,
    /// Headers accepted (metric for relay overhead experiments).
    pub headers_relayed: u64,
}

impl RelayChain {
    /// Empty relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a member chain.
    pub fn register_chain(&mut self, id: &str) {
        self.chains.entry(id.to_string()).or_default();
    }

    /// Submit the next header of a member chain.
    ///
    /// The first submitted header is accepted as the checkpoint; each later
    /// header must link to the previous one by hash and height.
    pub fn submit_header(&mut self, chain_id: &str, header: BlockHeader) -> Result<(), RelayError> {
        let track = self
            .chains
            .get_mut(chain_id)
            .ok_or_else(|| RelayError::UnknownChain(chain_id.to_string()))?;
        if let (Some(tip_hash), Some(tip_height)) = (track.tip_hash, track.tip_height) {
            if header.prev != tip_hash {
                return Err(RelayError::BrokenLink {
                    expected_parent: tip_hash,
                    got_parent: header.prev,
                });
            }
            if header.height != tip_height + 1 {
                return Err(RelayError::BadHeight {
                    expected: tip_height + 1,
                    got: header.height,
                });
            }
        }
        track.tip_hash = Some(header.hash());
        track.tip_height = Some(header.height);
        track.headers.insert(header.height, header);
        self.headers_relayed += 1;
        Ok(())
    }

    /// Latest relayed height of a chain.
    pub fn tip_height(&self, chain_id: &str) -> Option<u64> {
        self.chains.get(chain_id).and_then(|t| t.tip_height)
    }

    /// The relayed header at a height.
    pub fn header_at(&self, chain_id: &str, height: u64) -> Option<&BlockHeader> {
        self.chains
            .get(chain_id)
            .and_then(|t| t.headers.get(&height))
    }

    /// Light-client verification: does this inclusion proof check out
    /// against the header *the relay itself* holds for that chain/height?
    pub fn verify_inclusion(
        &self,
        chain_id: &str,
        proof: &TxInclusionProof,
    ) -> Result<bool, RelayError> {
        let track = self
            .chains
            .get(chain_id)
            .ok_or_else(|| RelayError::UnknownChain(chain_id.to_string()))?;
        let relayed = track
            .headers
            .get(&proof.header.height)
            .ok_or(RelayError::UnknownHeader(proof.header.height))?;
        // The proof's header must be byte-identical to the relayed one; then
        // the Merkle path must bind the tx to that header.
        Ok(relayed.hash() == proof.block_hash && proof.verify())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockprov_ledger::block::Block;
    use blockprov_ledger::chain::{Chain, ChainConfig};
    use blockprov_ledger::tx::{AccountId, Transaction};

    /// Build the block stream up front and ingest it through the batched
    /// pipeline — the shape a relay consuming a foreign chain sees.
    fn chain_with_blocks(n: u64) -> Chain {
        let mut c = Chain::new(ChainConfig::default());
        let mut parent = c.tip();
        let blocks: Vec<Block> = (0..n)
            .map(|i| {
                let tx = Transaction::new(AccountId::from_name("u"), i, i, 1, vec![i as u8]);
                let b = Block::assemble(
                    i + 1,
                    parent,
                    1000 * (i + 1),
                    AccountId::from_name("s"),
                    0,
                    vec![tx],
                );
                parent = b.hash();
                b
            })
            .collect();
        c.append_batch(blocks).unwrap();
        c
    }

    fn relay_all(relay: &mut RelayChain, id: &str, chain: &Chain) {
        relay.register_chain(id);
        for hash in chain.canonical_hashes() {
            let header = chain.block(&hash).unwrap().header.clone();
            relay.submit_header(id, header).unwrap();
        }
    }

    #[test]
    fn relayed_headers_track_the_chain() {
        let chain = chain_with_blocks(5);
        let mut relay = RelayChain::new();
        relay_all(&mut relay, "org-A", &chain);
        assert_eq!(relay.tip_height("org-A"), Some(5));
        assert_eq!(relay.headers_relayed, 6); // genesis + 5
    }

    #[test]
    fn light_client_verifies_foreign_tx() {
        let chain = chain_with_blocks(4);
        let mut relay = RelayChain::new();
        relay_all(&mut relay, "org-A", &chain);
        // Pick a transaction and prove it.
        let block = chain.block_at(2).unwrap();
        let tx_id = block.txs[0].id();
        let proof = chain.prove_tx(&tx_id).unwrap();
        assert_eq!(relay.verify_inclusion("org-A", &proof), Ok(true));
    }

    #[test]
    fn forged_proof_rejected_by_relay() {
        let chain = chain_with_blocks(4);
        let other = {
            // A different chain with different txs at the same heights,
            // ingested as one batch.
            let mut c = Chain::new(ChainConfig::default());
            let mut parent = c.tip();
            let blocks: Vec<Block> = (0..4)
                .map(|i| {
                    let tx = Transaction::new(AccountId::from_name("evil"), i, i, 1, vec![0xFF]);
                    let b = Block::assemble(
                        i + 1,
                        parent,
                        2000 * (i + 1),
                        AccountId::from_name("s"),
                        0,
                        vec![tx],
                    );
                    parent = b.hash();
                    b
                })
                .collect();
            c.append_batch(blocks).unwrap();
            c
        };
        let mut relay = RelayChain::new();
        relay_all(&mut relay, "org-A", &chain);
        // Proof from the *other* chain cannot verify against org-A headers.
        let foreign_block = other.block_at(2).unwrap();
        let proof = other.prove_tx(&foreign_block.txs[0].id()).unwrap();
        assert_eq!(relay.verify_inclusion("org-A", &proof), Ok(false));
    }

    #[test]
    fn non_linking_header_rejected() {
        let chain = chain_with_blocks(3);
        let mut relay = RelayChain::new();
        relay.register_chain("org-A");
        relay
            .submit_header("org-A", chain.block_at(0).unwrap().header.clone())
            .unwrap();
        // Skipping height 1 breaks the link.
        let err = relay.submit_header("org-A", chain.block_at(2).unwrap().header.clone());
        assert!(matches!(err, Err(RelayError::BrokenLink { .. })));
    }

    #[test]
    fn unknown_chain_and_height_errors() {
        let chain = chain_with_blocks(2);
        let relay = RelayChain::new();
        let proof = chain
            .prove_tx(&chain.block_at(1).unwrap().txs[0].id())
            .unwrap();
        assert!(matches!(
            relay.verify_inclusion("ghost", &proof),
            Err(RelayError::UnknownChain(_))
        ));
        let mut relay = RelayChain::new();
        relay.register_chain("org-A");
        assert!(matches!(
            relay.verify_inclusion("org-A", &proof),
            Err(RelayError::UnknownHeader(_))
        ));
    }
}
