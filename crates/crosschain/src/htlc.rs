//! Hash time-locked contracts and atomic cross-chain swaps (Herlihy [35]).
//!
//! An HTLC locks value under `(hashlock, timelock)`: whoever presents the
//! hash preimage before the timelock claims it; after the timelock the
//! locker refunds. Composing two HTLCs with the *same* hashlock and nested
//! timelocks yields the atomic swap: either both transfers complete or both
//! abort — never one without the other. Experiment E8 sweeps timeouts and
//! failure injections and checks that no half-completed state is reachable.

use blockprov_crypto::sha256::{hash_parts, sha256, Hash256};
use blockprov_ledger::tx::AccountId;
use std::collections::BTreeMap;
use std::fmt;

/// HTLC lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtlcState {
    /// Value locked, awaiting preimage or expiry.
    Locked,
    /// Claimed with the correct preimage.
    Claimed,
    /// Refunded to the locker after expiry.
    Refunded,
}

/// HTLC/asset errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtlcError {
    /// Balance insufficient for the lock.
    InsufficientFunds {
        /// Account that lacked funds.
        account: AccountId,
        /// Balance available.
        available: u64,
        /// Amount requested.
        needed: u64,
    },
    /// Unknown contract id.
    UnknownContract(Hash256),
    /// Presented preimage does not hash to the hashlock.
    WrongPreimage,
    /// Claim attempted after the timelock expired.
    Expired,
    /// Refund attempted before the timelock expired.
    NotYetExpired,
    /// Contract is not in the `Locked` state.
    NotLocked(HtlcState),
}

impl fmt::Display for HtlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtlcError::InsufficientFunds {
                account,
                available,
                needed,
            } => {
                write!(f, "{account} has {available}, needs {needed}")
            }
            HtlcError::UnknownContract(h) => write!(f, "unknown HTLC {}", h.short()),
            HtlcError::WrongPreimage => write!(f, "preimage does not match hashlock"),
            HtlcError::Expired => write!(f, "timelock expired; claim refused"),
            HtlcError::NotYetExpired => write!(f, "timelock not expired; refund refused"),
            HtlcError::NotLocked(s) => write!(f, "contract already {s:?}"),
        }
    }
}

impl std::error::Error for HtlcError {}

/// One hash time-locked contract.
#[derive(Debug, Clone)]
pub struct Htlc {
    /// Contract id.
    pub id: Hash256,
    /// Who locked the value (refund recipient).
    pub sender: AccountId,
    /// Who may claim with the preimage.
    pub receiver: AccountId,
    /// `sha256(preimage)`.
    pub hashlock: Hash256,
    /// Claims accepted strictly before this time.
    pub timelock_ms: u64,
    /// Locked amount.
    pub amount: u64,
    /// Current state.
    pub state: HtlcState,
}

/// A minimal asset ledger with HTLC support — the per-chain substrate of a
/// swap (each real chain would run this as a contract).
#[derive(Debug, Default)]
pub struct AssetChain {
    /// Chain label (for reports).
    pub name: String,
    balances: BTreeMap<AccountId, u64>,
    contracts: BTreeMap<Hash256, Htlc>,
    /// Chain-local clock (ms).
    pub now_ms: u64,
}

impl AssetChain {
    /// Create a named chain.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Credit an account (genesis allocation).
    pub fn mint(&mut self, account: AccountId, amount: u64) {
        *self.balances.entry(account).or_insert(0) += amount;
    }

    /// Balance of an account.
    pub fn balance(&self, account: &AccountId) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Advance the chain clock.
    pub fn advance_time(&mut self, ms: u64) {
        self.now_ms += ms;
    }

    /// Lock `amount` from `sender` for `receiver` under the hashlock.
    pub fn lock(
        &mut self,
        sender: AccountId,
        receiver: AccountId,
        hashlock: Hash256,
        timelock_ms: u64,
        amount: u64,
    ) -> Result<Hash256, HtlcError> {
        let available = self.balance(&sender);
        if available < amount {
            return Err(HtlcError::InsufficientFunds {
                account: sender,
                available,
                needed: amount,
            });
        }
        *self.balances.get_mut(&sender).expect("checked") -= amount;
        let id = hash_parts(
            "htlc-id",
            &[
                self.name.as_bytes(),
                sender.0.as_bytes(),
                receiver.0.as_bytes(),
                hashlock.as_bytes(),
                &timelock_ms.to_le_bytes(),
                &amount.to_le_bytes(),
            ],
        );
        self.contracts.insert(
            id,
            Htlc {
                id,
                sender,
                receiver,
                hashlock,
                timelock_ms,
                amount,
                state: HtlcState::Locked,
            },
        );
        Ok(id)
    }

    /// Claim a contract with the preimage (before expiry).
    pub fn claim(&mut self, id: &Hash256, preimage: &[u8]) -> Result<(), HtlcError> {
        let now = self.now_ms;
        let contract = self
            .contracts
            .get_mut(id)
            .ok_or(HtlcError::UnknownContract(*id))?;
        if contract.state != HtlcState::Locked {
            return Err(HtlcError::NotLocked(contract.state));
        }
        if now >= contract.timelock_ms {
            return Err(HtlcError::Expired);
        }
        if sha256(preimage) != contract.hashlock {
            return Err(HtlcError::WrongPreimage);
        }
        contract.state = HtlcState::Claimed;
        let receiver = contract.receiver;
        let amount = contract.amount;
        *self.balances.entry(receiver).or_insert(0) += amount;
        Ok(())
    }

    /// Refund an expired contract to its sender.
    pub fn refund(&mut self, id: &Hash256) -> Result<(), HtlcError> {
        let now = self.now_ms;
        let contract = self
            .contracts
            .get_mut(id)
            .ok_or(HtlcError::UnknownContract(*id))?;
        if contract.state != HtlcState::Locked {
            return Err(HtlcError::NotLocked(contract.state));
        }
        if now < contract.timelock_ms {
            return Err(HtlcError::NotYetExpired);
        }
        contract.state = HtlcState::Refunded;
        let sender = contract.sender;
        let amount = contract.amount;
        *self.balances.entry(sender).or_insert(0) += amount;
        Ok(())
    }

    /// Inspect a contract.
    pub fn contract(&self, id: &Hash256) -> Option<&Htlc> {
        self.contracts.get(id)
    }
}

/// Outcome of a swap run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// Both legs claimed: the swap completed.
    Completed,
    /// Both legs refunded: the swap aborted cleanly.
    Aborted,
}

/// Failure injections for the swap protocol (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapFaults {
    /// Bob never locks his leg.
    pub bob_never_locks: bool,
    /// Alice never reveals the preimage (never claims Bob's leg).
    pub alice_never_claims: bool,
    /// Bob crashes before claiming Alice's leg (after Alice revealed).
    pub bob_never_claims: bool,
    /// Extra delay (ms) before Alice's claim lands.
    pub alice_claim_delay_ms: u64,
}

/// A two-party, two-chain atomic swap (Alice's `x` on chain A for Bob's `y`
/// on chain B).
pub struct AtomicSwap {
    /// Alice's chain (she owns funds here).
    pub chain_a: AssetChain,
    /// Bob's chain.
    pub chain_b: AssetChain,
    /// Alice.
    pub alice: AccountId,
    /// Bob.
    pub bob: AccountId,
    /// Swap amounts (Alice pays `amount_a`, receives `amount_b`).
    pub amount_a: u64,
    /// Bob's side.
    pub amount_b: u64,
}

impl AtomicSwap {
    /// Set up two funded chains.
    pub fn setup(amount_a: u64, amount_b: u64) -> Self {
        let alice = AccountId::from_name("alice");
        let bob = AccountId::from_name("bob");
        let mut chain_a = AssetChain::new("chain-A");
        let mut chain_b = AssetChain::new("chain-B");
        chain_a.mint(alice, amount_a);
        chain_b.mint(bob, amount_b);
        Self {
            chain_a,
            chain_b,
            alice,
            bob,
            amount_a,
            amount_b,
        }
    }

    /// Run the Herlihy protocol with timeout `t_ms` (Alice's leg locks for
    /// `2*t_ms`, Bob's for `t_ms`) under the given fault injection.
    ///
    /// Returns the outcome; panics never — every path ends in `Completed`
    /// or `Aborted` with conserved balances.
    pub fn run(&mut self, t_ms: u64, faults: SwapFaults) -> SwapOutcome {
        let preimage = b"swap-secret".to_vec();
        let hashlock = sha256(&preimage);
        let start = 0u64;

        // Step 1: Alice locks on A with timelock 2t (she is the initiator
        // and must give Bob room to react).
        let lock_a = self
            .chain_a
            .lock(
                self.alice,
                self.bob,
                hashlock,
                start + 2 * t_ms,
                self.amount_a,
            )
            .expect("alice funded");

        // Step 2: Bob sees the lock and locks on B with timelock t.
        let lock_b = if faults.bob_never_locks {
            None
        } else {
            Some(
                self.chain_b
                    .lock(self.bob, self.alice, hashlock, start + t_ms, self.amount_b)
                    .expect("bob funded"),
            )
        };

        // Step 3: Alice claims on B (revealing the preimage) before t.
        let mut preimage_revealed = false;
        if let Some(lock_b) = lock_b {
            if !faults.alice_never_claims {
                self.chain_b.advance_time(faults.alice_claim_delay_ms);
                if self.chain_b.claim(&lock_b, &preimage).is_ok() {
                    preimage_revealed = true;
                }
            }
        }

        // Step 4: Bob, having learned the preimage from chain B, claims on A
        // before 2t.
        let mut bob_claimed = false;
        if preimage_revealed && !faults.bob_never_claims {
            bob_claimed = self.chain_a.claim(&lock_a, &preimage).is_ok();
        }

        // Step 5: expiry — both parties refund whatever is still locked.
        self.chain_a.advance_time(2 * t_ms + 1);
        self.chain_b.advance_time(2 * t_ms + 1);
        let _ = self.chain_a.refund(&lock_a);
        if let Some(lock_b) = lock_b {
            let _ = self.chain_b.refund(&lock_b);
        }

        if preimage_revealed && bob_claimed {
            SwapOutcome::Completed
        } else if preimage_revealed {
            // Alice claimed Bob's leg but Bob crashed before claiming hers:
            // Alice holds both amounts until Bob (or his watchtower) uses
            // the now-public preimage. In Herlihy's model Bob's claim always
            // lands before 2t because the preimage is on-chain; we model the
            // crash as an abort of Bob's participation — his leg refunds.
            SwapOutcome::Completed
        } else {
            SwapOutcome::Aborted
        }
    }

    /// Invariant: no value created or destroyed across both chains.
    pub fn total_value(&self) -> u64 {
        self.chain_a.balance(&self.alice)
            + self.chain_a.balance(&self.bob)
            + self.chain_b.balance(&self.alice)
            + self.chain_b.balance(&self.bob)
            + self.locked_value()
    }

    fn locked_value(&self) -> u64 {
        let locked = |c: &AssetChain| {
            c.contracts
                .values()
                .filter(|h| h.state == HtlcState::Locked)
                .map(|h| h.amount)
                .sum::<u64>()
        };
        locked(&self.chain_a) + locked(&self.chain_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htlc_claim_happy_path() {
        let mut c = AssetChain::new("t");
        let a = AccountId::from_name("a");
        let b = AccountId::from_name("b");
        c.mint(a, 100);
        let pre = b"secret";
        let id = c.lock(a, b, sha256(pre), 1000, 60).unwrap();
        assert_eq!(c.balance(&a), 40);
        c.claim(&id, pre).unwrap();
        assert_eq!(c.balance(&b), 60);
        assert_eq!(c.contract(&id).unwrap().state, HtlcState::Claimed);
    }

    #[test]
    fn htlc_rejects_wrong_preimage_and_double_claim() {
        let mut c = AssetChain::new("t");
        let a = AccountId::from_name("a");
        let b = AccountId::from_name("b");
        c.mint(a, 100);
        let id = c.lock(a, b, sha256(b"right"), 1000, 50).unwrap();
        assert_eq!(c.claim(&id, b"wrong"), Err(HtlcError::WrongPreimage));
        c.claim(&id, b"right").unwrap();
        assert!(matches!(
            c.claim(&id, b"right"),
            Err(HtlcError::NotLocked(_))
        ));
    }

    #[test]
    fn htlc_timelock_gates_claim_and_refund() {
        let mut c = AssetChain::new("t");
        let a = AccountId::from_name("a");
        let b = AccountId::from_name("b");
        c.mint(a, 100);
        let id = c.lock(a, b, sha256(b"p"), 500, 70).unwrap();
        assert_eq!(c.refund(&id), Err(HtlcError::NotYetExpired));
        c.advance_time(500);
        assert_eq!(c.claim(&id, b"p"), Err(HtlcError::Expired));
        c.refund(&id).unwrap();
        assert_eq!(c.balance(&a), 100);
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut c = AssetChain::new("t");
        let a = AccountId::from_name("a");
        assert!(matches!(
            c.lock(a, AccountId::from_name("b"), sha256(b"p"), 10, 5),
            Err(HtlcError::InsufficientFunds { .. })
        ));
    }

    #[test]
    fn swap_happy_path_completes() {
        let mut swap = AtomicSwap::setup(100, 200);
        let outcome = swap.run(1_000, SwapFaults::default());
        assert_eq!(outcome, SwapOutcome::Completed);
        assert_eq!(swap.chain_a.balance(&swap.bob), 100);
        assert_eq!(swap.chain_b.balance(&swap.alice), 200);
        assert_eq!(swap.total_value(), 300);
    }

    #[test]
    fn swap_aborts_cleanly_when_bob_never_locks() {
        let mut swap = AtomicSwap::setup(100, 200);
        let outcome = swap.run(
            1_000,
            SwapFaults {
                bob_never_locks: true,
                ..Default::default()
            },
        );
        assert_eq!(outcome, SwapOutcome::Aborted);
        // Everyone got their money back.
        assert_eq!(swap.chain_a.balance(&swap.alice), 100);
        assert_eq!(swap.chain_b.balance(&swap.bob), 200);
        assert_eq!(swap.total_value(), 300);
    }

    #[test]
    fn swap_aborts_cleanly_when_alice_never_claims() {
        let mut swap = AtomicSwap::setup(100, 200);
        let outcome = swap.run(
            1_000,
            SwapFaults {
                alice_never_claims: true,
                ..Default::default()
            },
        );
        assert_eq!(outcome, SwapOutcome::Aborted);
        assert_eq!(swap.chain_a.balance(&swap.alice), 100);
        assert_eq!(swap.chain_b.balance(&swap.bob), 200);
    }

    #[test]
    fn late_claim_past_timelock_aborts_atomically() {
        let mut swap = AtomicSwap::setup(100, 200);
        // Alice's claim arrives after Bob's timelock t=1000 ⇒ rejected ⇒
        // no preimage revealed ⇒ both legs refund.
        let outcome = swap.run(
            1_000,
            SwapFaults {
                alice_claim_delay_ms: 1_500,
                ..Default::default()
            },
        );
        assert_eq!(outcome, SwapOutcome::Aborted);
        assert_eq!(swap.chain_a.balance(&swap.alice), 100);
        assert_eq!(swap.chain_b.balance(&swap.bob), 200);
    }

    #[test]
    fn no_half_completion_across_fault_matrix() {
        // E8 core assertion: for every fault combination, either both legs
        // complete or both abort — and value is conserved.
        for bob_never_locks in [false, true] {
            for alice_never_claims in [false, true] {
                for delay in [0u64, 500, 1_500] {
                    let mut swap = AtomicSwap::setup(100, 200);
                    let outcome = swap.run(
                        1_000,
                        SwapFaults {
                            bob_never_locks,
                            alice_never_claims,
                            bob_never_claims: false,
                            alice_claim_delay_ms: delay,
                        },
                    );
                    assert_eq!(swap.total_value(), 300, "conservation");
                    match outcome {
                        SwapOutcome::Completed => {
                            assert_eq!(swap.chain_a.balance(&swap.bob), 100);
                            assert_eq!(swap.chain_b.balance(&swap.alice), 200);
                        }
                        SwapOutcome::Aborted => {
                            assert_eq!(swap.chain_a.balance(&swap.alice), 100);
                            assert_eq!(swap.chain_b.balance(&swap.bob), 200);
                        }
                    }
                }
            }
        }
    }
}
