//! Notary-committee attestation of cross-chain events (§2.3's "notary
//! schemes use intermediaries to facilitate transactions between chains").
//!
//! A committee of notaries observes an event on a source chain and signs
//! it; an attestation with at least `threshold` valid signatures convinces
//! the destination chain. This is the *trusted-third-party* end of the
//! interoperability trust spectrum the paper contrasts with trustless
//! HTLC/relay designs (§1, challenge one).

use blockprov_crypto::sha256::Hash256;
use blockprov_crypto::sig::{self, Keypair, OtsScheme, PublicKey, Signature};
use blockprov_ledger::block::BlockHash;
use blockprov_wire::{Codec, Writer};

/// A cross-chain event to attest: "transaction `tx` is in block `block` at
/// height `height` on chain `chain`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossChainEvent {
    /// Source chain label.
    pub chain: String,
    /// Containing block.
    pub block: BlockHash,
    /// Block height.
    pub height: u64,
    /// Transaction digest.
    pub tx: Hash256,
}

impl CrossChainEvent {
    /// Canonical signing bytes.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.chain);
        self.block.encode(&mut w);
        w.put_u64(self.height);
        self.tx.encode(&mut w);
        w.into_bytes()
    }
}

/// A threshold attestation: signatures from committee members.
#[derive(Debug, Clone)]
pub struct Attestation {
    /// The attested event.
    pub event: CrossChainEvent,
    /// `(member index, signature)` pairs.
    pub signatures: Vec<(usize, Signature)>,
}

/// The notary committee.
pub struct NotaryCommittee {
    members: Vec<Keypair>,
    public_keys: Vec<PublicKey>,
    threshold: usize,
}

impl NotaryCommittee {
    /// Create `n` notaries requiring `threshold` signatures.
    pub fn new(n: usize, threshold: usize) -> Self {
        Self::with_prefix("notary", n, threshold)
    }

    /// Create a committee whose keys derive from a distinct name prefix
    /// (separate federations must not share keys).
    pub fn with_prefix(prefix: &str, n: usize, threshold: usize) -> Self {
        Self::with_prefix_and_capacity(prefix, n, threshold, 6)
    }

    /// Like [`NotaryCommittee::with_prefix`] with an explicit signing
    /// capacity: each member key holds `2^key_height` one-time signatures.
    /// MSS keygen cost is linear in the leaf count, so simulations and
    /// tests that attest a handful of events should pass a small height.
    pub fn with_prefix_and_capacity(
        prefix: &str,
        n: usize,
        threshold: usize,
        key_height: u32,
    ) -> Self {
        assert!(threshold > 0 && threshold <= n, "threshold in 1..=n");
        let members: Vec<Keypair> = (0..n)
            .map(|i| Keypair::from_name(&format!("{prefix}-{i}"), OtsScheme::Wots, key_height))
            .collect();
        let public_keys = members.iter().map(Keypair::public_key).collect();
        Self {
            members,
            public_keys,
            threshold,
        }
    }

    /// Committee size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the committee is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The verification keys (distributed to destination chains).
    pub fn public_keys(&self) -> &[PublicKey] {
        &self.public_keys
    }

    /// Required signature count.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Have the members at `signer_indices` attest the event.
    ///
    /// In production each notary independently checks the event against its
    /// own view of the source chain; here the caller selects which notaries
    /// "saw" it (enabling partial-committee experiments).
    pub fn attest(&mut self, event: &CrossChainEvent, signer_indices: &[usize]) -> Attestation {
        let bytes = event.signing_bytes();
        let mut signatures = Vec::with_capacity(signer_indices.len());
        for &i in signer_indices {
            if let Some(member) = self.members.get_mut(i) {
                if let Ok(sig) = member.sign(&bytes) {
                    signatures.push((i, sig));
                }
            }
        }
        Attestation {
            event: event.clone(),
            signatures,
        }
    }

    /// Verify an attestation against the committee's public keys.
    pub fn verify(public_keys: &[PublicKey], threshold: usize, attestation: &Attestation) -> bool {
        let bytes = attestation.event.signing_bytes();
        let mut seen = std::collections::BTreeSet::new();
        let mut valid = 0;
        for (index, signature) in &attestation.signatures {
            if !seen.insert(*index) {
                continue; // duplicate signer does not double-count
            }
            let Some(pk) = public_keys.get(*index) else {
                continue;
            };
            if sig::verify(pk, &bytes, signature) {
                valid += 1;
            }
        }
        valid >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockprov_crypto::sha256::sha256;

    fn event() -> CrossChainEvent {
        CrossChainEvent {
            chain: "org-A".into(),
            block: BlockHash(sha256(b"block")),
            height: 42,
            tx: sha256(b"tx"),
        }
    }

    #[test]
    fn threshold_attestation_verifies() {
        let mut committee = NotaryCommittee::with_prefix_and_capacity("notary", 5, 3, 3);
        let att = committee.attest(&event(), &[0, 2, 4]);
        assert!(NotaryCommittee::verify(committee.public_keys(), 3, &att));
    }

    #[test]
    fn below_threshold_rejected() {
        let mut committee = NotaryCommittee::with_prefix_and_capacity("notary", 5, 3, 3);
        let att = committee.attest(&event(), &[0, 1]);
        assert!(!NotaryCommittee::verify(committee.public_keys(), 3, &att));
    }

    #[test]
    fn duplicate_signers_do_not_double_count() {
        let mut committee = NotaryCommittee::with_prefix_and_capacity("notary", 5, 3, 3);
        let mut att = committee.attest(&event(), &[0, 1]);
        // Replay member 0's signature a second time.
        let dup = att.signatures[0].clone();
        att.signatures.push(dup);
        assert!(!NotaryCommittee::verify(committee.public_keys(), 3, &att));
    }

    #[test]
    fn tampered_event_rejected() {
        let mut committee = NotaryCommittee::with_prefix_and_capacity("notary", 4, 2, 3);
        let mut att = committee.attest(&event(), &[0, 1]);
        att.event.height += 1;
        assert!(!NotaryCommittee::verify(committee.public_keys(), 2, &att));
    }

    #[test]
    fn foreign_signatures_rejected() {
        let committee = NotaryCommittee::with_prefix_and_capacity("notary", 4, 2, 3);
        let mut rogue = NotaryCommittee::with_prefix_and_capacity("rogue", 4, 2, 3);
        // Rogue committee (different keys) signs the same event.
        let att = rogue.attest(&event(), &[0, 1]);
        assert!(!NotaryCommittee::verify(committee.public_keys(), 2, &att));
    }
}
