//! TEE-attested cross-chain queries — the enhancement the survey proposes
//! for Vassago [31].
//!
//! The paper suggests "implementing a Trusted Execution Environment (TEE)
//! for query authenticity": a relying party that cannot re-run a cross-chain
//! provenance query should still be able to check that (a) the query ran
//! inside genuine hardware, (b) it ran the *expected query program*, and
//! (c) the result bytes are exactly what that program produced.
//!
//! Since no enclave hardware is available (see DESIGN.md §Substitutions),
//! this module simulates the attestation *trust chain*, which is the part
//! the protocol depends on:
//!
//! * a [`Vendor`] (hardware manufacturer root) signs **attestation
//!   certificates** binding an enclave's signing key to its code
//!   **measurement** (digest of the query program);
//! * an [`Enclave`] executes a registered query program and signs
//!   `(input, output, measurement)` with its attestation key;
//! * [`verify_attested`] checks the full chain: vendor signature over the
//!   certificate, measurement pinned by the verifier, enclave signature
//!   over the result.
//!
//! What the simulation preserves: every verification decision and failure
//! mode (wrong program, tampered output, forged certificate, replayed
//! result). What it cannot provide: actual isolation of the enclave from
//! its host — that is physics, not protocol.

use blockprov_crypto::sha256::{hash_parts, Hash256};
use blockprov_crypto::sig::{verify, Keypair, OtsScheme, PublicKey, SigningError};
use std::fmt;

/// A code measurement: digest of the query program's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub Hash256);

impl Measurement {
    /// Measure a program (name + version + semantic digest).
    pub fn of_program(name: &str, version: u32, logic_digest: &Hash256) -> Self {
        Measurement(hash_parts(
            "blockprov-tee-measurement",
            &[name.as_bytes(), &version.to_le_bytes(), logic_digest.as_bytes()],
        ))
    }
}

/// An attestation certificate: the vendor vouches that `enclave_pk` belongs
/// to an enclave running code with `measurement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationCert {
    /// The attested enclave signing key.
    pub enclave_pk: PublicKey,
    /// The attested code measurement.
    pub measurement: Measurement,
    /// Vendor signature over (enclave_pk, measurement).
    pub vendor_sig: blockprov_crypto::sig::Signature,
}

fn cert_signing_bytes(pk: &PublicKey, m: &Measurement) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.extend_from_slice(b"blockprov-tee-cert");
    out.extend_from_slice(pk.root.as_bytes());
    out.extend_from_slice(m.0.as_bytes());
    out
}

/// The hardware vendor's certification authority.
pub struct Vendor {
    keypair: Keypair,
}

impl fmt::Debug for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vendor").finish_non_exhaustive()
    }
}

impl Vendor {
    /// A vendor root derived from a seed.
    pub fn new(seed: &str) -> Self {
        Self::with_capacity(seed, 8)
    }

    /// A vendor root with an explicit certification capacity
    /// (`2^key_height` enclave certificates; keygen is linear in leaves).
    pub fn with_capacity(seed: &str, key_height: u32) -> Self {
        Self {
            keypair: Keypair::from_name(seed, OtsScheme::Wots, key_height),
        }
    }

    /// The vendor's root verification key (pinned by relying parties).
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public_key()
    }

    /// Certify an enclave: sign its key + measurement.
    pub fn certify(
        &mut self,
        enclave_pk: PublicKey,
        measurement: Measurement,
    ) -> Result<AttestationCert, SigningError> {
        let sig = self.keypair.sign(&cert_signing_bytes(&enclave_pk, &measurement))?;
        Ok(AttestationCert { enclave_pk, measurement, vendor_sig: sig })
    }
}

/// An attested result: what the enclave returns to the relying party.
#[derive(Debug, Clone)]
pub struct AttestedResult {
    /// Digest of the query input.
    pub input_digest: Hash256,
    /// The query output bytes.
    pub output: Vec<u8>,
    /// Measurement of the program that ran.
    pub measurement: Measurement,
    /// Enclave signature over (input_digest, output, measurement).
    pub enclave_sig: blockprov_crypto::sig::Signature,
    /// The attestation certificate chain.
    pub cert: AttestationCert,
}

fn result_signing_bytes(input_digest: &Hash256, output: &[u8], m: &Measurement) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + output.len());
    out.extend_from_slice(b"blockprov-tee-result");
    out.extend_from_slice(input_digest.as_bytes());
    out.extend_from_slice(&(output.len() as u64).to_le_bytes());
    out.extend_from_slice(output);
    out.extend_from_slice(m.0.as_bytes());
    out
}

/// The query program an enclave hosts (bytes in → bytes out).
pub type QueryProgram = Box<dyn Fn(&[u8]) -> Vec<u8> + Send>;

/// A simulated enclave hosting one query program.
pub struct Enclave {
    keypair: Keypair,
    measurement: Measurement,
    cert: AttestationCert,
    program: QueryProgram,
}

impl fmt::Debug for Enclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Enclave")
            .field("measurement", &self.measurement)
            .finish_non_exhaustive()
    }
}

impl Enclave {
    /// Launch an enclave with a query program and obtain its certificate
    /// from the vendor. `logic_digest` represents the program binary's
    /// digest; the closure is the program itself.
    pub fn launch(
        vendor: &mut Vendor,
        name: &str,
        version: u32,
        logic_digest: Hash256,
        program: QueryProgram,
    ) -> Result<Self, SigningError> {
        Self::launch_with_capacity(vendor, name, version, logic_digest, program, 8)
    }

    /// Like [`Enclave::launch`] with an explicit attestation capacity
    /// (`2^key_height` attested results before the enclave key runs out).
    pub fn launch_with_capacity(
        vendor: &mut Vendor,
        name: &str,
        version: u32,
        logic_digest: Hash256,
        program: QueryProgram,
        key_height: u32,
    ) -> Result<Self, SigningError> {
        let keypair = Keypair::from_name(
            &format!("enclave/{name}/{version}/{logic_digest}"),
            OtsScheme::Wots,
            key_height,
        );
        let measurement = Measurement::of_program(name, version, &logic_digest);
        let cert = vendor.certify(keypair.public_key(), measurement)?;
        Ok(Self { keypair, measurement, cert, program })
    }

    /// The enclave's measurement (what verifiers pin).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Execute the query program on `input` and sign the result.
    pub fn execute(&mut self, input: &[u8]) -> Result<AttestedResult, SigningError> {
        let output = (self.program)(input);
        let input_digest = hash_parts("blockprov-tee-input", &[input]);
        let sig = self
            .keypair
            .sign(&result_signing_bytes(&input_digest, &output, &self.measurement))?;
        Ok(AttestedResult {
            input_digest,
            output,
            measurement: self.measurement,
            enclave_sig: sig,
            cert: self.cert.clone(),
        })
    }
}

/// Why attestation verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestError {
    /// Certificate not signed by the pinned vendor.
    BadVendorSignature,
    /// Result's measurement differs from the verifier's pinned measurement.
    WrongMeasurement,
    /// Certificate's measurement differs from the result's.
    CertMismatch,
    /// Enclave signature over the result failed.
    BadEnclaveSignature,
    /// The result is for a different input than expected.
    InputMismatch,
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            AttestError::BadVendorSignature => "vendor signature invalid",
            AttestError::WrongMeasurement => "unexpected code measurement",
            AttestError::CertMismatch => "certificate/result measurement mismatch",
            AttestError::BadEnclaveSignature => "enclave signature invalid",
            AttestError::InputMismatch => "result is for a different input",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for AttestError {}

/// Full relying-party verification of an attested query result.
pub fn verify_attested(
    vendor_pk: &PublicKey,
    pinned: Measurement,
    expected_input: &[u8],
    result: &AttestedResult,
) -> Result<(), AttestError> {
    // 1. Certificate chain: vendor vouches for (enclave_pk, measurement).
    let cert_bytes = cert_signing_bytes(&result.cert.enclave_pk, &result.cert.measurement);
    if !verify(vendor_pk, &cert_bytes, &result.cert.vendor_sig) {
        return Err(AttestError::BadVendorSignature);
    }
    // 2. Measurement pinning: the verifier demands a specific program.
    if result.measurement != pinned {
        return Err(AttestError::WrongMeasurement);
    }
    if result.cert.measurement != result.measurement {
        return Err(AttestError::CertMismatch);
    }
    // 3. Input binding (anti-replay across queries).
    let input_digest = hash_parts("blockprov-tee-input", &[expected_input]);
    if result.input_digest != input_digest {
        return Err(AttestError::InputMismatch);
    }
    // 4. The result itself.
    let bytes = result_signing_bytes(&result.input_digest, &result.output, &result.measurement);
    if !verify(&result.cert.enclave_pk, &bytes, &result.enclave_sig) {
        return Err(AttestError::BadEnclaveSignature);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockprov_crypto::sha256::sha256;

    fn trace_program() -> QueryProgram {
        // A stand-in query program: "trace" = reverse the asset id bytes.
        Box::new(|input: &[u8]| {
            let mut out = input.to_vec();
            out.reverse();
            out
        })
    }

    fn setup() -> (Vendor, Enclave, Measurement) {
        let mut vendor = Vendor::with_capacity("chipmaker-root", 4);
        let enclave = Enclave::launch_with_capacity(
            &mut vendor,
            "vassago-trace",
            1,
            sha256(b"trace-program-binary-v1"),
            trace_program(),
            4,
        )
        .unwrap();
        let m = enclave.measurement();
        (vendor, enclave, m)
    }

    #[test]
    fn honest_attested_query_verifies() {
        let (vendor, mut enclave, m) = setup();
        let result = enclave.execute(b"asset-42").unwrap();
        assert_eq!(result.output, b"24-tessa");
        assert!(verify_attested(&vendor.public_key(), m, b"asset-42", &result).is_ok());
    }

    #[test]
    fn tampered_output_rejected() {
        let (vendor, mut enclave, m) = setup();
        let mut result = enclave.execute(b"asset-42").unwrap();
        result.output[0] ^= 1;
        assert_eq!(
            verify_attested(&vendor.public_key(), m, b"asset-42", &result),
            Err(AttestError::BadEnclaveSignature)
        );
    }

    #[test]
    fn wrong_program_measurement_rejected() {
        let (mut vendor, _, _) = setup();
        // A different (perhaps malicious) program, certified honestly.
        let mut other = Enclave::launch_with_capacity(
            &mut vendor,
            "vassago-trace",
            2, // different version → different measurement
            sha256(b"trace-program-binary-v2"),
            trace_program(),
            4,
        )
        .unwrap();
        let result = other.execute(b"asset-42").unwrap();
        // The verifier pinned version 1's measurement.
        let pinned = Measurement::of_program(
            "vassago-trace",
            1,
            &sha256(b"trace-program-binary-v1"),
        );
        assert_eq!(
            verify_attested(&vendor.public_key(), pinned, b"asset-42", &result),
            Err(AttestError::WrongMeasurement)
        );
    }

    #[test]
    fn forged_certificate_rejected() {
        let (vendor, mut enclave, m) = setup();
        let mut rogue_vendor = Vendor::with_capacity("rogue-fab", 4);
        let mut result = enclave.execute(b"asset-42").unwrap();
        // Substitute a certificate from an unpinned vendor.
        result.cert = rogue_vendor.certify(result.cert.enclave_pk, m).unwrap();
        assert_eq!(
            verify_attested(&vendor.public_key(), m, b"asset-42", &result),
            Err(AttestError::BadVendorSignature)
        );
    }

    #[test]
    fn replay_to_other_input_rejected() {
        let (vendor, mut enclave, m) = setup();
        let result = enclave.execute(b"asset-42").unwrap();
        assert_eq!(
            verify_attested(&vendor.public_key(), m, b"asset-43", &result),
            Err(AttestError::InputMismatch)
        );
    }

    #[test]
    fn cert_and_result_measurement_must_agree() {
        let (mut vendor, mut enclave, m) = setup();
        let mut result = enclave.execute(b"asset-1").unwrap();
        // Certificate honestly signed for a *different* measurement.
        let other_m = Measurement::of_program("other", 9, &sha256(b"other"));
        result.cert = vendor.certify(result.cert.enclave_pk, other_m).unwrap();
        result.measurement = other_m; // attacker aligns the result field…
        assert_eq!(
            verify_attested(&vendor.public_key(), m, b"asset-1", &result),
            Err(AttestError::WrongMeasurement)
        );
        // …or aligns with the pinned measurement but not the cert.
        let mut result2 = enclave.execute(b"asset-2").unwrap();
        result2.cert = vendor.certify(result2.cert.enclave_pk, other_m).unwrap();
        assert_eq!(
            verify_attested(&vendor.public_key(), m, b"asset-2", &result2),
            Err(AttestError::CertMismatch)
        );
    }

    #[test]
    fn multiple_queries_from_one_enclave() {
        let (vendor, mut enclave, m) = setup();
        for i in 0..5u8 {
            let input = vec![i; 4];
            let result = enclave.execute(&input).unwrap();
            assert!(verify_attested(&vendor.public_key(), m, &input, &result).is_ok());
        }
    }
}
