//! InfiniteChain [37]: a two-layer main/side blockchain organization with
//! distributed auditing of side chains.
//!
//! Hwang et al. organize blockchains in two layers — "a main blockchain and
//! a side blockchain with the same architecture. This approach allows for
//! effective data sharing within a homogeneous side blockchain … However,
//! it struggles with expansion to heterogeneous participant blockchains,
//! where different data structures prevent direct communication".
//!
//! Reproduction:
//!
//! * side chains commit record batches into Merkle-rooted blocks and
//!   periodically **anchor** their tips on the main chain;
//! * **distributed auditing**: any auditor samples a side block and checks
//!   it against the main-chain anchor — a side-chain operator cannot
//!   rewrite anchored history without the audit failing;
//! * **homogeneous data sharing**: a record moves between side chains with
//!   a Merkle inclusion proof verified against the main-chain anchor — but
//!   only between chains declaring the same schema; the heterogeneous case
//!   fails with [`TwoLayerError::HeterogeneousSchemas`], reproducing the
//!   limitation the paper calls out (and RQ3 motivates solving).

use blockprov_crypto::merkle::MerkleTree;
use blockprov_crypto::sha256::{hash_parts, Hash256};
use std::collections::BTreeMap;
use std::fmt;

/// A record stored on a side chain (schema-tagged key/value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideRecord {
    /// Record key.
    pub key: String,
    /// Record payload.
    pub value: Vec<u8>,
}

impl SideRecord {
    fn leaf_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.key.len() + self.value.len() + 16);
        out.extend_from_slice(&(self.key.len() as u64).to_le_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out.extend_from_slice(&self.value);
        out
    }
}

/// A block on a side chain.
#[derive(Debug, Clone)]
pub struct SideBlock {
    /// Height on its side chain.
    pub height: u64,
    /// Previous side-block hash.
    pub prev: Hash256,
    /// Merkle root over the records.
    pub records_root: Hash256,
    /// The records (kept inline; a production chain would prune).
    pub records: Vec<SideRecord>,
    /// This block's hash.
    pub hash: Hash256,
}

fn side_block_hash(height: u64, prev: &Hash256, root: &Hash256) -> Hash256 {
    hash_parts(
        "blockprov-twolayer-side",
        &[&height.to_le_bytes(), prev.as_bytes(), root.as_bytes()],
    )
}

/// An anchor of one side-chain tip on the main chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchor {
    /// Which side chain.
    pub side: usize,
    /// Anchored side height.
    pub side_height: u64,
    /// Anchored side-block hash.
    pub side_hash: Hash256,
}

/// A main-chain block: a batch of side anchors.
#[derive(Debug, Clone)]
pub struct MainBlock {
    /// Main-chain height.
    pub height: u64,
    /// Previous main-block hash.
    pub prev: Hash256,
    /// Side anchors in this block.
    pub anchors: Vec<Anchor>,
    /// This block's hash.
    pub hash: Hash256,
}

/// One side chain.
#[derive(Debug)]
pub struct SideChain {
    /// Schema all participants of this side chain share.
    pub schema: String,
    blocks: Vec<SideBlock>,
}

impl SideChain {
    /// Latest block.
    pub fn tip(&self) -> Option<&SideBlock> {
        self.blocks.last()
    }

    /// Block at a height.
    pub fn block(&self, height: u64) -> Option<&SideBlock> {
        self.blocks.get(height as usize)
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chain has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Errors from the two-layer network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoLayerError {
    /// Unknown side chain.
    UnknownSide(usize),
    /// Side chain has nothing to anchor / share.
    EmptySide(usize),
    /// The record key is not in the given block.
    UnknownRecord(String),
    /// Receiving chain's schema differs — the InfiniteChain limitation.
    HeterogeneousSchemas {
        /// Sender's schema.
        from: String,
        /// Receiver's schema.
        to: String,
    },
    /// The block to share from has not been anchored on the main chain.
    NotAnchored {
        /// Side chain.
        side: usize,
        /// Side height.
        height: u64,
    },
    /// Inclusion proof failed against the anchored root.
    ProofRejected,
}

impl fmt::Display for TwoLayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoLayerError::UnknownSide(s) => write!(f, "unknown side chain {s}"),
            TwoLayerError::EmptySide(s) => write!(f, "side chain {s} has no blocks"),
            TwoLayerError::UnknownRecord(k) => write!(f, "record {k:?} not found"),
            TwoLayerError::HeterogeneousSchemas { from, to } => {
                write!(f, "cannot share between schemas {from:?} and {to:?}")
            }
            TwoLayerError::NotAnchored { side, height } => {
                write!(f, "side {side} block {height} not anchored on main chain")
            }
            TwoLayerError::ProofRejected => write!(f, "inclusion proof rejected"),
        }
    }
}

impl std::error::Error for TwoLayerError {}

/// Outcome of a distributed audit of one side block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Audited side chain.
    pub side: usize,
    /// Audited height.
    pub height: u64,
    /// Hash linkage from genesis to this block holds.
    pub linkage_ok: bool,
    /// Records match the block's Merkle root.
    pub records_ok: bool,
    /// Block hash matches a main-chain anchor.
    pub anchored_ok: bool,
}

impl AuditReport {
    /// All checks passed.
    pub fn passed(&self) -> bool {
        self.linkage_ok && self.records_ok && self.anchored_ok
    }
}

/// The two-layer network: one main chain, many side chains.
#[derive(Debug, Default)]
pub struct TwoLayerNetwork {
    sides: Vec<SideChain>,
    main: Vec<MainBlock>,
    /// (side, side_height) → main anchor lookup.
    anchor_index: BTreeMap<(usize, u64), Hash256>,
}

impl TwoLayerNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a side chain with a declared record schema. Returns its id.
    pub fn add_side_chain(&mut self, schema: &str) -> usize {
        self.sides.push(SideChain { schema: schema.to_string(), blocks: Vec::new() });
        self.sides.len() - 1
    }

    /// Access a side chain.
    pub fn side(&self, id: usize) -> Option<&SideChain> {
        self.sides.get(id)
    }

    /// The main chain.
    pub fn main_chain(&self) -> &[MainBlock] {
        &self.main
    }

    /// Commit a batch of records as a new side block.
    pub fn commit_side_block(
        &mut self,
        side: usize,
        records: Vec<SideRecord>,
    ) -> Result<u64, TwoLayerError> {
        let chain = self.sides.get_mut(side).ok_or(TwoLayerError::UnknownSide(side))?;
        let height = chain.blocks.len() as u64;
        let prev = chain.blocks.last().map(|b| b.hash).unwrap_or(Hash256::ZERO);
        let leaves: Vec<Vec<u8>> = records.iter().map(SideRecord::leaf_bytes).collect();
        let records_root = MerkleTree::from_data(&leaves).root();
        let hash = side_block_hash(height, &prev, &records_root);
        chain.blocks.push(SideBlock { height, prev, records_root, records, hash });
        Ok(height)
    }

    /// Anchor the current tips of all side chains into a new main block.
    /// (The paper's periodic distributed-audit checkpoint.)
    pub fn anchor_all(&mut self) -> u64 {
        let anchors: Vec<Anchor> = self
            .sides
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.tip().map(|b| Anchor { side: i, side_height: b.height, side_hash: b.hash })
            })
            .collect();
        let height = self.main.len() as u64;
        let prev = self.main.last().map(|b| b.hash).unwrap_or(Hash256::ZERO);
        let mut parts: Vec<Vec<u8>> = vec![height.to_le_bytes().to_vec(), prev.0.to_vec()];
        for a in &anchors {
            let mut row = Vec::with_capacity(48);
            row.extend_from_slice(&(a.side as u64).to_le_bytes());
            row.extend_from_slice(&a.side_height.to_le_bytes());
            row.extend_from_slice(a.side_hash.as_bytes());
            parts.push(row);
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        let hash = hash_parts("blockprov-twolayer-main", &refs);
        for a in &anchors {
            self.anchor_index.insert((a.side, a.side_height), a.side_hash);
        }
        self.main.push(MainBlock { height, prev, anchors, hash });
        height
    }

    /// Distributed audit of one side block by an independent auditor: check
    /// hash linkage, the records' Merkle root, and the main-chain anchor.
    pub fn audit(&self, side: usize, height: u64) -> Result<AuditReport, TwoLayerError> {
        let chain = self.sides.get(side).ok_or(TwoLayerError::UnknownSide(side))?;
        let block = chain
            .block(height)
            .ok_or(TwoLayerError::EmptySide(side))?;

        // Linkage from genesis.
        let mut linkage_ok = true;
        let mut prev = Hash256::ZERO;
        for b in &chain.blocks[..=height as usize] {
            if b.prev != prev || b.hash != side_block_hash(b.height, &b.prev, &b.records_root) {
                linkage_ok = false;
                break;
            }
            prev = b.hash;
        }

        let leaves: Vec<Vec<u8>> = block.records.iter().map(SideRecord::leaf_bytes).collect();
        let records_ok = MerkleTree::from_data(&leaves).root() == block.records_root;

        let anchored_ok = self
            .anchor_index
            .get(&(side, height))
            .is_some_and(|h| *h == block.hash);

        Ok(AuditReport { side, height, linkage_ok, records_ok, anchored_ok })
    }

    /// Share a record from one side chain to another, verified against the
    /// main-chain anchor. Homogeneous schemas only — the heterogeneous case
    /// is the limitation the survey highlights.
    pub fn share_record(
        &mut self,
        from: usize,
        height: u64,
        key: &str,
        to: usize,
    ) -> Result<(), TwoLayerError> {
        let from_schema =
            self.sides.get(from).ok_or(TwoLayerError::UnknownSide(from))?.schema.clone();
        let to_schema =
            self.sides.get(to).ok_or(TwoLayerError::UnknownSide(to))?.schema.clone();
        if from_schema != to_schema {
            return Err(TwoLayerError::HeterogeneousSchemas { from: from_schema, to: to_schema });
        }
        let block = self.sides[from]
            .block(height)
            .ok_or(TwoLayerError::EmptySide(from))?;

        // The receiver trusts only the main chain: the source block must be
        // anchored and the record proven under its root.
        let anchored = self
            .anchor_index
            .get(&(from, height))
            .ok_or(TwoLayerError::NotAnchored { side: from, height })?;
        if *anchored != block.hash {
            return Err(TwoLayerError::ProofRejected);
        }
        let idx = block
            .records
            .iter()
            .position(|r| r.key == key)
            .ok_or_else(|| TwoLayerError::UnknownRecord(key.to_string()))?;
        let leaves: Vec<Vec<u8>> = block.records.iter().map(SideRecord::leaf_bytes).collect();
        let tree = MerkleTree::from_data(&leaves);
        let proof = tree.prove(idx).ok_or(TwoLayerError::ProofRejected)?;
        let record = block.records[idx].clone();
        if !proof.verify_data(&block.records_root, &record.leaf_bytes()) {
            return Err(TwoLayerError::ProofRejected);
        }

        // Import on the receiving side as a new block.
        self.commit_side_block(to, vec![record])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, value: &[u8]) -> SideRecord {
        SideRecord { key: key.to_string(), value: value.to_vec() }
    }

    fn network_with_two_homogeneous_sides() -> (TwoLayerNetwork, usize, usize) {
        let mut n = TwoLayerNetwork::new();
        let a = n.add_side_chain("edu-credential-v1");
        let b = n.add_side_chain("edu-credential-v1");
        (n, a, b)
    }

    #[test]
    fn side_blocks_chain_and_anchor() {
        let (mut n, a, _) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k1", b"v1")]).unwrap();
        n.commit_side_block(a, vec![rec("k2", b"v2")]).unwrap();
        let main_h = n.anchor_all();
        assert_eq!(main_h, 0);
        // Only side `a` has blocks, and only its tip (height 1) is anchored.
        let anchors = &n.main_chain()[0].anchors;
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].side_height, 1);
    }

    #[test]
    fn audit_passes_for_honest_anchored_block() {
        let (mut n, a, _) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k1", b"v1"), rec("k2", b"v2")]).unwrap();
        n.anchor_all();
        let report = n.audit(a, 0).unwrap();
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn audit_flags_unanchored_block() {
        let (mut n, a, _) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k1", b"v1")]).unwrap();
        // No anchor_all: auditors must notice the missing anchor.
        let report = n.audit(a, 0).unwrap();
        assert!(report.linkage_ok && report.records_ok);
        assert!(!report.anchored_ok);
        assert!(!report.passed());
    }

    #[test]
    fn audit_detects_side_history_rewrite() {
        let (mut n, a, _) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("grade", b"C")]).unwrap();
        n.anchor_all();
        // The side operator rewrites the record after anchoring.
        n.sides[a].blocks[0].records[0].value = b"A+".to_vec();
        let report = n.audit(a, 0).unwrap();
        assert!(!report.records_ok);
        assert!(!report.passed());
    }

    #[test]
    fn audit_detects_relink_attack() {
        let (mut n, a, _) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k", b"v")]).unwrap();
        n.commit_side_block(a, vec![rec("k2", b"v2")]).unwrap();
        n.anchor_all();
        // Rebuild block 0 entirely (consistent root+hash) — linkage of
        // block 1 and the anchor both break.
        let forged = vec![rec("k", b"forged")];
        let leaves: Vec<Vec<u8>> = forged.iter().map(SideRecord::leaf_bytes).collect();
        let root = MerkleTree::from_data(&leaves).root();
        let hash = side_block_hash(0, &Hash256::ZERO, &root);
        n.sides[a].blocks[0] = SideBlock {
            height: 0,
            prev: Hash256::ZERO,
            records_root: root,
            records: forged,
            hash,
        };
        assert!(!n.audit(a, 1).unwrap().linkage_ok);
        assert!(!n.audit(a, 0).unwrap().anchored_ok);
    }

    #[test]
    fn homogeneous_sharing_succeeds_with_proof() {
        let (mut n, a, b) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("diploma-77", b"magna cum laude")]).unwrap();
        n.anchor_all();
        n.share_record(a, 0, "diploma-77", b).unwrap();
        let imported = n.side(b).unwrap().tip().unwrap();
        assert_eq!(imported.records[0].key, "diploma-77");
        assert_eq!(imported.records[0].value, b"magna cum laude");
    }

    #[test]
    fn heterogeneous_sharing_fails() {
        let mut n = TwoLayerNetwork::new();
        let a = n.add_side_chain("edu-credential-v1");
        let c = n.add_side_chain("medical-record-v2");
        n.commit_side_block(a, vec![rec("k", b"v")]).unwrap();
        n.anchor_all();
        assert_eq!(
            n.share_record(a, 0, "k", c).unwrap_err(),
            TwoLayerError::HeterogeneousSchemas {
                from: "edu-credential-v1".into(),
                to: "medical-record-v2".into()
            }
        );
    }

    #[test]
    fn sharing_requires_anchoring() {
        let (mut n, a, b) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k", b"v")]).unwrap();
        assert_eq!(
            n.share_record(a, 0, "k", b).unwrap_err(),
            TwoLayerError::NotAnchored { side: a, height: 0 }
        );
    }

    #[test]
    fn sharing_unknown_record_fails() {
        let (mut n, a, b) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k", b"v")]).unwrap();
        n.anchor_all();
        assert_eq!(
            n.share_record(a, 0, "missing", b).unwrap_err(),
            TwoLayerError::UnknownRecord("missing".into())
        );
    }

    #[test]
    fn main_chain_links() {
        let (mut n, a, _) = network_with_two_homogeneous_sides();
        n.commit_side_block(a, vec![rec("k", b"v")]).unwrap();
        n.anchor_all();
        n.commit_side_block(a, vec![rec("k2", b"v2")]).unwrap();
        n.anchor_all();
        let main = n.main_chain();
        assert_eq!(main.len(), 2);
        assert_eq!(main[1].prev, main[0].hash);
    }
}
