//! ARC [88]: an asynchronous consensus + relay-chain cross-chain solution
//! for consortium blockchains.
//!
//! The survey notes ARC "focuses on security and provides a clear system
//! description, but lacks a thorough evaluation and detailed implementation
//! discussion. Improvements could include a detailed evaluation, better
//! implementation discussions, and consideration of alternative trust
//! models for participants." This module supplies all three:
//!
//! * an implementation: cross-chain requests enqueue **asynchronously** —
//!   the source chain never blocks on the relay; a validator committee
//!   confirms requests in batches and acknowledgments flow back on the
//!   next batch boundary;
//! * alternative **trust models** ([`TrustModel`]): single operator,
//!   t-of-n committee, or unanimous consortium — the knob the survey asks
//!   for;
//! * an evaluation: experiment E22 sweeps batch size against latency
//!   (in batch intervals) and per-request validator signatures, the
//!   throughput/trust trade-off ARC's paper left unmeasured.

use crate::notary::{CrossChainEvent, NotaryCommittee};
use blockprov_crypto::sha256::{hash_parts, Hash256};
use blockprov_ledger::block::BlockHash;
use std::collections::BTreeMap;
use std::fmt;

/// Who must confirm a batch before it commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustModel {
    /// One relay operator signs (fast, centralized trust).
    Single,
    /// `t` of the committee must sign.
    Committee {
        /// Required signatures.
        threshold: usize,
    },
    /// Every member must sign (consortium-unanimous).
    Unanimous,
}

/// State of a cross-chain request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Accepted into the pending queue; source chain continues.
    Pending,
    /// Confirmed in a committed batch; acknowledgment available.
    Committed {
        /// Batch that carried it.
        batch: u64,
    },
}

/// Identifier of a queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub Hash256);

/// A cross-chain request between consortium chains.
#[derive(Debug, Clone)]
pub struct CrossRequest {
    /// Identifier.
    pub id: RequestId,
    /// Source chain.
    pub from: String,
    /// Destination chain.
    pub to: String,
    /// Opaque payload.
    pub payload: Vec<u8>,
    /// Submission tick.
    pub submitted_at: u64,
    /// Current state.
    pub state: RequestState,
}

/// A committed batch: the relay-chain block.
#[derive(Debug, Clone)]
pub struct RelayBatch {
    /// Batch height.
    pub height: u64,
    /// Previous batch hash.
    pub prev: Hash256,
    /// Digest over the carried request ids.
    pub root: Hash256,
    /// Requests carried.
    pub requests: Vec<RequestId>,
    /// Validator signatures collected (count depends on the trust model).
    pub signatures: usize,
    /// Commit tick.
    pub committed_at: u64,
    /// Batch hash.
    pub hash: Hash256,
}

/// Errors from the ARC relay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArcError {
    /// Chain not registered with the consortium.
    UnknownChain(String),
    /// Request id not known.
    UnknownRequest(RequestId),
}

impl fmt::Display for ArcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcError::UnknownChain(c) => write!(f, "chain {c:?} not in consortium"),
            ArcError::UnknownRequest(r) => write!(f, "unknown request {:?}", r.0),
        }
    }
}

impl std::error::Error for ArcError {}

/// The asynchronous relay.
pub struct ArcRelay {
    chains: Vec<String>,
    trust: TrustModel,
    committee: NotaryCommittee,
    pending: Vec<RequestId>,
    requests: BTreeMap<RequestId, CrossRequest>,
    batches: Vec<RelayBatch>,
    tick: u64,
    seq: u64,
}

impl fmt::Debug for ArcRelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcRelay")
            .field("chains", &self.chains.len())
            .field("pending", &self.pending.len())
            .field("batches", &self.batches.len())
            .finish_non_exhaustive()
    }
}

impl ArcRelay {
    /// A consortium relay over `chains` with `validators` members and the
    /// given trust model.
    pub fn new(chains: &[&str], validators: usize, trust: TrustModel) -> Self {
        Self::with_key_capacity(chains, validators, trust, 6)
    }

    /// Like [`ArcRelay::new`] with an explicit validator signing capacity
    /// (`2^key_height` batch signatures per validator) — short simulations
    /// should pass a small height, keygen cost is linear in the leaf count.
    pub fn with_key_capacity(
        chains: &[&str],
        validators: usize,
        trust: TrustModel,
        key_height: u32,
    ) -> Self {
        Self {
            chains: chains.iter().map(|c| c.to_string()).collect(),
            trust,
            committee: NotaryCommittee::with_prefix_and_capacity(
                "arc-validator",
                validators,
                validators,
                key_height,
            ),
            pending: Vec::new(),
            requests: BTreeMap::new(),
            batches: Vec::new(),
            tick: 0,
            seq: 0,
        }
    }

    fn signatures_required(&self) -> usize {
        match self.trust {
            TrustModel::Single => 1,
            TrustModel::Committee { threshold } => threshold.min(self.committee.len()),
            TrustModel::Unanimous => self.committee.len(),
        }
    }

    /// Current logical tick (advanced by batch processing).
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Submit a request; returns immediately (asynchronous — the source
    /// chain does not wait for relay consensus).
    pub fn submit(
        &mut self,
        from: &str,
        to: &str,
        payload: &[u8],
    ) -> Result<RequestId, ArcError> {
        for c in [from, to] {
            if !self.chains.iter().any(|x| x == c) {
                return Err(ArcError::UnknownChain(c.to_string()));
            }
        }
        let seq = self.seq;
        self.seq += 1;
        let id = RequestId(hash_parts(
            "blockprov-arc-request",
            &[from.as_bytes(), to.as_bytes(), payload, &seq.to_le_bytes()],
        ));
        self.requests.insert(
            id,
            CrossRequest {
                id,
                from: from.to_string(),
                to: to.to_string(),
                payload: payload.to_vec(),
                submitted_at: self.tick,
                state: RequestState::Pending,
            },
        );
        self.pending.push(id);
        Ok(id)
    }

    /// Process one batch interval: take up to `batch_size` pending requests,
    /// collect validator signatures per the trust model, and commit the
    /// batch. Advances the clock by one tick either way.
    pub fn process_batch(&mut self, batch_size: usize) -> Option<&RelayBatch> {
        self.tick += 1;
        if self.pending.is_empty() {
            return None;
        }
        let take = batch_size.max(1).min(self.pending.len());
        let ids: Vec<RequestId> = self.pending.drain(..take).collect();

        let id_bytes: Vec<[u8; 32]> = ids.iter().map(|r| r.0 .0).collect();
        let parts: Vec<&[u8]> = id_bytes.iter().map(|b| b.as_slice()).collect();
        let root = hash_parts("blockprov-arc-batch-root", &parts);

        // Validator confirmation: threshold signatures over the batch root.
        let need = self.signatures_required();
        let signers: Vec<usize> = (0..need).collect();
        let event = CrossChainEvent {
            chain: "arc-relay".into(),
            block: BlockHash(root),
            height: self.batches.len() as u64,
            tx: root,
        };
        let attestation = self.committee.attest(&event, &signers);
        let signatures = attestation.signatures.len();

        let height = self.batches.len() as u64;
        let prev = self.batches.last().map(|b| b.hash).unwrap_or(Hash256::ZERO);
        let hash = hash_parts(
            "blockprov-arc-batch",
            &[&height.to_le_bytes(), prev.as_bytes(), root.as_bytes()],
        );
        for id in &ids {
            if let Some(req) = self.requests.get_mut(id) {
                req.state = RequestState::Committed { batch: height };
            }
        }
        self.batches.push(RelayBatch {
            height,
            prev,
            root,
            requests: ids,
            signatures,
            committed_at: self.tick,
            hash,
        });
        self.batches.last()
    }

    /// Asynchronous acknowledgment: Some(latency in ticks) once committed.
    pub fn ack_of(&self, id: &RequestId) -> Result<Option<u64>, ArcError> {
        let req = self.requests.get(id).ok_or(ArcError::UnknownRequest(*id))?;
        match req.state {
            RequestState::Pending => Ok(None),
            RequestState::Committed { batch } => {
                let b = &self.batches[batch as usize];
                Ok(Some(b.committed_at - req.submitted_at))
            }
        }
    }

    /// Look up a request.
    pub fn request(&self, id: &RequestId) -> Option<&CrossRequest> {
        self.requests.get(id)
    }

    /// Committed batches.
    pub fn batches(&self) -> &[RelayBatch] {
        &self.batches
    }

    /// Requests still pending.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Verify the relay chain's hash linkage.
    pub fn verify_chain(&self) -> bool {
        let mut prev = Hash256::ZERO;
        for b in &self.batches {
            let expect = hash_parts(
                "blockprov-arc-batch",
                &[&b.height.to_le_bytes(), prev.as_bytes(), b.root.as_bytes()],
            );
            if b.prev != prev || b.hash != expect {
                return false;
            }
            prev = b.hash;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relay(trust: TrustModel) -> ArcRelay {
        ArcRelay::with_key_capacity(&["org-a", "org-b", "org-c"], 4, trust, 3)
    }

    #[test]
    fn submit_is_asynchronous() {
        let mut r = relay(TrustModel::Committee { threshold: 3 });
        let id = r.submit("org-a", "org-b", b"tx-1").unwrap();
        // No batch processed yet: request pending, no ack, clock unmoved.
        assert_eq!(r.request(&id).unwrap().state, RequestState::Pending);
        assert_eq!(r.ack_of(&id).unwrap(), None);
        assert_eq!(r.pending_count(), 1);
    }

    #[test]
    fn batch_commits_and_acks() {
        let mut r = relay(TrustModel::Committee { threshold: 3 });
        let id = r.submit("org-a", "org-b", b"tx-1").unwrap();
        let batch = r.process_batch(16).unwrap();
        assert_eq!(batch.requests, vec![id]);
        assert_eq!(batch.signatures, 3);
        assert_eq!(r.ack_of(&id).unwrap(), Some(1), "committed on the next tick");
    }

    #[test]
    fn unknown_chain_rejected() {
        let mut r = relay(TrustModel::Single);
        assert_eq!(
            r.submit("org-a", "mallory-chain", b"x").unwrap_err(),
            ArcError::UnknownChain("mallory-chain".into())
        );
    }

    #[test]
    fn trust_models_scale_signature_count() {
        for (trust, expect) in [
            (TrustModel::Single, 1usize),
            (TrustModel::Committee { threshold: 3 }, 3),
            (TrustModel::Unanimous, 4),
        ] {
            let mut r = relay(trust);
            r.submit("org-a", "org-b", b"x").unwrap();
            assert_eq!(r.process_batch(8).unwrap().signatures, expect, "{trust:?}");
        }
    }

    #[test]
    fn latency_depends_on_queue_position_and_batch_size() {
        let mut r = relay(TrustModel::Single);
        let ids: Vec<RequestId> = (0..6u8)
            .map(|i| r.submit("org-a", "org-b", &[i]).unwrap())
            .collect();
        // Batch size 2: requests drain two per tick.
        while r.pending_count() > 0 {
            r.process_batch(2);
        }
        let lat: Vec<u64> = ids.iter().map(|i| r.ack_of(i).unwrap().unwrap()).collect();
        assert_eq!(lat, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn empty_interval_produces_no_batch_but_time_passes() {
        let mut r = relay(TrustModel::Single);
        assert!(r.process_batch(4).is_none());
        assert_eq!(r.now(), 1);
    }

    #[test]
    fn relay_chain_links_and_detects_tamper() {
        let mut r = relay(TrustModel::Unanimous);
        for i in 0..5u8 {
            r.submit("org-a", "org-c", &[i]).unwrap();
            r.process_batch(1);
        }
        assert_eq!(r.batches().len(), 5);
        assert!(r.verify_chain());
        r.batches[2].root = Hash256::ZERO;
        assert!(!r.verify_chain());
    }

    #[test]
    fn ack_of_unknown_request_errors() {
        let r = relay(TrustModel::Single);
        let ghost = RequestId(hash_parts("x", &[b"ghost"]));
        assert_eq!(r.ack_of(&ghost).unwrap_err(), ArcError::UnknownRequest(ghost));
    }
}
