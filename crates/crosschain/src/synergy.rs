//! SynergyChain [21]: a three-tier multichain data-sharing architecture
//! with hierarchical access control.
//!
//! The paper (§5): *"To address the challenges of achieving unified
//! verification mechanisms for shared data and protecting the privacy of
//! sensitive data owners without permission control, SynergyChain
//! introduces a three-tier architecture … aggregates data in a multichain
//! system to facilitate data sharing among multiple institutions"* and
//! *"reduc[es] data query latency compared to sequentially requesting
//! multichain data."*
//!
//! Tiers here:
//!
//! 1. **data tier** — each institution's own provenance ledger;
//! 2. **aggregation tier** — a shared index chain holding `(keyword →
//!    (chain, record))` catalog entries, so a consumer resolves a query
//!    with one aggregation lookup instead of asking every institution;
//! 3. **access tier** — hierarchical (organization / department / dataset)
//!    grants: access to a node of the hierarchy implies access to its
//!    subtree.

use blockprov_core::{CoreError, LedgerConfig, ProvenanceLedger};
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord, RecordId};
use std::collections::BTreeMap;
use std::fmt;

/// A path in the sharing hierarchy, e.g. `org-a/radiology/ct-2026`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HierPath(pub String);

impl HierPath {
    /// Whether `self` is `other` or an ancestor of `other`.
    pub fn covers(&self, other: &HierPath) -> bool {
        other.0 == self.0 || other.0.starts_with(&format!("{}/", self.0))
    }
}

/// SynergyChain errors.
#[derive(Debug)]
pub enum SynergyError {
    /// Institution index out of range.
    UnknownInstitution(usize),
    /// Consumer lacks a grant covering the dataset's hierarchy path.
    AccessDenied {
        /// The requesting consumer.
        consumer: AccountId,
        /// The dataset path access was requested for.
        path: HierPath,
    },
    /// Ledger failure.
    Core(CoreError),
}

impl fmt::Display for SynergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynergyError::UnknownInstitution(i) => write!(f, "unknown institution {i}"),
            SynergyError::AccessDenied { consumer, path } => {
                write!(f, "{consumer} has no grant covering {}", path.0)
            }
            SynergyError::Core(e) => write!(f, "ledger: {e}"),
        }
    }
}

impl std::error::Error for SynergyError {}

impl From<CoreError> for SynergyError {
    fn from(e: CoreError) -> Self {
        SynergyError::Core(e)
    }
}

#[derive(Debug, Clone)]
struct CatalogEntry {
    institution: usize,
    record: RecordId,
    path: HierPath,
}

/// Result of a catalog-backed query, with the latency comparison the
/// SynergyChain paper reports.
#[derive(Debug, Clone)]
pub struct SynergyQueryReport {
    /// Matching `(institution, record)` pairs.
    pub matches: Vec<(usize, RecordId)>,
    /// Chain accesses via the aggregation tier (1 + distinct data chains hit).
    pub aggregated_accesses: u64,
    /// Chain accesses a sequential multichain sweep would need (all chains).
    pub sequential_accesses: u64,
}

/// The three-tier network.
pub struct SynergyNetwork {
    institutions: Vec<ProvenanceLedger>,
    institution_agents: Vec<AccountId>,
    /// Aggregation tier: its own chain anchoring catalog entries.
    aggregation: ProvenanceLedger,
    aggregation_agent: AccountId,
    catalog: BTreeMap<String, Vec<CatalogEntry>>,
    /// Access tier: consumer → granted hierarchy subtrees.
    grants: BTreeMap<AccountId, Vec<HierPath>>,
}

impl SynergyNetwork {
    /// Create a network of `n` institutions plus the aggregation chain.
    pub fn new(n: usize) -> Self {
        let mut institutions = Vec::with_capacity(n);
        let mut institution_agents = Vec::with_capacity(n);
        for i in 0..n {
            let mut ledger = ProvenanceLedger::open(
                LedgerConfig::private_default().with_domain(Domain::Generic),
            );
            let agent = ledger
                .register_agent(&format!("institution-{i}"))
                .expect("register");
            institutions.push(ledger);
            institution_agents.push(agent);
        }
        let mut aggregation =
            ProvenanceLedger::open(LedgerConfig::consortium(4).with_domain(Domain::Generic));
        let aggregation_agent = aggregation.register_agent("aggregator").expect("register");
        Self {
            institutions,
            institution_agents,
            aggregation,
            aggregation_agent,
            catalog: BTreeMap::new(),
            grants: BTreeMap::new(),
        }
    }

    /// Number of institutions (data-tier chains).
    pub fn n_institutions(&self) -> usize {
        self.institutions.len()
    }

    /// Publish a dataset on an institution's chain and index it in the
    /// aggregation tier under `keyword` at hierarchy `path`.
    pub fn publish(
        &mut self,
        institution: usize,
        keyword: &str,
        path: &str,
        content: &[u8],
    ) -> Result<RecordId, SynergyError> {
        if institution >= self.institutions.len() {
            return Err(SynergyError::UnknownInstitution(institution));
        }
        let agent = self.institution_agents[institution];
        let ledger = &mut self.institutions[institution];
        let ts = ledger.advance_clock();
        let record = ProvenanceRecord::new(path, agent, Action::Create, ts, Domain::Generic)
            .with_field("keyword", keyword)
            .with_field("hier_path", path)
            .with_content(content);
        let rid = ledger.submit_record(record, content)?;
        ledger.seal_block()?;

        // Aggregation-tier catalog entry, anchored on the shared chain.
        let ats = self.aggregation.advance_clock();
        let entry = ProvenanceRecord::new(
            &format!("catalog:{keyword}"),
            self.aggregation_agent,
            Action::Custom("catalog".into()),
            ats,
            Domain::Generic,
        )
        .with_field("institution", &institution.to_string())
        .with_field("record", &rid.to_string())
        .with_field("hier_path", path);
        self.aggregation.submit_record(entry, &[])?;
        self.aggregation.seal_block()?;

        self.catalog
            .entry(keyword.to_string())
            .or_default()
            .push(CatalogEntry {
                institution,
                record: rid,
                path: HierPath(path.to_string()),
            });
        Ok(rid)
    }

    /// Access tier: grant a consumer a hierarchy subtree.
    pub fn grant(&mut self, consumer: AccountId, subtree: &str) {
        self.grants
            .entry(consumer)
            .or_default()
            .push(HierPath(subtree.to_string()));
    }

    /// Revoke all of a consumer's grants under a subtree.
    pub fn revoke(&mut self, consumer: &AccountId, subtree: &str) {
        let prefix = HierPath(subtree.to_string());
        if let Some(grants) = self.grants.get_mut(consumer) {
            grants.retain(|g| !prefix.covers(g));
        }
    }

    fn covered(&self, consumer: &AccountId, path: &HierPath) -> bool {
        self.grants
            .get(consumer)
            .is_some_and(|gs| gs.iter().any(|g| g.covers(path)))
    }

    /// Query by keyword through the aggregation tier, enforcing the
    /// hierarchical grants, and report the latency comparison.
    pub fn query(
        &self,
        consumer: AccountId,
        keyword: &str,
    ) -> Result<SynergyQueryReport, SynergyError> {
        let entries = self.catalog.get(keyword).map_or(&[][..], Vec::as_slice);
        let mut matches = Vec::new();
        let mut chains_hit = std::collections::BTreeSet::new();
        for entry in entries {
            if !self.covered(&consumer, &entry.path) {
                return Err(SynergyError::AccessDenied {
                    consumer,
                    path: entry.path.clone(),
                });
            }
            matches.push((entry.institution, entry.record));
            chains_hit.insert(entry.institution);
        }
        Ok(SynergyQueryReport {
            matches,
            aggregated_accesses: 1 + chains_hit.len() as u64,
            sequential_accesses: self.institutions.len() as u64,
        })
    }

    /// Fetch a shared record body from its institution chain (post-query).
    pub fn fetch(&self, institution: usize, record: &RecordId) -> Option<&ProvenanceRecord> {
        self.institutions.get(institution)?.record(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> (SynergyNetwork, AccountId) {
        let mut net = SynergyNetwork::new(4);
        net.publish(0, "ct-scans", "org-0/radiology/ct", b"scan set A")
            .unwrap();
        net.publish(1, "ct-scans", "org-1/imaging/ct", b"scan set B")
            .unwrap();
        net.publish(2, "lab-results", "org-2/lab/blood", b"panel C")
            .unwrap();
        (net, AccountId::from_name("consumer"))
    }

    #[test]
    fn hierarchical_grants_cover_subtrees() {
        let root = HierPath("org-0".into());
        assert!(root.covers(&HierPath("org-0/radiology/ct".into())));
        assert!(root.covers(&HierPath("org-0".into())));
        assert!(
            !root.covers(&HierPath("org-01/x".into())),
            "prefix must be path-aligned"
        );
        assert!(!root.covers(&HierPath("org-1/a".into())));
    }

    #[test]
    fn aggregated_query_beats_sequential_sweep() {
        let (mut net, consumer) = network();
        net.grant(consumer, "org-0");
        net.grant(consumer, "org-1");
        let report = net.query(consumer, "ct-scans").unwrap();
        assert_eq!(report.matches.len(), 2);
        assert_eq!(report.aggregated_accesses, 3, "1 catalog + 2 data chains");
        assert_eq!(report.sequential_accesses, 4, "sweep asks every chain");
        assert!(report.aggregated_accesses < report.sequential_accesses);
    }

    #[test]
    fn access_control_denies_uncovered_paths() {
        let (mut net, consumer) = network();
        net.grant(consumer, "org-0"); // but not org-1
        assert!(matches!(
            net.query(consumer, "ct-scans"),
            Err(SynergyError::AccessDenied { .. })
        ));
        // Revocation removes access again.
        net.grant(consumer, "org-1");
        net.query(consumer, "ct-scans").unwrap();
        net.revoke(&consumer, "org-1");
        assert!(net.query(consumer, "ct-scans").is_err());
    }

    #[test]
    fn fetch_returns_shared_record() {
        let (mut net, consumer) = network();
        net.grant(consumer, "org-2");
        let report = net.query(consumer, "lab-results").unwrap();
        let (inst, rid) = report.matches[0];
        let record = net.fetch(inst, &rid).unwrap();
        assert_eq!(record.fields["keyword"], "lab-results");
    }

    #[test]
    fn unknown_keyword_is_empty_not_error() {
        let (net, consumer) = network();
        let report = net.query(consumer, "nonexistent").unwrap();
        assert!(report.matches.is_empty());
    }

    #[test]
    fn catalog_and_data_tiers_are_anchored() {
        let (net, _) = network();
        net.aggregation.verify_chain().unwrap();
        for inst in &net.institutions {
            inst.verify_chain().unwrap();
        }
        assert_eq!(
            net.aggregation.chain().height(),
            3,
            "one catalog block per publish"
        );
    }

    #[test]
    fn publish_to_unknown_institution_fails() {
        let (mut net, _) = network();
        assert!(matches!(
            net.publish(9, "k", "p", b""),
            Err(SynergyError::UnknownInstitution(9))
        ));
    }
}
