//! Cross-chain interoperability and provenance (RQ3).
//!
//! The paper's §2.3 lists the mechanism families cross-chain systems build
//! on — notary schemes, hash-locking, atomic swaps, side/relay chains — and
//! §5 surveys the cross-chain *provenance* systems (Vassago [31],
//! ForensiCross [11], SynergyChain [21]). This crate implements one working
//! member of each family:
//!
//! * [`htlc`] — hash time-locked contracts and Herlihy-style atomic swaps
//!   (all-or-nothing across two chains, experiment E8);
//! * [`notary`] — a signature-threshold notary committee attesting
//!   cross-chain events;
//! * [`relay`] — a relay chain holding foreign block headers so light
//!   clients verify foreign transactions by Merkle proof;
//! * [`bridge`] — ForensiCross's BridgeChain: multi-organization
//!   investigation synchronization requiring unanimous validation;
//! * [`vassago`] — Vassago's dependency-chain-guided cross-chain provenance
//!   query, parallel over the relevant shard chains, against the sequential
//!   chain-walk baseline (experiment E6);
//! * [`synergy`] — SynergyChain's three-tier multichain data sharing with
//!   hierarchical access control and catalog-accelerated queries;
//! * [`twolayer`] — InfiniteChain's [37] main/side two-layer organization
//!   with distributed auditing, including its heterogeneous-expansion
//!   limitation;
//! * [`tee`] — the TEE-attested query authenticity the survey proposes as a
//!   Vassago enhancement (simulated attestation trust chain);
//! * [`arc`] — ARC [88]: asynchronous batched relay for consortium chains
//!   with the alternative trust models (and the evaluation) the survey
//!   says ARC lacks;
//! * [`interop`] — the §6.2 "unified solution": one `ChainConnector`
//!   contract over all four mechanism families plus a conformance suite.

pub mod arc;
pub mod bridge;
pub mod htlc;
pub mod interop;
pub mod notary;
pub mod relay;
pub mod synergy;
pub mod tee;
pub mod twolayer;
pub mod vassago;

pub use arc::{ArcRelay, RequestState, TrustModel};
pub use bridge::{Bridge, BridgeError, OrgChain};
pub use htlc::{AssetChain, AtomicSwap, HtlcError, HtlcState, SwapOutcome};
pub use interop::{
    conformance, ChainConnector, ConformanceReport, DeliveryReceipt, InteropMessage,
};
pub use notary::{Attestation, CrossChainEvent, NotaryCommittee};
pub use relay::{RelayChain, RelayError};
pub use synergy::{HierPath, SynergyNetwork, SynergyQueryReport};
pub use tee::{verify_attested, AttestedResult, Enclave, Measurement, Vendor};
pub use twolayer::{AuditReport, SideRecord, TwoLayerError, TwoLayerNetwork};
pub use vassago::{CrossQueryReport, DependencyChain, VassagoNetwork};
