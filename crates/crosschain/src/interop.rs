//! A unified cross-chain interoperability interface — the "unified
//! solution" the survey's future-work section calls for.
//!
//! RQ3's standardization challenge: "structural differences in cross-chain
//! processes designed by various solutions pose standardization challenges,
//! necessitating a unified approach" (§1), and §6.2 asks for "a unified
//! solution that encompasses communication methods, provenance capture, and
//! query mechanisms".
//!
//! This module defines that unified contract as a trait, implements it over
//! every mechanism family the paper lists in §2.3 — notary schemes, relay
//! chains, hash-locking, and anchored side chains — and ships a
//! **conformance suite** that any connector must pass:
//!
//! 1. *delivery* — a transfer yields a receipt the destination can verify;
//! 2. *authenticity* — verification fails for any tampered payload;
//! 3. *provenance capture* — every transfer appends a queryable record;
//! 4. *query* — the provenance log is retrievable by message digest.
//!
//! The conformance suite is exactly the standardization artifact the paper
//! says is missing: one behavioral contract, many mechanisms.

use crate::htlc::AssetChain;
use crate::notary::{Attestation, CrossChainEvent, NotaryCommittee};
use crate::relay::RelayChain;
use crate::twolayer::{SideRecord, TwoLayerNetwork};
use blockprov_crypto::sha256::{hash_parts, Hash256};
use blockprov_ledger::chain::{Chain, ChainConfig, TxInclusionProof};
use blockprov_ledger::tx::{AccountId, Transaction};
use std::fmt;

/// A chain-to-chain message in the unified model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteropMessage {
    /// Source chain label.
    pub source: String,
    /// Destination chain label.
    pub dest: String,
    /// Opaque payload (asset transfer, provenance record, stage sync…).
    pub payload: Vec<u8>,
    /// Sender-chosen uniqueness nonce.
    pub nonce: u64,
}

impl InteropMessage {
    /// Canonical digest of the message.
    pub fn digest(&self) -> Hash256 {
        hash_parts(
            "blockprov-interop-msg",
            &[
                self.source.as_bytes(),
                self.dest.as_bytes(),
                &self.payload,
                &self.nonce.to_le_bytes(),
            ],
        )
    }
}

/// Mechanism-specific delivery evidence.
#[derive(Debug, Clone)]
pub enum DeliveryReceipt {
    /// Threshold attestation by a notary committee.
    Notary(Attestation),
    /// Inclusion proof against a relayed header.
    Relay {
        /// Source chain id registered at the relay.
        chain_id: String,
        /// The proof.
        proof: TxInclusionProof,
    },
    /// Hash-lock claim: revealing the preimage proves delivery.
    Htlc {
        /// Contract id on the destination chain.
        contract: Hash256,
        /// The revealed preimage.
        preimage: Vec<u8>,
    },
    /// Record anchored via a two-layer main chain.
    Anchored {
        /// Side chain the record landed on.
        side: usize,
        /// Side height of the containing block.
        height: u64,
    },
}

/// A captured transfer (the unified provenance record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRecord {
    /// Message digest.
    pub digest: Hash256,
    /// Mechanism that carried it.
    pub mechanism: &'static str,
    /// Monotonic sequence number within the connector.
    pub seq: u64,
}

/// Errors from connectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InteropError {
    /// The mechanism refused the transfer.
    TransferFailed(String),
}

impl fmt::Display for InteropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InteropError::TransferFailed(m) => write!(f, "transfer failed: {m}"),
        }
    }
}

impl std::error::Error for InteropError {}

/// The unified cross-chain contract (§6.2 "unified solution"): one
/// interface over communication, provenance capture and query.
pub trait ChainConnector {
    /// Mechanism family name (paper §2.3 taxonomy).
    fn mechanism(&self) -> &'static str;

    /// Carry `msg` across; returns verifiable delivery evidence.
    fn transfer(&mut self, msg: &InteropMessage) -> Result<DeliveryReceipt, InteropError>;

    /// Destination-side verification of delivery evidence.
    fn verify(&self, msg: &InteropMessage, receipt: &DeliveryReceipt) -> bool;

    /// Captured transfer provenance, oldest first.
    fn transfer_log(&self) -> &[TransferRecord];

    /// Query provenance by message digest (§6.2 query mechanism).
    fn find_transfer(&self, digest: &Hash256) -> Option<&TransferRecord> {
        self.transfer_log().iter().find(|r| r.digest == *digest)
    }
}

// ---------------------------------------------------------------------------
// Notary connector
// ---------------------------------------------------------------------------

/// Notary-scheme connector: a committee attests the message event.
pub struct NotaryConnector {
    committee: NotaryCommittee,
    log: Vec<TransferRecord>,
}

impl NotaryConnector {
    /// Committee of `n` with threshold `t`.
    pub fn new(n: usize, t: usize) -> Self {
        Self { committee: NotaryCommittee::new(n, t), log: Vec::new() }
    }

    /// Committee with an explicit per-member signing capacity
    /// (`2^key_height` attestations) — small heights keep keygen cheap in
    /// short-lived simulations.
    pub fn with_capacity(n: usize, t: usize, key_height: u32) -> Self {
        Self {
            committee: NotaryCommittee::with_prefix_and_capacity("notary", n, t, key_height),
            log: Vec::new(),
        }
    }
}

impl ChainConnector for NotaryConnector {
    fn mechanism(&self) -> &'static str {
        "notary"
    }

    fn transfer(&mut self, msg: &InteropMessage) -> Result<DeliveryReceipt, InteropError> {
        let digest = msg.digest();
        let event = CrossChainEvent {
            chain: msg.source.clone(),
            block: blockprov_ledger::block::BlockHash(digest),
            height: self.log.len() as u64,
            tx: digest,
        };
        let signers: Vec<usize> = (0..self.committee.threshold()).collect();
        let attestation = self.committee.attest(&event, &signers);
        self.log.push(TransferRecord {
            digest,
            mechanism: self.mechanism(),
            seq: self.log.len() as u64,
        });
        Ok(DeliveryReceipt::Notary(attestation))
    }

    fn verify(&self, msg: &InteropMessage, receipt: &DeliveryReceipt) -> bool {
        let DeliveryReceipt::Notary(att) = receipt else { return false };
        att.event.tx == msg.digest()
            && NotaryCommittee::verify(
                self.committee.public_keys(),
                self.committee.threshold(),
                att,
            )
    }

    fn transfer_log(&self) -> &[TransferRecord] {
        &self.log
    }
}

// ---------------------------------------------------------------------------
// Relay connector
// ---------------------------------------------------------------------------

/// Relay-chain connector: the message is a transaction on the source chain;
/// the destination verifies an inclusion proof against the relayed header.
pub struct RelayConnector {
    chain_id: String,
    source: Chain,
    relay: RelayChain,
    sender: AccountId,
    log: Vec<TransferRecord>,
}

impl RelayConnector {
    /// New connector with its own source chain registered at a relay.
    pub fn new(chain_id: &str) -> Self {
        let mut relay = RelayChain::new();
        relay.register_chain(chain_id);
        Self {
            chain_id: chain_id.to_string(),
            source: Chain::new(ChainConfig::default()),
            relay,
            sender: AccountId::from_name("interop-sender"),
            log: Vec::new(),
        }
    }
}

impl ChainConnector for RelayConnector {
    fn mechanism(&self) -> &'static str {
        "relay"
    }

    fn transfer(&mut self, msg: &InteropMessage) -> Result<DeliveryReceipt, InteropError> {
        let digest = msg.digest();
        let seq = self.log.len() as u64;
        let tx = Transaction::new(self.sender, seq, (seq + 1) * 1000, 3, digest.0.to_vec());
        let tx_id = tx.id();
        let block =
            self.source
                .assemble_next((seq + 1) * 1000, self.sender, 0, vec![tx]);
        self.source
            .append(block)
            .map_err(|e| InteropError::TransferFailed(format!("append: {e:?}")))?;
        // Ship the new header to the relay.
        let tip_hash = self.source.tip();
        let header = self.source.block(&tip_hash).expect("tip block").header.clone();
        self.relay
            .submit_header(&self.chain_id, header)
            .map_err(|e| InteropError::TransferFailed(format!("relay: {e}")))?;
        let proof = self
            .source
            .prove_tx(&tx_id)
            .ok_or_else(|| InteropError::TransferFailed("no inclusion proof".into()))?;
        self.log.push(TransferRecord { digest, mechanism: self.mechanism(), seq });
        Ok(DeliveryReceipt::Relay { chain_id: self.chain_id.clone(), proof })
    }

    fn verify(&self, msg: &InteropMessage, receipt: &DeliveryReceipt) -> bool {
        let DeliveryReceipt::Relay { chain_id, proof } = receipt else { return false };
        // The proven transaction must carry this message's digest.
        let expected = Transaction::new(
            self.sender,
            proof.header.height - 1,
            proof.header.height * 1000,
            3,
            msg.digest().0.to_vec(),
        );
        expected.id() == proof.tx_id
            && self.relay.verify_inclusion(chain_id, proof).unwrap_or(false)
    }

    fn transfer_log(&self) -> &[TransferRecord] {
        &self.log
    }
}

// ---------------------------------------------------------------------------
// HTLC connector
// ---------------------------------------------------------------------------

/// Hash-locking connector: delivery is proven by revealing the preimage
/// that claimed the destination-side lock.
pub struct HtlcConnector {
    dest: AssetChain,
    sender: AccountId,
    receiver: AccountId,
    log: Vec<TransferRecord>,
}

impl HtlcConnector {
    /// New connector with a funded destination escrow.
    pub fn new() -> Self {
        let mut dest = AssetChain::new("interop-dest");
        let sender = AccountId::from_name("interop-sender");
        let receiver = AccountId::from_name("interop-receiver");
        dest.mint(sender, 1_000_000);
        Self { dest, sender, receiver, log: Vec::new() }
    }
}

impl Default for HtlcConnector {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainConnector for HtlcConnector {
    fn mechanism(&self) -> &'static str {
        "hash-lock"
    }

    fn transfer(&mut self, msg: &InteropMessage) -> Result<DeliveryReceipt, InteropError> {
        let digest = msg.digest();
        // The preimage binds the lock to this exact message.
        let preimage = hash_parts("blockprov-interop-preimage", &[digest.as_bytes()])
            .0
            .to_vec();
        let hashlock = blockprov_crypto::sha256(&preimage);
        let contract = self
            .dest
            .lock(self.sender, self.receiver, hashlock, 10_000, 1)
            .map_err(|e| InteropError::TransferFailed(format!("lock: {e}")))?;
        self.dest
            .claim(&contract, &preimage)
            .map_err(|e| InteropError::TransferFailed(format!("claim: {e}")))?;
        self.log.push(TransferRecord {
            digest,
            mechanism: self.mechanism(),
            seq: self.log.len() as u64,
        });
        Ok(DeliveryReceipt::Htlc { contract, preimage })
    }

    fn verify(&self, msg: &InteropMessage, receipt: &DeliveryReceipt) -> bool {
        let DeliveryReceipt::Htlc { contract, preimage } = receipt else { return false };
        // Preimage must derive from this message and match the claimed lock.
        let expected =
            hash_parts("blockprov-interop-preimage", &[msg.digest().as_bytes()]).0.to_vec();
        if *preimage != expected {
            return false;
        }
        self.dest.contract(contract).is_some_and(|c| {
            c.hashlock == blockprov_crypto::sha256(preimage)
                && c.state == crate::htlc::HtlcState::Claimed
        })
    }

    fn transfer_log(&self) -> &[TransferRecord] {
        &self.log
    }
}

// ---------------------------------------------------------------------------
// Anchored (two-layer) connector
// ---------------------------------------------------------------------------

/// Side-chain connector: the message is committed on a side chain whose tip
/// is anchored on a main chain; verification replays the distributed audit.
pub struct AnchoredConnector {
    network: TwoLayerNetwork,
    side: usize,
    log: Vec<TransferRecord>,
}

impl AnchoredConnector {
    /// New connector with one side chain.
    pub fn new() -> Self {
        let mut network = TwoLayerNetwork::new();
        let side = network.add_side_chain("interop-v1");
        Self { network, side, log: Vec::new() }
    }
}

impl Default for AnchoredConnector {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainConnector for AnchoredConnector {
    fn mechanism(&self) -> &'static str {
        "anchored-side-chain"
    }

    fn transfer(&mut self, msg: &InteropMessage) -> Result<DeliveryReceipt, InteropError> {
        let digest = msg.digest();
        let record = SideRecord { key: digest.to_string(), value: msg.payload.clone() };
        let height = self
            .network
            .commit_side_block(self.side, vec![record])
            .map_err(|e| InteropError::TransferFailed(format!("commit: {e}")))?;
        self.network.anchor_all();
        self.log.push(TransferRecord {
            digest,
            mechanism: self.mechanism(),
            seq: self.log.len() as u64,
        });
        Ok(DeliveryReceipt::Anchored { side: self.side, height })
    }

    fn verify(&self, msg: &InteropMessage, receipt: &DeliveryReceipt) -> bool {
        let DeliveryReceipt::Anchored { side, height } = receipt else { return false };
        let Ok(report) = self.network.audit(*side, *height) else { return false };
        if !report.passed() {
            return false;
        }
        // The anchored block must contain this exact message.
        self.network
            .side(*side)
            .and_then(|s| s.block(*height))
            .is_some_and(|b| {
                b.records.iter().any(|r| {
                    r.key == msg.digest().to_string() && r.value == msg.payload
                })
            })
    }

    fn transfer_log(&self) -> &[TransferRecord] {
        &self.log
    }
}

// ---------------------------------------------------------------------------
// Conformance suite
// ---------------------------------------------------------------------------

/// Result of running the unified conformance suite against a connector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Mechanism under test.
    pub mechanism: &'static str,
    /// Delivery + verification round trip.
    pub delivery: bool,
    /// Tampered payload rejected.
    pub authenticity: bool,
    /// Provenance captured per transfer.
    pub provenance: bool,
    /// Provenance queryable by digest.
    pub query: bool,
}

impl ConformanceReport {
    /// All conformance checks passed.
    pub fn passed(&self) -> bool {
        self.delivery && self.authenticity && self.provenance && self.query
    }
}

/// Run the unified conformance suite against any connector.
pub fn conformance<C: ChainConnector>(connector: &mut C) -> ConformanceReport {
    let msg = InteropMessage {
        source: "org-a".into(),
        dest: "org-b".into(),
        payload: b"conformance payload".to_vec(),
        nonce: 7,
    };
    let before = connector.transfer_log().len();
    let receipt = connector.transfer(&msg);
    let delivery = receipt
        .as_ref()
        .map(|r| connector.verify(&msg, r))
        .unwrap_or(false);
    let authenticity = receipt
        .as_ref()
        .map(|r| {
            let mut tampered = msg.clone();
            tampered.payload = b"not the payload".to_vec();
            !connector.verify(&tampered, r)
        })
        .unwrap_or(false);
    let provenance = connector.transfer_log().len() == before + 1;
    let query = connector.find_transfer(&msg.digest()).is_some();
    ConformanceReport {
        mechanism: connector.mechanism(),
        delivery,
        authenticity,
        provenance,
        query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(nonce: u64) -> InteropMessage {
        InteropMessage {
            source: "chain-a".into(),
            dest: "chain-b".into(),
            payload: format!("payload-{nonce}").into_bytes(),
            nonce,
        }
    }

    #[test]
    fn notary_connector_conforms() {
        let report = conformance(&mut NotaryConnector::with_capacity(4, 3, 3));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn relay_connector_conforms() {
        let report = conformance(&mut RelayConnector::new("src"));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn htlc_connector_conforms() {
        let report = conformance(&mut HtlcConnector::new());
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn anchored_connector_conforms() {
        let report = conformance(&mut AnchoredConnector::new());
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn receipts_are_not_interchangeable_across_messages() {
        let mut c = NotaryConnector::with_capacity(4, 3, 3);
        let m1 = msg(1);
        let m2 = msg(2);
        let r1 = c.transfer(&m1).unwrap();
        assert!(c.verify(&m1, &r1));
        assert!(!c.verify(&m2, &r1), "receipt bound to its message");
    }

    #[test]
    fn receipts_are_not_interchangeable_across_mechanisms() {
        let mut notary = NotaryConnector::with_capacity(4, 3, 3);
        let mut htlc = HtlcConnector::new();
        let m = msg(5);
        let nr = notary.transfer(&m).unwrap();
        let hr = htlc.transfer(&m).unwrap();
        assert!(!notary.verify(&m, &hr));
        assert!(!htlc.verify(&m, &nr));
    }

    #[test]
    fn transfer_log_is_ordered_and_queryable() {
        let mut c = RelayConnector::new("src");
        for i in 0..5 {
            c.transfer(&msg(i)).unwrap();
        }
        let log = c.transfer_log();
        assert_eq!(log.len(), 5);
        for (i, r) in log.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.mechanism, "relay");
        }
        assert!(c.find_transfer(&msg(3).digest()).is_some());
        assert!(c.find_transfer(&msg(99).digest()).is_none());
    }

    #[test]
    fn all_mechanisms_carry_the_same_message() {
        // The unified interface: one message, four mechanisms.
        let m = msg(42);
        let mut notary = NotaryConnector::with_capacity(4, 3, 3);
        let mut relay = RelayConnector::new("src");
        let mut htlc = HtlcConnector::new();
        let mut anchored = AnchoredConnector::new();
        let rn = notary.transfer(&m).unwrap();
        let rr = relay.transfer(&m).unwrap();
        let rh = htlc.transfer(&m).unwrap();
        let ra = anchored.transfer(&m).unwrap();
        assert!(notary.verify(&m, &rn));
        assert!(relay.verify(&m, &rr));
        assert!(htlc.verify(&m, &rh));
        assert!(anchored.verify(&m, &ra));
    }
}
