//! Vassago [31]: efficient and authenticated provenance queries across
//! multiple blockchains.
//!
//! Vassago's insight: record cross-chain transaction *dependencies* on a
//! dedicated dependency blockchain. A provenance query then (1) reads the
//! dependency chain once to learn which chains hold segments of the asset's
//! history, and (2) queries those chains **in parallel**, verifying each
//! segment with Merkle inclusion proofs against relayed headers. The
//! baseline must instead *walk* the chains sequentially, discovering each
//! hop only from the previous chain's records.
//!
//! Experiment E6 sweeps the hop count: sequential latency grows linearly,
//! Vassago's stays flat at (dependency lookup + one parallel round).

use crate::relay::RelayChain;
use blockprov_core::{CoreError, LedgerConfig, ProvenanceLedger};
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord, RecordId};
use blockprov_provenance::query::ProvQuery;
use std::collections::BTreeMap;
use std::fmt;

/// One dependency entry: "hop `hop` of `asset` lives on `chain` as `record`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// Asset identifier.
    pub asset: String,
    /// Hop index (0 = creation).
    pub hop: u32,
    /// Shard chain index.
    pub chain: usize,
    /// Record on that shard.
    pub record: RecordId,
}

/// The dependency blockchain: an ordered, ledger-anchored log of
/// cross-chain dependencies.
pub struct DependencyChain {
    ledger: ProvenanceLedger,
    agent: AccountId,
    entries: BTreeMap<String, Vec<DepEntry>>,
}

impl Default for DependencyChain {
    fn default() -> Self {
        Self::new()
    }
}

impl DependencyChain {
    /// Create the dependency chain.
    pub fn new() -> Self {
        let mut ledger =
            ProvenanceLedger::open(LedgerConfig::consortium(4).with_domain(Domain::Generic));
        let agent = ledger
            .register_agent("dependency-keeper")
            .expect("register keeper");
        Self {
            ledger,
            agent,
            entries: BTreeMap::new(),
        }
    }

    /// Append a dependency entry (anchored on the dependency ledger).
    pub fn append(&mut self, entry: DepEntry) -> Result<(), CoreError> {
        let ts = self.ledger.advance_clock();
        let record = ProvenanceRecord::new(
            &format!("dep:{}", entry.asset),
            self.agent,
            Action::Custom("dependency".into()),
            ts,
            Domain::Generic,
        )
        .with_field("hop", &entry.hop.to_string())
        .with_field("chain", &entry.chain.to_string())
        .with_field("record", &entry.record.to_string());
        self.ledger.submit_record(record, &[])?;
        self.ledger.seal_block()?;
        self.entries
            .entry(entry.asset.clone())
            .or_default()
            .push(entry);
        Ok(())
    }

    /// All dependencies of an asset, in hop order.
    pub fn dependencies_of(&self, asset: &str) -> &[DepEntry] {
        self.entries.get(asset).map_or(&[], Vec::as_slice)
    }
}

/// Query failure modes.
#[derive(Debug)]
pub enum VassagoError {
    /// Asset has no recorded history.
    UnknownAsset(String),
    /// A shard segment failed authentication.
    AuthenticationFailed {
        /// The failing shard.
        chain: usize,
    },
    /// Ledger failure.
    Core(CoreError),
}

impl fmt::Display for VassagoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VassagoError::UnknownAsset(a) => write!(f, "unknown asset {a}"),
            VassagoError::AuthenticationFailed { chain } => {
                write!(f, "segment from shard {chain} failed verification")
            }
            VassagoError::Core(e) => write!(f, "ledger: {e}"),
        }
    }
}

impl std::error::Error for VassagoError {}

impl From<CoreError> for VassagoError {
    fn from(e: CoreError) -> Self {
        VassagoError::Core(e)
    }
}

/// Result of a cross-chain provenance query (experiment E6 row).
#[derive(Debug, Clone)]
pub struct CrossQueryReport {
    /// The queried asset.
    pub asset: String,
    /// Number of distinct shard chains involved.
    pub chains_involved: usize,
    /// Records retrieved, in hop order.
    pub records: Vec<RecordId>,
    /// Whether every segment authenticated against relayed headers.
    pub authenticated: bool,
    /// Simulated latency of the sequential chain walk (ms).
    pub sequential_latency_ms: u64,
    /// Simulated latency of the Vassago parallel query (ms).
    pub parallel_latency_ms: u64,
    /// Chain round trips issued by the sequential walk.
    pub sequential_accesses: u64,
    /// Chain round trips issued by the parallel query (incl. dep chain).
    pub parallel_accesses: u64,
}

/// A network of shard chains plus the dependency chain and a relay.
pub struct VassagoNetwork {
    shards: Vec<ProvenanceLedger>,
    shard_agents: Vec<AccountId>,
    deps: DependencyChain,
    relay: RelayChain,
    /// Simulated per-round-trip chain access latency (ms).
    pub access_latency_ms: u64,
}

impl VassagoNetwork {
    /// Create `n` shard chains.
    pub fn new(n: usize) -> Self {
        let mut shards = Vec::with_capacity(n);
        let mut shard_agents = Vec::with_capacity(n);
        let mut relay = RelayChain::new();
        for i in 0..n {
            let mut ledger = ProvenanceLedger::open(
                LedgerConfig::private_default().with_domain(Domain::Generic),
            );
            let agent = ledger
                .register_agent(&format!("shard-{i}-operator"))
                .expect("register");
            shards.push(ledger);
            shard_agents.push(agent);
            relay.register_chain(&format!("shard-{i}"));
        }
        Self {
            shards,
            shard_agents,
            deps: DependencyChain::new(),
            relay,
            access_latency_ms: 20,
        }
    }

    /// Number of shard chains.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn record_hop(
        &mut self,
        shard: usize,
        asset: &str,
        hop: u32,
        action: Action,
        prev_chain: Option<usize>,
    ) -> Result<RecordId, VassagoError> {
        let ledger = &mut self.shards[shard];
        let ts = ledger.advance_clock();
        let mut record =
            ProvenanceRecord::new(asset, self.shard_agents[shard], action, ts, Domain::Generic)
                .with_field("hop", &hop.to_string());
        // The sequential walk discovers the previous chain from this field.
        if let Some(prev) = prev_chain {
            record = record.with_field("handoff_from", &prev.to_string());
        }
        let rid = ledger.submit_record(record, &[])?;
        ledger.seal_block()?;
        // Publish the new header to the relay.
        let height = ledger.chain().height();
        let header = ledger.chain().block_at(height).expect("tip").header.clone();
        self.relay
            .submit_header(&format!("shard-{shard}"), header)
            .ok();
        Ok(rid)
    }

    /// Create an asset on a shard (hop 0) and register the dependency.
    pub fn create_asset(&mut self, asset: &str, shard: usize) -> Result<RecordId, VassagoError> {
        // Sync any missing headers first (genesis etc.).
        self.sync_headers(shard);
        let rid = self.record_hop(shard, asset, 0, Action::Create, None)?;
        self.deps.append(DepEntry {
            asset: asset.to_string(),
            hop: 0,
            chain: shard,
            record: rid,
        })?;
        Ok(rid)
    }

    fn sync_headers(&mut self, shard: usize) {
        let id = format!("shard-{shard}");
        let from = self.relay.tip_height(&id).map_or(0, |h| h + 1);
        for height in from..=self.shards[shard].chain().height() {
            let header = self.shards[shard]
                .chain()
                .block_at(height)
                .expect("canonical")
                .header
                .clone();
            let _ = self.relay.submit_header(&id, header);
        }
    }

    /// Transfer an asset to another shard (next hop) with dependency entry.
    pub fn transfer_asset(
        &mut self,
        asset: &str,
        to_shard: usize,
    ) -> Result<RecordId, VassagoError> {
        let history = self.deps.dependencies_of(asset);
        let last = history
            .last()
            .ok_or_else(|| VassagoError::UnknownAsset(asset.to_string()))?
            .clone();
        self.sync_headers(to_shard);
        let rid = self.record_hop(
            to_shard,
            asset,
            last.hop + 1,
            Action::Transfer,
            Some(last.chain),
        )?;
        self.deps.append(DepEntry {
            asset: asset.to_string(),
            hop: last.hop + 1,
            chain: to_shard,
            record: rid,
        })?;
        Ok(rid)
    }

    fn authenticate_segment(&self, shard: usize, record: &RecordId) -> bool {
        let Ok(proof) = self.shards[shard].prove_record(record) else {
            return false;
        };
        self.relay
            .verify_inclusion(&format!("shard-{shard}"), &proof.inclusion)
            .unwrap_or(false)
    }

    /// Execute the cross-chain provenance query both ways and report.
    pub fn trace_asset(&self, asset: &str) -> Result<CrossQueryReport, VassagoError> {
        let deps = self.deps.dependencies_of(asset);
        if deps.is_empty() {
            return Err(VassagoError::UnknownAsset(asset.to_string()));
        }

        // --- Vassago path: one dependency lookup, then parallel fan-out. ---
        let mut records = Vec::with_capacity(deps.len());
        let mut authenticated = true;
        let mut involved: Vec<usize> = Vec::new();
        for dep in deps {
            if !involved.contains(&dep.chain) {
                involved.push(dep.chain);
            }
            records.push(dep.record);
            if !self.authenticate_segment(dep.chain, &dep.record) {
                authenticated = false;
            }
        }
        // Parallel latency: dep-chain lookup + the slowest shard round trip.
        let parallel_latency = self.access_latency_ms + self.access_latency_ms;
        let parallel_accesses = 1 + involved.len() as u64;

        // --- Sequential baseline: walk hops backwards chain by chain. ---
        // The querier starts from the latest hop's chain (that much is
        // public) and discovers each predecessor only from the fetched
        // record, so accesses cannot overlap.
        let mut sequential_accesses = 0u64;
        let mut cursor = deps.last().map(|d| d.chain);
        let mut walked = 0usize;
        while let Some(shard) = cursor {
            sequential_accesses += 1;
            walked += 1;
            // Fetch the record for this hop and read its handoff pointer.
            let dep = &deps[deps.len() - walked];
            let record = self.shards[shard].record(&dep.record);
            cursor = record.and_then(|r| {
                r.fields
                    .get("handoff_from")
                    .and_then(|s| s.parse::<usize>().ok())
            });
        }
        let sequential_latency = sequential_accesses * self.access_latency_ms;

        Ok(CrossQueryReport {
            asset: asset.to_string(),
            chains_involved: involved.len(),
            records,
            authenticated,
            sequential_latency_ms: sequential_latency,
            parallel_latency_ms: parallel_latency,
            sequential_accesses,
            parallel_accesses,
        })
    }

    /// Query history of an asset on one shard (intra-chain component).
    pub fn shard_history(&mut self, shard: usize, asset: &str) -> Vec<RecordId> {
        self.shards[shard]
            .query(&ProvQuery::BySubject(asset.to_string()))
            .ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a network and walk an asset across `hops` chains.
    fn traced(hops: usize) -> (VassagoNetwork, CrossQueryReport) {
        let mut net = VassagoNetwork::new(hops.max(2));
        net.create_asset("shipment-1", 0).unwrap();
        for hop in 1..hops {
            net.transfer_asset("shipment-1", hop % net.n_shards())
                .unwrap();
        }
        let report = net.trace_asset("shipment-1").unwrap();
        (net, report)
    }

    #[test]
    fn trace_collects_all_hops_in_order() {
        let (net, report) = traced(5);
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.chains_involved, 5);
        assert!(report.authenticated, "all segments verified via relay");
        let deps = net.deps.dependencies_of("shipment-1");
        let hops: Vec<u32> = deps.iter().map(|d| d.hop).collect();
        assert_eq!(hops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_latency_flat_sequential_linear() {
        let (_, r3) = traced(3);
        let (_, r9) = traced(9);
        // Sequential grows with hop count…
        assert_eq!(r3.sequential_accesses, 3);
        assert_eq!(r9.sequential_accesses, 9);
        assert!(r9.sequential_latency_ms > r3.sequential_latency_ms * 2);
        // …Vassago's latency does not (1 dep lookup + 1 parallel round).
        assert_eq!(r3.parallel_latency_ms, r9.parallel_latency_ms);
        assert!(r9.parallel_latency_ms < r9.sequential_latency_ms);
    }

    #[test]
    fn unknown_asset_errors() {
        let net = VassagoNetwork::new(2);
        assert!(matches!(
            net.trace_asset("ghost"),
            Err(VassagoError::UnknownAsset(_))
        ));
    }

    #[test]
    fn authentication_detects_missing_relay_data() {
        let mut net = VassagoNetwork::new(3);
        net.create_asset("a", 0).unwrap();
        net.transfer_asset("a", 1).unwrap();
        // Sabotage: rebuild the relay with no headers for shard 1.
        net.relay = {
            let mut fresh = RelayChain::new();
            for i in 0..3 {
                fresh.register_chain(&format!("shard-{i}"));
            }
            fresh
        };
        // Re-sync only shard 0.
        net.sync_headers(0);
        let report = net.trace_asset("a").unwrap();
        assert!(!report.authenticated, "shard-1 segment cannot verify");
    }

    #[test]
    fn dependency_chain_is_anchored() {
        let (net, _) = traced(4);
        // One sealed block per dependency entry.
        assert_eq!(net.deps.ledger.chain().height(), 4);
        net.deps.ledger.verify_chain().unwrap();
    }

    #[test]
    fn shard_history_returns_local_segment() {
        let (mut net, _) = traced(3);
        // Hop 0 lives on shard 0.
        let h0 = net.shard_history(0, "shipment-1");
        assert_eq!(h0.len(), 1);
    }

    #[test]
    fn revisiting_a_chain_counts_once_for_parallel_fanout() {
        // 4 hops over 2 chains: 0 → 1 → 0 → 1.
        let mut net = VassagoNetwork::new(2);
        net.create_asset("x", 0).unwrap();
        net.transfer_asset("x", 1).unwrap();
        net.transfer_asset("x", 0).unwrap();
        net.transfer_asset("x", 1).unwrap();
        let report = net.trace_asset("x").unwrap();
        assert_eq!(report.chains_involved, 2);
        assert_eq!(report.parallel_accesses, 3, "dep chain + 2 shards");
        assert_eq!(report.sequential_accesses, 4, "one walk step per hop");
    }
}
