//! Bloxberg [80]: research-object provenance and reproducibility
//! certification.
//!
//! The surveyed system "introduces a unique provenance model encompassing
//! configuration details, code, and other data specific to scientific
//! software systems", run by a consortium of research institutions that
//! certify results. Reproduction:
//!
//! * a [`ResearchObject`] captures everything a re-run needs to be
//!   comparable: code digest, canonicalized configuration, input digests,
//!   environment tag — plus the produced result digest;
//! * its identity is the digest of all of the above **except** the result,
//!   so two executions of the same computation share an object identity
//!   and their results can be compared;
//! * consortium institutions **certify** an object by independently
//!   re-running it and voting; a threshold of matching results yields a
//!   [`Certificate`] (and a mismatching re-run is recorded — failed
//!   reproduction is a first-class outcome);
//! * verification: anyone holding the certificate and a claimed result
//!   checks both the consortium signature count and the result digest.

use blockprov_crypto::sha256::{hash_parts, sha256, Hash256};
use std::collections::BTreeMap;
use std::fmt;

/// A research object: the reproducibility unit of Bloxberg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResearchObject {
    /// Digest of the exact code (source tree / container image).
    pub code_digest: Hash256,
    /// Canonicalized configuration (sorted key → value).
    pub config: BTreeMap<String, String>,
    /// Digests of every input dataset.
    pub input_digests: Vec<Hash256>,
    /// Environment tag (toolchain, OS image…).
    pub environment: String,
    /// Digest of the produced result.
    pub result_digest: Hash256,
}

impl ResearchObject {
    /// Build an object from raw artifacts.
    pub fn from_artifacts(
        code: &[u8],
        config: &[(&str, &str)],
        inputs: &[&[u8]],
        environment: &str,
        result: &[u8],
    ) -> Self {
        Self {
            code_digest: sha256(code),
            config: config
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            input_digests: inputs.iter().map(|i| sha256(i)).collect(),
            environment: environment.to_string(),
            result_digest: sha256(result),
        }
    }

    /// The computation identity: code + config + inputs + environment,
    /// *excluding* the result — re-runs of the same computation share it.
    pub fn computation_id(&self) -> Hash256 {
        let mut parts: Vec<Vec<u8>> = vec![self.code_digest.0.to_vec()];
        for (k, v) in &self.config {
            let mut row = Vec::with_capacity(k.len() + v.len() + 16);
            row.extend_from_slice(&(k.len() as u64).to_le_bytes());
            row.extend_from_slice(k.as_bytes());
            row.extend_from_slice(v.as_bytes());
            parts.push(row);
        }
        for d in &self.input_digests {
            parts.push(d.0.to_vec());
        }
        parts.push(self.environment.as_bytes().to_vec());
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        hash_parts("blockprov-bloxberg-computation", &refs)
    }
}

/// One institution's re-run verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// Voting institution.
    pub institution: String,
    /// Result digest the institution obtained.
    pub obtained: Hash256,
    /// Whether it matched the claimed result.
    pub matched: bool,
}

/// A consortium reproducibility certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certified computation.
    pub computation: Hash256,
    /// The certified result digest.
    pub result: Hash256,
    /// Institutions whose re-runs matched.
    pub endorsers: Vec<String>,
    /// Certificate digest (what goes on chain).
    pub digest: Hash256,
}

/// Errors from the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BloxbergError {
    /// Computation not registered.
    UnknownComputation(Hash256),
    /// Institution is not a consortium member.
    UnknownInstitution(String),
    /// Institution already endorsed this computation.
    DuplicateEndorsement(String),
    /// Not enough matching endorsements yet.
    ThresholdNotMet {
        /// Matching endorsements so far.
        have: usize,
        /// Matching endorsements needed.
        need: usize,
    },
}

impl fmt::Display for BloxbergError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BloxbergError::UnknownComputation(c) => write!(f, "unknown computation {c}"),
            BloxbergError::UnknownInstitution(i) => write!(f, "unknown institution {i:?}"),
            BloxbergError::DuplicateEndorsement(i) => {
                write!(f, "institution {i:?} already endorsed")
            }
            BloxbergError::ThresholdNotMet { have, need } => {
                write!(f, "only {have}/{need} matching endorsements")
            }
        }
    }
}

impl std::error::Error for BloxbergError {}

struct Registered {
    object: ResearchObject,
    endorsements: Vec<Endorsement>,
}

/// The consortium registry of research objects.
pub struct BloxbergRegistry {
    institutions: Vec<String>,
    threshold: usize,
    objects: BTreeMap<Hash256, Registered>,
}

impl fmt::Debug for BloxbergRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloxbergRegistry")
            .field("institutions", &self.institutions.len())
            .field("objects", &self.objects.len())
            .finish_non_exhaustive()
    }
}

impl BloxbergRegistry {
    /// A consortium of `institutions` requiring `threshold` matching
    /// re-runs for certification.
    pub fn new(institutions: &[&str], threshold: usize) -> Self {
        Self {
            institutions: institutions.iter().map(|s| s.to_string()).collect(),
            threshold: threshold.max(1),
            objects: BTreeMap::new(),
        }
    }

    /// Register a research object; returns its computation id.
    pub fn register(&mut self, object: ResearchObject) -> Hash256 {
        let id = object.computation_id();
        self.objects
            .entry(id)
            .or_insert(Registered { object, endorsements: Vec::new() });
        id
    }

    /// The registered object for a computation.
    pub fn object(&self, computation: &Hash256) -> Option<&ResearchObject> {
        self.objects.get(computation).map(|r| &r.object)
    }

    /// An institution submits its re-run result for a computation.
    pub fn endorse(
        &mut self,
        computation: &Hash256,
        institution: &str,
        obtained_result: &[u8],
    ) -> Result<&Endorsement, BloxbergError> {
        if !self.institutions.iter().any(|i| i == institution) {
            return Err(BloxbergError::UnknownInstitution(institution.to_string()));
        }
        let reg = self
            .objects
            .get_mut(computation)
            .ok_or(BloxbergError::UnknownComputation(*computation))?;
        if reg.endorsements.iter().any(|e| e.institution == institution) {
            return Err(BloxbergError::DuplicateEndorsement(institution.to_string()));
        }
        let obtained = sha256(obtained_result);
        let matched = obtained == reg.object.result_digest;
        reg.endorsements.push(Endorsement {
            institution: institution.to_string(),
            obtained,
            matched,
        });
        Ok(reg.endorsements.last().expect("just pushed"))
    }

    /// All endorsements for a computation.
    pub fn endorsements(&self, computation: &Hash256) -> &[Endorsement] {
        self.objects
            .get(computation)
            .map(|r| r.endorsements.as_slice())
            .unwrap_or(&[])
    }

    /// Issue a certificate once the matching-endorsement threshold is met.
    pub fn certify(&self, computation: &Hash256) -> Result<Certificate, BloxbergError> {
        let reg = self
            .objects
            .get(computation)
            .ok_or(BloxbergError::UnknownComputation(*computation))?;
        let endorsers: Vec<String> = reg
            .endorsements
            .iter()
            .filter(|e| e.matched)
            .map(|e| e.institution.clone())
            .collect();
        if endorsers.len() < self.threshold {
            return Err(BloxbergError::ThresholdNotMet {
                have: endorsers.len(),
                need: self.threshold,
            });
        }
        let mut parts: Vec<Vec<u8>> =
            vec![computation.0.to_vec(), reg.object.result_digest.0.to_vec()];
        for e in &endorsers {
            parts.push(e.as_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        Ok(Certificate {
            computation: *computation,
            result: reg.object.result_digest,
            endorsers,
            digest: hash_parts("blockprov-bloxberg-cert", &refs),
        })
    }

    /// Verify a claimed result against a certificate.
    pub fn verify_result(cert: &Certificate, claimed_result: &[u8]) -> bool {
        sha256(claimed_result) == cert.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(result: &[u8]) -> ResearchObject {
        ResearchObject::from_artifacts(
            b"fn main() { simulate(); }",
            &[("steps", "1000"), ("dt", "0.01")],
            &[b"dataset-a", b"dataset-b"],
            "rust-1.95/linux",
            result,
        )
    }

    fn consortium() -> BloxbergRegistry {
        BloxbergRegistry::new(&["mpg", "eth", "cnrs", "csail"], 3)
    }

    #[test]
    fn same_computation_same_id_results_differ() {
        let a = object(b"result-x");
        let b = object(b"result-y");
        assert_eq!(a.computation_id(), b.computation_id());
        assert_ne!(a.result_digest, b.result_digest);
    }

    #[test]
    fn config_change_changes_identity() {
        let a = object(b"r");
        let mut b = object(b"r");
        b.config.insert("dt".into(), "0.02".into());
        assert_ne!(a.computation_id(), b.computation_id());
    }

    #[test]
    fn certification_after_threshold_matching_reruns() {
        let mut reg = consortium();
        let id = reg.register(object(b"the result"));
        reg.endorse(&id, "mpg", b"the result").unwrap();
        reg.endorse(&id, "eth", b"the result").unwrap();
        assert!(matches!(
            reg.certify(&id),
            Err(BloxbergError::ThresholdNotMet { have: 2, need: 3 })
        ));
        reg.endorse(&id, "cnrs", b"the result").unwrap();
        let cert = reg.certify(&id).unwrap();
        assert_eq!(cert.endorsers.len(), 3);
        assert!(BloxbergRegistry::verify_result(&cert, b"the result"));
        assert!(!BloxbergRegistry::verify_result(&cert, b"fabricated"));
    }

    #[test]
    fn failed_reproduction_is_recorded_and_blocks_certification() {
        let mut reg = consortium();
        let id = reg.register(object(b"claimed"));
        reg.endorse(&id, "mpg", b"claimed").unwrap();
        let e = reg.endorse(&id, "eth", b"different output").unwrap();
        assert!(!e.matched, "mismatching re-run is recorded, not hidden");
        reg.endorse(&id, "cnrs", b"another output").unwrap();
        assert!(matches!(
            reg.certify(&id),
            Err(BloxbergError::ThresholdNotMet { have: 1, need: 3 })
        ));
        assert_eq!(reg.endorsements(&id).len(), 3);
    }

    #[test]
    fn outsiders_and_double_votes_rejected() {
        let mut reg = consortium();
        let id = reg.register(object(b"r"));
        assert_eq!(
            reg.endorse(&id, "paper-mill", b"r").unwrap_err(),
            BloxbergError::UnknownInstitution("paper-mill".into())
        );
        reg.endorse(&id, "mpg", b"r").unwrap();
        assert_eq!(
            reg.endorse(&id, "mpg", b"r").unwrap_err(),
            BloxbergError::DuplicateEndorsement("mpg".into())
        );
    }

    #[test]
    fn unknown_computation_errors() {
        let mut reg = consortium();
        let ghost = sha256(b"never registered");
        assert_eq!(
            reg.endorse(&ghost, "mpg", b"r").unwrap_err(),
            BloxbergError::UnknownComputation(ghost)
        );
        assert!(matches!(
            reg.certify(&ghost),
            Err(BloxbergError::UnknownComputation(_))
        ));
    }

    #[test]
    fn registering_twice_is_idempotent() {
        let mut reg = consortium();
        let id1 = reg.register(object(b"r"));
        let id2 = reg.register(object(b"r"));
        assert_eq!(id1, id2);
        reg.endorse(&id1, "mpg", b"r").unwrap();
        assert_eq!(reg.endorsements(&id2).len(), 1);
    }
}
