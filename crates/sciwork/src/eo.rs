//! Earth-observation data management — the Zhang et al. [87] reproduction.
//!
//! The surveyed system manages petabyte-scale EO archives with three parts:
//! *users* upload datasets to *data centers*, which store payloads off-chain
//! and record essential information on a consortium *blockchain* whose
//! transactions form a **Directed Acyclic Graph**, "enabling efficient
//! traceability, enhancing scalability and interoperability".
//!
//! This module reproduces that architecture:
//!
//! * Off-chain payloads live in a replicated [`Swarm`]
//!   (the data centers' shared storage; see `blockprov-storage`);
//! * each on-chain [`EoTx`] carries the payload's content identifier and
//!   digest plus **parent edges** to the transactions it derives from
//!   (ingest → processing levels → distribution), forming the DAG;
//! * periodic [`EoNetwork::anchor`] checkpoints hash-chain the DAG frontier,
//!   standing in for the consortium's Raft/PBFT rounds (the consensus
//!   throughput/latency claims are measured separately in experiment E1);
//! * [`EoNetwork::trace`] answers provenance queries by walking parent
//!   edges — `records_examined` grows with lineage *depth*, while the
//!   [`EoNetwork::trace_by_scan`] baseline (a ledger without DAG links)
//!   re-scans the whole transaction list per hop. The gap between the two
//!   is the paper's "efficient traceability" claim (experiment E15).

use blockprov_crypto::sha256::{hash_parts, sha256, Hash256};
use blockprov_storage::{add_file, cat, Chunker, Cid, Swarm};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Transaction identifier: digest of the transaction's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EoTxId(pub Hash256);

impl fmt::Display for EoTxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eotx:{}", self.0)
    }
}

/// What an EO transaction records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EoTxKind {
    /// A new raw scene entering the archive (no parents).
    Ingest,
    /// A derived product (has ≥1 parents: its inputs).
    Process,
    /// Delivery of a product to a consumer (1 parent).
    Distribute,
}

/// An on-chain EO transaction: essential information only, payload
/// off-chain behind `cid`.
#[derive(Debug, Clone)]
pub struct EoTx {
    /// Identifier (content digest).
    pub id: EoTxId,
    /// Transaction kind.
    pub kind: EoTxKind,
    /// Parent transactions this one derives from (the DAG edges).
    pub parents: Vec<EoTxId>,
    /// Product name (e.g. "S2A-L1C-tile-33UVP").
    pub name: String,
    /// Submitting data center.
    pub center: String,
    /// Content identifier of the off-chain payload.
    pub cid: Cid,
    /// SHA-256 of the raw payload (end-to-end integrity check).
    pub payload_digest: Hash256,
    /// Payload size in bytes.
    pub payload_bytes: u64,
    /// Logical timestamp (submission order).
    pub seq: u64,
}

/// A consortium checkpoint over a batch of DAG transactions.
#[derive(Debug, Clone)]
pub struct AnchorBlock {
    /// Height of this anchor.
    pub height: u64,
    /// Hash of the previous anchor.
    pub prev: Hash256,
    /// Digest over the anchored transaction ids (in order).
    pub batch_root: Hash256,
    /// Number of transactions anchored.
    pub count: usize,
    /// This anchor's hash.
    pub hash: Hash256,
}

/// Result of a traceability query.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The queried product.
    pub subject: EoTxId,
    /// Every ancestor transaction, nearest first.
    pub lineage: Vec<EoTxId>,
    /// Longest parent-path length to a raw ingest.
    pub depth: usize,
    /// Transaction records examined to assemble the answer (the cost
    /// metric: DAG traversal touches ancestors only; the scan baseline
    /// touches the whole ledger per hop).
    pub records_examined: u64,
}

/// Errors from the EO network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EoError {
    /// Referenced parent transaction does not exist.
    UnknownParent(EoTxId),
    /// Referenced transaction does not exist.
    UnknownTx(EoTxId),
    /// Kind/parents mismatch (e.g. Process with no parents).
    BadShape(&'static str),
    /// Off-chain payload unavailable or corrupted.
    PayloadUnavailable(EoTxId),
    /// Payload bytes do not match the on-chain digest.
    PayloadTampered(EoTxId),
}

impl fmt::Display for EoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EoError::UnknownParent(t) => write!(f, "unknown parent {t}"),
            EoError::UnknownTx(t) => write!(f, "unknown transaction {t}"),
            EoError::BadShape(m) => write!(f, "malformed transaction: {m}"),
            EoError::PayloadUnavailable(t) => write!(f, "payload for {t} unavailable"),
            EoError::PayloadTampered(t) => write!(f, "payload for {t} fails digest check"),
        }
    }
}

impl std::error::Error for EoError {}

/// The EO data-management network: data centers sharing a replicated
/// off-chain store plus the on-chain transaction DAG.
pub struct EoNetwork {
    swarm: Swarm,
    chunker: Chunker,
    txs: Vec<EoTx>,
    index: HashMap<EoTxId, usize>,
    children: HashMap<EoTxId, Vec<EoTxId>>,
    anchors: Vec<AnchorBlock>,
    anchored_upto: usize,
    seq: u64,
}

impl fmt::Debug for EoNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EoNetwork")
            .field("txs", &self.txs.len())
            .field("anchors", &self.anchors.len())
            .finish_non_exhaustive()
    }
}

impl EoNetwork {
    /// A network of `centers` data centers replicating every payload onto
    /// `replication` of them.
    pub fn new(centers: usize, replication: usize) -> Self {
        Self {
            swarm: Swarm::new(centers.max(1), replication.max(1)),
            chunker: Chunker::ContentDefined(4096),
            txs: Vec::new(),
            index: HashMap::new(),
            children: HashMap::new(),
            anchors: Vec::new(),
            anchored_upto: 0,
            seq: 0,
        }
    }

    fn admit(
        &mut self,
        kind: EoTxKind,
        parents: Vec<EoTxId>,
        name: &str,
        center: &str,
        payload: &[u8],
    ) -> Result<EoTxId, EoError> {
        match kind {
            EoTxKind::Ingest if !parents.is_empty() => {
                return Err(EoError::BadShape("ingest must have no parents"))
            }
            EoTxKind::Process if parents.is_empty() => {
                return Err(EoError::BadShape("process needs at least one parent"))
            }
            EoTxKind::Distribute if parents.len() != 1 => {
                return Err(EoError::BadShape("distribute needs exactly one parent"))
            }
            _ => {}
        }
        for p in &parents {
            if !self.index.contains_key(p) {
                return Err(EoError::UnknownParent(*p));
            }
        }
        let cid = add_file(&mut self.swarm, payload, self.chunker, 8);
        let payload_digest = sha256(payload);
        let seq = self.seq;
        self.seq += 1;
        let mut parts: Vec<&[u8]> = vec![name.as_bytes(), center.as_bytes()];
        let parent_bytes: Vec<[u8; 32]> = parents.iter().map(|p| p.0 .0).collect();
        for pb in &parent_bytes {
            parts.push(pb);
        }
        let digest_bytes = payload_digest.0;
        let seq_bytes = seq.to_le_bytes();
        parts.push(&digest_bytes);
        parts.push(&seq_bytes);
        let id = EoTxId(hash_parts("blockprov-eo-tx", &parts));
        let tx = EoTx {
            id,
            kind,
            parents: parents.clone(),
            name: name.to_string(),
            center: center.to_string(),
            cid,
            payload_digest,
            payload_bytes: payload.len() as u64,
            seq,
        };
        self.index.insert(id, self.txs.len());
        for p in parents {
            self.children.entry(p).or_default().push(id);
        }
        self.txs.push(tx);
        Ok(id)
    }

    /// A data center ingests a raw scene.
    pub fn ingest(&mut self, center: &str, name: &str, payload: &[u8]) -> Result<EoTxId, EoError> {
        self.admit(EoTxKind::Ingest, Vec::new(), name, center, payload)
    }

    /// Record a derived product (processing step) with its input products.
    pub fn process(
        &mut self,
        center: &str,
        name: &str,
        parents: &[EoTxId],
        payload: &[u8],
    ) -> Result<EoTxId, EoError> {
        self.admit(EoTxKind::Process, parents.to_vec(), name, center, payload)
    }

    /// Record distribution of a product to a consumer.
    pub fn distribute(
        &mut self,
        center: &str,
        product: EoTxId,
        recipient: &str,
    ) -> Result<EoTxId, EoError> {
        let name = format!("distribution→{recipient}");
        self.admit(EoTxKind::Distribute, vec![product], &name, center, &[])
    }

    /// Look up a transaction.
    pub fn tx(&self, id: &EoTxId) -> Option<&EoTx> {
        self.index.get(id).map(|&i| &self.txs[i])
    }

    /// Downstream transactions deriving from `id`.
    pub fn children_of(&self, id: &EoTxId) -> &[EoTxId] {
        self.children.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Seal every not-yet-anchored transaction into a hash-chained
    /// consortium checkpoint. Returns the new anchor (None if nothing new).
    pub fn anchor(&mut self) -> Option<&AnchorBlock> {
        if self.anchored_upto == self.txs.len() {
            return None;
        }
        let batch = &self.txs[self.anchored_upto..];
        let id_bytes: Vec<[u8; 32]> = batch.iter().map(|t| t.id.0 .0).collect();
        let parts: Vec<&[u8]> = id_bytes.iter().map(|b| b.as_slice()).collect();
        let batch_root = hash_parts("blockprov-eo-anchor-batch", &parts);
        let prev = self.anchors.last().map(|a| a.hash).unwrap_or(Hash256::ZERO);
        let height = self.anchors.len() as u64;
        let hash = hash_parts(
            "blockprov-eo-anchor",
            &[&height.to_le_bytes(), prev.as_bytes(), batch_root.as_bytes()],
        );
        self.anchors.push(AnchorBlock {
            height,
            prev,
            batch_root,
            count: batch.len(),
            hash,
        });
        self.anchored_upto = self.txs.len();
        self.anchors.last()
    }

    /// The anchor chain.
    pub fn anchors(&self) -> &[AnchorBlock] {
        &self.anchors
    }

    /// Verify the anchor chain's hash linkage.
    pub fn verify_anchors(&self) -> bool {
        let mut prev = Hash256::ZERO;
        for a in &self.anchors {
            let expect = hash_parts(
                "blockprov-eo-anchor",
                &[&a.height.to_le_bytes(), prev.as_bytes(), a.batch_root.as_bytes()],
            );
            if a.prev != prev || a.hash != expect {
                return false;
            }
            prev = a.hash;
        }
        true
    }

    /// DAG traceability: breadth-first walk of parent edges from `subject`
    /// back to raw ingests. Cost is proportional to the ancestor set.
    pub fn trace(&self, subject: EoTxId) -> Result<TraceReport, EoError> {
        if !self.index.contains_key(&subject) {
            return Err(EoError::UnknownTx(subject));
        }
        let mut seen: HashSet<EoTxId> = HashSet::new();
        let mut lineage = Vec::new();
        let mut examined = 0u64;
        let mut depth = 0usize;
        let mut frontier = VecDeque::new();
        frontier.push_back((subject, 0usize));
        seen.insert(subject);
        while let Some((id, d)) = frontier.pop_front() {
            let tx = &self.txs[self.index[&id]];
            examined += 1;
            depth = depth.max(d);
            if id != subject {
                lineage.push(id);
            }
            for p in &tx.parents {
                if seen.insert(*p) {
                    frontier.push_back((*p, d + 1));
                }
            }
        }
        Ok(TraceReport { subject, lineage, depth, records_examined: examined })
    }

    /// Baseline traceability on a ledger *without* DAG edges: every hop must
    /// rediscover its parents by scanning the full transaction list (what a
    /// linear chain of opaque transactions forces). Produces the same
    /// lineage with `records_examined ≈ hops × ledger size`.
    pub fn trace_by_scan(&self, subject: EoTxId) -> Result<TraceReport, EoError> {
        if !self.index.contains_key(&subject) {
            return Err(EoError::UnknownTx(subject));
        }
        let mut seen: HashSet<EoTxId> = HashSet::new();
        let mut lineage = Vec::new();
        let mut examined = 0u64;
        let mut depth = 0usize;
        let mut frontier = VecDeque::new();
        frontier.push_back((subject, 0usize));
        seen.insert(subject);
        while let Some((id, d)) = frontier.pop_front() {
            // The scan: walk the whole ledger looking for this tx.
            let mut found: Option<&EoTx> = None;
            for tx in &self.txs {
                examined += 1;
                if tx.id == id {
                    found = Some(tx);
                    break;
                }
            }
            let tx = found.expect("id verified present");
            depth = depth.max(d);
            if id != subject {
                lineage.push(id);
            }
            for p in &tx.parents {
                if seen.insert(*p) {
                    frontier.push_back((*p, d + 1));
                }
            }
        }
        Ok(TraceReport { subject, lineage, depth, records_examined: examined })
    }

    /// Fetch a payload from the data centers and verify it against the
    /// on-chain digest.
    pub fn fetch_verified(&self, id: &EoTxId) -> Result<Vec<u8>, EoError> {
        let tx = self.tx(id).ok_or(EoError::UnknownTx(*id))?;
        let bytes = cat(&self.swarm, &tx.cid).map_err(|_| EoError::PayloadUnavailable(*id))?;
        if sha256(&bytes) != tx.payload_digest {
            return Err(EoError::PayloadTampered(*id));
        }
        Ok(bytes)
    }

    /// Simulate a data-center outage.
    pub fn fail_center(&mut self, index: usize) -> bool {
        self.swarm.fail_peer(index)
    }

    /// Restore a failed data center.
    pub fn recover_center(&mut self, index: usize) -> bool {
        self.swarm.recover_peer(index)
    }

    /// Direct access to the shared off-chain store (benches).
    pub fn swarm(&self) -> &Swarm {
        &self.swarm
    }

    /// Build a synthetic processing pipeline for benches/tests: one raw
    /// scene, then a chain of `levels` derived products, returning the final
    /// product id. Payload sizes shrink per level like real EO pipelines
    /// (L0 raw is the biggest).
    pub fn synthetic_pipeline(
        &mut self,
        center: &str,
        scene: &str,
        levels: usize,
        raw_bytes: usize,
    ) -> Result<EoTxId, EoError> {
        let raw: Vec<u8> = (0..raw_bytes).map(|i| (i as u8).wrapping_mul(31)).collect();
        let mut head = self.ingest(center, &format!("{scene}-L0"), &raw)?;
        for level in 1..=levels {
            let product: Vec<u8> = (0..(raw_bytes / (level + 1)).max(16))
                .map(|i| (i as u8).wrapping_add(level as u8))
                .collect();
            head = self.process(center, &format!("{scene}-L{level}"), &[head], &product)?;
        }
        Ok(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> EoNetwork {
        EoNetwork::new(4, 2)
    }

    #[test]
    fn ingest_process_distribute_flow() {
        let mut n = net();
        let raw = n.ingest("dc-eu", "S2A-raw", b"raw scene bytes").unwrap();
        let l1 = n.process("dc-eu", "S2A-L1C", &[raw], b"radiometric").unwrap();
        let l2 = n.process("dc-us", "S2A-L2A", &[l1], b"atmospheric").unwrap();
        let d = n.distribute("dc-us", l2, "uni-lab").unwrap();
        assert_eq!(n.len(), 4);
        assert_eq!(n.tx(&d).unwrap().parents, vec![l2]);
        assert_eq!(n.children_of(&raw), &[l1]);
    }

    #[test]
    fn shape_rules_enforced() {
        let mut n = net();
        let raw = n.ingest("dc", "scene", b"x").unwrap();
        assert_eq!(
            n.process("dc", "derived", &[], b"y").unwrap_err(),
            EoError::BadShape("process needs at least one parent")
        );
        let ghost = EoTxId(sha256(b"ghost"));
        assert_eq!(n.process("dc", "p", &[ghost], b"y").unwrap_err(), EoError::UnknownParent(ghost));
        let _ = raw;
    }

    #[test]
    fn trace_collects_full_lineage() {
        let mut n = net();
        let a = n.ingest("dc", "a", b"a").unwrap();
        let b = n.ingest("dc", "b", b"b").unwrap();
        let merged = n.process("dc", "mosaic", &[a, b], b"ab").unwrap();
        let refined = n.process("dc", "refined", &[merged], b"r").unwrap();
        let report = n.trace(refined).unwrap();
        assert_eq!(report.depth, 2);
        let set: HashSet<_> = report.lineage.iter().copied().collect();
        assert_eq!(set, HashSet::from([a, b, merged]));
    }

    #[test]
    fn dag_trace_examines_far_fewer_records_than_scan() {
        let mut n = net();
        // Bulk unrelated traffic to make the ledger big.
        for i in 0..200 {
            n.ingest("dc-noise", &format!("noise-{i}"), &[i as u8]).unwrap();
        }
        let head = n.synthetic_pipeline("dc", "scene", 8, 1024).unwrap();
        let dag = n.trace(head).unwrap();
        let scan = n.trace_by_scan(head).unwrap();
        assert_eq!(dag.lineage.len(), scan.lineage.len(), "same answer");
        assert_eq!(dag.records_examined, 9, "subject + 8 ancestors");
        assert!(
            scan.records_examined > dag.records_examined * 10,
            "scan {} vs dag {}",
            scan.records_examined,
            dag.records_examined
        );
    }

    #[test]
    fn anchors_chain_and_verify() {
        let mut n = net();
        n.ingest("dc", "one", b"1").unwrap();
        let a1 = n.anchor().unwrap().hash;
        assert!(n.anchor().is_none(), "nothing new to anchor");
        n.ingest("dc", "two", b"2").unwrap();
        n.ingest("dc", "three", b"3").unwrap();
        let a2 = n.anchor().unwrap().clone();
        assert_eq!(a2.prev, a1);
        assert_eq!(a2.count, 2);
        assert!(n.verify_anchors());
    }

    #[test]
    fn payload_round_trip_and_digest_check() {
        let mut n = net();
        let id = n.ingest("dc", "scene", b"precious pixels").unwrap();
        assert_eq!(n.fetch_verified(&id).unwrap(), b"precious pixels");
    }

    #[test]
    fn payload_survives_single_center_outage() {
        let mut n = net();
        let id = n.ingest("dc", "scene", &[7u8; 5000]).unwrap();
        n.fail_center(0);
        assert_eq!(n.fetch_verified(&id).unwrap(), vec![7u8; 5000]);
    }

    #[test]
    fn payload_unavailable_after_total_outage() {
        let mut n = net();
        let id = n.ingest("dc", "scene", &[9u8; 100]).unwrap();
        for c in 0..4 {
            n.fail_center(c);
        }
        assert_eq!(n.fetch_verified(&id).unwrap_err(), EoError::PayloadUnavailable(id));
        n.recover_center(1);
        // Whether this particular center held a replica is placement-
        // dependent; recovering all centers always restores availability.
        for c in 0..4 {
            n.recover_center(c);
        }
        assert!(n.fetch_verified(&id).is_ok());
    }

    #[test]
    fn trace_unknown_tx_errors() {
        let n = net();
        let ghost = EoTxId(sha256(b"nope"));
        assert_eq!(n.trace(ghost).unwrap_err(), EoError::UnknownTx(ghost));
    }

    #[test]
    fn on_chain_footprint_is_digests_not_payloads() {
        let mut n = net();
        let big = vec![0xABu8; 1 << 16];
        let id = n.ingest("dc", "big-scene", &big).unwrap();
        let tx = n.tx(&id).unwrap();
        // The on-chain record holds two 32-byte digests + metadata, not the
        // 64 KiB payload.
        assert_eq!(tx.payload_bytes, 1 << 16);
        assert_eq!(tx.cid.0.as_bytes().len(), 32);
    }
}
