//! Scientific workflow provenance — the SciLedger [36] / SciBlock [28]
//! reproduction.
//!
//! SciLedger stores scientific workflow provenance on a blockchain and adds
//! what earlier systems (BlockFlow [22], SmartProvenance [63]) lacked:
//! support for *multiple concurrent workflows*, *complex operations*
//! (branching and merging task graphs) and an *invalidation mechanism* so a
//! flawed task can be retracted together with every result derived from it
//! after the flaw — SciBlock's timestamp rule. Re-execution then rebuilds
//! the invalidated portion as new task versions.
//!
//! The workflow lifecycle (the paper's Figure 4, after Ludäscher et al.
//! [50]) is modeled by [`Lifecycle`]: compose → publish → execute → analyze
//! → (invalidate / re-execute) — experiment F4 walks it end to end.

pub mod bloxberg;
pub mod eo;

use blockprov_core::{CoreError, LedgerConfig, ProvenanceLedger};
use blockprov_crypto::sha256::hash_parts;
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord, RecordId};
use blockprov_provenance::query::ProvQuery;
use std::collections::BTreeMap;
use std::fmt;

/// Workflow identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkflowId(pub u64);

/// Task identifier (unique across workflows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Task lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Declared but not yet run.
    Planned,
    /// Ran and produced output.
    Executed,
    /// Retracted by an invalidation.
    Invalidated,
}

/// A task node in a workflow DAG.
#[derive(Debug, Clone)]
pub struct Task {
    /// Identifier.
    pub id: TaskId,
    /// Owning workflow.
    pub workflow: WorkflowId,
    /// Human-readable operation name.
    pub name: String,
    /// Upstream dependencies.
    pub inputs: Vec<TaskId>,
    /// State.
    pub status: TaskStatus,
    /// Version (bumped by re-execution).
    pub version: u32,
    /// Record anchoring the execution, if executed.
    pub execution_record: Option<RecordId>,
    /// Executing agent, if executed.
    pub executed_by: Option<AccountId>,
}

/// Domain errors.
#[derive(Debug)]
pub enum SciError {
    /// Unknown workflow.
    UnknownWorkflow(WorkflowId),
    /// Unknown task.
    UnknownTask(TaskId),
    /// Dependency not satisfied (input task not executed / invalidated).
    InputNotReady(TaskId),
    /// Task is not in a state that permits the operation.
    BadStatus(TaskId, TaskStatus),
    /// Input task belongs to a different workflow and sharing is disabled.
    CrossWorkflowInput(TaskId),
    /// Ledger-level failure.
    Core(CoreError),
}

impl fmt::Display for SciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SciError::UnknownWorkflow(w) => write!(f, "unknown workflow {w:?}"),
            SciError::UnknownTask(t) => write!(f, "unknown task {t:?}"),
            SciError::InputNotReady(t) => write!(f, "input task {t:?} not executed"),
            SciError::BadStatus(t, s) => write!(f, "task {t:?} in state {s:?}"),
            SciError::CrossWorkflowInput(t) => write!(f, "input {t:?} from foreign workflow"),
            SciError::Core(e) => write!(f, "ledger: {e}"),
        }
    }
}

impl std::error::Error for SciError {}

impl From<CoreError> for SciError {
    fn from(e: CoreError) -> Self {
        SciError::Core(e)
    }
}

/// A workflow definition.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Identifier.
    pub id: WorkflowId,
    /// Name.
    pub name: String,
    /// Owner (intellectual-property holder — Table 2 row 1).
    pub owner: AccountId,
    /// Whether other workflows may consume this workflow's outputs.
    pub shareable: bool,
    /// Member tasks.
    pub tasks: Vec<TaskId>,
}

/// The multi-workflow provenance ledger.
pub struct SciLedger {
    ledger: ProvenanceLedger,
    workflows: BTreeMap<WorkflowId, Workflow>,
    tasks: BTreeMap<TaskId, Task>,
    next_workflow: u64,
    next_task: u64,
}

impl Default for SciLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl SciLedger {
    /// Open with a consortium configuration (SciLedger's deployment model).
    pub fn new() -> Self {
        let config = LedgerConfig::consortium(4).with_domain(Domain::ScientificCollaboration);
        Self {
            ledger: ProvenanceLedger::open(config),
            workflows: BTreeMap::new(),
            tasks: BTreeMap::new(),
            next_workflow: 0,
            next_task: 0,
        }
    }

    /// Register a researcher.
    pub fn register_researcher(&mut self, name: &str) -> Result<AccountId, SciError> {
        Ok(self.ledger.register_agent(name)?)
    }

    /// Create (compose + publish) a workflow.
    pub fn create_workflow(&mut self, owner: AccountId, name: &str, shareable: bool) -> WorkflowId {
        let id = WorkflowId(self.next_workflow);
        self.next_workflow += 1;
        self.workflows.insert(
            id,
            Workflow {
                id,
                name: name.to_string(),
                owner,
                shareable,
                tasks: Vec::new(),
            },
        );
        id
    }

    /// Declare a task with dependencies; branching = several tasks sharing
    /// an input, merging = one task with several inputs.
    pub fn add_task(
        &mut self,
        workflow: WorkflowId,
        name: &str,
        inputs: &[TaskId],
    ) -> Result<TaskId, SciError> {
        let wf = self
            .workflows
            .get(&workflow)
            .ok_or(SciError::UnknownWorkflow(workflow))?;
        for input in inputs {
            let task = self.tasks.get(input).ok_or(SciError::UnknownTask(*input))?;
            if task.workflow != workflow {
                let src = self
                    .workflows
                    .get(&task.workflow)
                    .ok_or(SciError::UnknownWorkflow(task.workflow))?;
                if !src.shareable {
                    return Err(SciError::CrossWorkflowInput(*input));
                }
            }
        }
        let _ = wf;
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.insert(
            id,
            Task {
                id,
                workflow,
                name: name.to_string(),
                inputs: inputs.to_vec(),
                status: TaskStatus::Planned,
                version: 1,
                execution_record: None,
                executed_by: None,
            },
        );
        self.workflows
            .get_mut(&workflow)
            .expect("checked")
            .tasks
            .push(id);
        Ok(id)
    }

    /// Execute a task: all inputs must be executed and valid. Anchors an
    /// execution record carrying the Table 1 scientific-collaboration
    /// fields.
    pub fn execute_task(
        &mut self,
        task_id: TaskId,
        agent: AccountId,
        output: &[u8],
    ) -> Result<RecordId, SciError> {
        let task = self
            .tasks
            .get(&task_id)
            .ok_or(SciError::UnknownTask(task_id))?
            .clone();
        if task.status != TaskStatus::Planned {
            return Err(SciError::BadStatus(task_id, task.status));
        }
        let mut parent_records = Vec::new();
        for input in &task.inputs {
            let dep = self.tasks.get(input).ok_or(SciError::UnknownTask(*input))?;
            match (dep.status, dep.execution_record) {
                (TaskStatus::Executed, Some(rec)) => parent_records.push(rec),
                _ => return Err(SciError::InputNotReady(*input)),
            }
        }
        let ts = self.ledger.advance_clock();
        let input_digest = hash_parts(
            "sciwork-inputs",
            &task
                .inputs
                .iter()
                .map(|t| t.0.to_le_bytes())
                .collect::<Vec<_>>()
                .iter()
                .map(|b| b.as_slice())
                .collect::<Vec<_>>(),
        );
        let mut record = ProvenanceRecord::new(
            &format!("task-{}", task_id.0),
            agent,
            Action::Execute,
            ts,
            Domain::ScientificCollaboration,
        )
        .with_field("task_id", &task_id.0.to_string())
        .with_field("workflow_id", &task.workflow.0.to_string())
        .with_field("execution_time", &ts.to_string())
        .with_field("user_id", &agent.to_string())
        .with_field("input_data", &input_digest.short())
        .with_field(
            "output_data",
            &blockprov_crypto::sha256::sha256(output).short(),
        )
        .with_content(output);
        for parent in parent_records {
            record = record.with_parent(parent);
        }
        let rid = self.ledger.submit_record(record, output)?;
        let task = self.tasks.get_mut(&task_id).expect("exists");
        task.status = TaskStatus::Executed;
        task.execution_record = Some(rid);
        task.executed_by = Some(agent);
        Ok(rid)
    }

    /// Invalidate a task (SciBlock timestamp rule): the task and every
    /// downstream execution at or after `cutoff_ms` are retracted. Returns
    /// the retracted task ids.
    pub fn invalidate_task(
        &mut self,
        task_id: TaskId,
        cutoff_ms: u64,
        by: AccountId,
    ) -> Result<Vec<TaskId>, SciError> {
        let task = self
            .tasks
            .get(&task_id)
            .ok_or(SciError::UnknownTask(task_id))?;
        let Some(rec) = task.execution_record else {
            return Err(SciError::BadStatus(task_id, task.status));
        };
        let ts = self.ledger.advance_clock();
        // Anchor the invalidation itself as provenance.
        let inval_record = ProvenanceRecord::new(
            &format!("task-{}", task_id.0),
            by,
            Action::Invalidate,
            ts,
            Domain::ScientificCollaboration,
        )
        .with_field("task_id", &task_id.0.to_string())
        .with_field("workflow_id", &task.workflow.0.to_string())
        .with_field("invalidated_results", &rec.to_string())
        .with_parent(rec);
        self.ledger.submit_record(inval_record, &[])?;

        // Propagate through the provenance DAG, then map back to tasks.
        let hit_records = self
            .ledger_graph_invalidate(&rec, cutoff_ms)
            .map_err(SciError::Core)?;
        let mut retracted = Vec::new();
        for t in self.tasks.values_mut() {
            if let Some(r) = t.execution_record {
                if hit_records.contains(&r) && t.status == TaskStatus::Executed {
                    t.status = TaskStatus::Invalidated;
                    retracted.push(t.id);
                }
            }
        }
        Ok(retracted)
    }

    fn ledger_graph_invalidate(
        &mut self,
        rec: &RecordId,
        cutoff_ms: u64,
    ) -> Result<Vec<RecordId>, CoreError> {
        // ProvenanceLedger does not expose graph mutation; rebuild the hit
        // set here via descendants + timestamps, mirroring
        // `ProvGraph::invalidate_from` (which domain crates cannot call
        // through the shared reference).
        let graph = self.ledger.graph();
        let mut hit = vec![*rec];
        let descendants = graph.descendants(rec).map_err(CoreError::Graph)?;
        for d in descendants {
            if let Some(r) = graph.get(&d) {
                if r.timestamp_ms >= cutoff_ms {
                    hit.push(d);
                }
            }
        }
        Ok(hit)
    }

    /// Re-execute an invalidated task as a new version (Table 2:
    /// "flexibility for re-execution").
    pub fn reexecute_task(
        &mut self,
        task_id: TaskId,
        agent: AccountId,
        output: &[u8],
    ) -> Result<RecordId, SciError> {
        let task = self
            .tasks
            .get_mut(&task_id)
            .ok_or(SciError::UnknownTask(task_id))?;
        if task.status != TaskStatus::Invalidated {
            return Err(SciError::BadStatus(task_id, task.status));
        }
        task.status = TaskStatus::Planned;
        task.version += 1;
        task.execution_record = None;
        self.execute_task(task_id, agent, output)
    }

    /// Seal pending provenance into a block.
    pub fn seal(&mut self) -> Result<(), SciError> {
        self.ledger.seal_block()?;
        Ok(())
    }

    /// Task lookup.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// Workflow lookup.
    pub fn workflow(&self, id: WorkflowId) -> Option<&Workflow> {
        self.workflows.get(&id)
    }

    /// Lineage of a task's execution (ancestor records).
    pub fn task_lineage(&mut self, id: TaskId) -> Result<Vec<RecordId>, SciError> {
        let task = self.tasks.get(&id).ok_or(SciError::UnknownTask(id))?;
        let subject = format!("task-{}", task.id.0);
        Ok(self.ledger.query(&ProvQuery::Lineage(subject)).ids)
    }

    /// The underlying ledger (experiments).
    pub fn ledger(&self) -> &ProvenanceLedger {
        &self.ledger
    }
}

/// The Figure 4 lifecycle stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// Design the workflow DAG.
    Compose,
    /// Share it with collaborators.
    Publish,
    /// Run the tasks.
    Execute,
    /// Inspect results.
    Analyze,
    /// Retract flawed results.
    Invalidate,
    /// Re-run retracted tasks.
    Reexecute,
}

/// A scripted walk through the Figure 4 lifecycle (experiment F4).
pub struct Lifecycle {
    /// Stages visited, in order.
    pub log: Vec<LifecycleStage>,
}

impl Lifecycle {
    /// Run the canonical lifecycle on a fresh ledger; returns the stage log
    /// and the ledger for inspection.
    pub fn run() -> Result<(Lifecycle, SciLedger), SciError> {
        let mut sci = SciLedger::new();
        let mut log = Vec::new();

        log.push(LifecycleStage::Compose);
        let alice = sci.register_researcher("alice")?;
        let bob = sci.register_researcher("bob")?;
        let wf = sci.create_workflow(alice, "genome-pipeline", true);
        let ingest = sci.add_task(wf, "ingest", &[])?;
        let clean = sci.add_task(wf, "clean", &[ingest])?;
        let align_a = sci.add_task(wf, "align-a", &[clean])?; // branch
        let align_b = sci.add_task(wf, "align-b", &[clean])?; // branch
        let merge = sci.add_task(wf, "merge", &[align_a, align_b])?; // merge

        log.push(LifecycleStage::Publish);
        // (Publication = the workflow exists on the shared ledger.)

        log.push(LifecycleStage::Execute);
        sci.execute_task(ingest, alice, b"raw reads")?;
        sci.execute_task(clean, alice, b"clean reads")?;
        sci.execute_task(align_a, bob, b"alignment A")?;
        sci.execute_task(align_b, bob, b"alignment B")?;
        sci.execute_task(merge, alice, b"consensus")?;
        sci.seal()?;

        log.push(LifecycleStage::Analyze);
        // Analysis finds the cleaning step was flawed.
        log.push(LifecycleStage::Invalidate);
        let retracted = sci.invalidate_task(clean, 0, alice)?;
        debug_assert!(retracted.len() >= 3, "clean + both alignments + merge");

        log.push(LifecycleStage::Reexecute);
        sci.reexecute_task(clean, alice, b"clean reads v2")?;
        sci.seal()?;

        Ok((Lifecycle { log }, sci))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SciLedger, AccountId, WorkflowId) {
        let mut sci = SciLedger::new();
        let alice = sci.register_researcher("alice").unwrap();
        let wf = sci.create_workflow(alice, "wf", true);
        (sci, alice, wf)
    }

    #[test]
    fn linear_workflow_executes_in_order() {
        let (mut sci, alice, wf) = setup();
        let t1 = sci.add_task(wf, "a", &[]).unwrap();
        let t2 = sci.add_task(wf, "b", &[t1]).unwrap();
        // Cannot execute t2 before t1.
        assert!(matches!(
            sci.execute_task(t2, alice, b"out"),
            Err(SciError::InputNotReady(_))
        ));
        sci.execute_task(t1, alice, b"out1").unwrap();
        sci.execute_task(t2, alice, b"out2").unwrap();
        assert_eq!(sci.task(t2).unwrap().status, TaskStatus::Executed);
    }

    #[test]
    fn double_execution_rejected() {
        let (mut sci, alice, wf) = setup();
        let t = sci.add_task(wf, "a", &[]).unwrap();
        sci.execute_task(t, alice, b"x").unwrap();
        assert!(matches!(
            sci.execute_task(t, alice, b"y"),
            Err(SciError::BadStatus(_, TaskStatus::Executed))
        ));
    }

    #[test]
    fn branch_and_merge_lineage() {
        let (mut sci, alice, wf) = setup();
        let root = sci.add_task(wf, "root", &[]).unwrap();
        let left = sci.add_task(wf, "left", &[root]).unwrap();
        let right = sci.add_task(wf, "right", &[root]).unwrap();
        let join = sci.add_task(wf, "join", &[left, right]).unwrap();
        sci.execute_task(root, alice, b"r").unwrap();
        sci.execute_task(left, alice, b"l").unwrap();
        sci.execute_task(right, alice, b"rr").unwrap();
        sci.execute_task(join, alice, b"j").unwrap();
        let lineage = sci.task_lineage(join).unwrap();
        // join's record + left + right + root.
        assert_eq!(lineage.len(), 4);
    }

    #[test]
    fn invalidation_cascades_to_descendants() {
        let (mut sci, alice, wf) = setup();
        let a = sci.add_task(wf, "a", &[]).unwrap();
        let b = sci.add_task(wf, "b", &[a]).unwrap();
        let c = sci.add_task(wf, "c", &[b]).unwrap();
        sci.execute_task(a, alice, b"1").unwrap();
        sci.execute_task(b, alice, b"2").unwrap();
        sci.execute_task(c, alice, b"3").unwrap();
        let retracted = sci.invalidate_task(b, 0, alice).unwrap();
        assert_eq!(retracted, vec![b, c]);
        assert_eq!(sci.task(a).unwrap().status, TaskStatus::Executed);
        assert_eq!(sci.task(c).unwrap().status, TaskStatus::Invalidated);
    }

    #[test]
    fn reexecution_bumps_version_and_requires_invalidated_state() {
        let (mut sci, alice, wf) = setup();
        let a = sci.add_task(wf, "a", &[]).unwrap();
        sci.execute_task(a, alice, b"1").unwrap();
        assert!(matches!(
            sci.reexecute_task(a, alice, b"2"),
            Err(SciError::BadStatus(..))
        ));
        sci.invalidate_task(a, 0, alice).unwrap();
        sci.reexecute_task(a, alice, b"2").unwrap();
        let task = sci.task(a).unwrap();
        assert_eq!(task.version, 2);
        assert_eq!(task.status, TaskStatus::Executed);
    }

    #[test]
    fn cross_workflow_sharing_respects_shareable_flag() {
        let mut sci = SciLedger::new();
        let alice = sci.register_researcher("alice").unwrap();
        let open_wf = sci.create_workflow(alice, "open", true);
        let closed_wf = sci.create_workflow(alice, "closed", false);
        let open_task = sci.add_task(open_wf, "src", &[]).unwrap();
        let closed_task = sci.add_task(closed_wf, "secret", &[]).unwrap();
        let consumer_wf = sci.create_workflow(alice, "consumer", true);
        // Consuming from the shareable workflow works…
        sci.add_task(consumer_wf, "ok", &[open_task]).unwrap();
        // …from the private one does not (IP protection, Table 2).
        assert!(matches!(
            sci.add_task(consumer_wf, "steal", &[closed_task]),
            Err(SciError::CrossWorkflowInput(_))
        ));
    }

    #[test]
    fn lifecycle_walks_all_figure4_stages() {
        let (lifecycle, sci) = Lifecycle::run().unwrap();
        assert_eq!(
            lifecycle.log,
            vec![
                LifecycleStage::Compose,
                LifecycleStage::Publish,
                LifecycleStage::Execute,
                LifecycleStage::Analyze,
                LifecycleStage::Invalidate,
                LifecycleStage::Reexecute,
            ]
        );
        sci.ledger().verify_chain().unwrap();
    }

    #[test]
    fn execution_records_carry_table1_fields() {
        let (mut sci, alice, wf) = setup();
        let t = sci.add_task(wf, "a", &[]).unwrap();
        let rid = sci.execute_task(t, alice, b"out").unwrap();
        let record = sci.ledger().record(&rid).unwrap();
        for field in [
            "task_id",
            "workflow_id",
            "execution_time",
            "user_id",
            "input_data",
            "output_data",
        ] {
            assert!(record.fields.contains_key(field), "missing {field}");
        }
    }
}
