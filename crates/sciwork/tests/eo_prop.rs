//! Property tests for the EO DAG: trace/scan agreement, cost bounds, and
//! payload integrity over randomly-shaped pipelines.

use blockprov_sciwork::eo::{EoNetwork, EoTxId};
use proptest::prelude::*;

/// Build a random DAG: `n` products, each deriving from 1–3 earlier ones.
fn random_dag(shape: &[u8]) -> (EoNetwork, Vec<EoTxId>) {
    let mut net = EoNetwork::new(3, 2);
    let mut ids = Vec::new();
    // Always at least one root.
    ids.push(net.ingest("dc", "root", b"root-bytes").unwrap());
    for (i, &b) in shape.iter().enumerate() {
        let n_parents = (b % 3) as usize + 1;
        let parents: Vec<EoTxId> = (0..n_parents)
            .map(|k| ids[(b as usize + k * 7 + i) % ids.len()])
            .collect();
        let mut uniq = parents.clone();
        uniq.sort();
        uniq.dedup();
        let id = net
            .process("dc", &format!("p{i}"), &uniq, &[b, i as u8])
            .unwrap();
        ids.push(id);
    }
    (net, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DAG trace and scan baseline return the same lineage set, and the DAG
    /// walk never examines more records than the scan.
    #[test]
    fn trace_and_scan_agree(shape in proptest::collection::vec(any::<u8>(), 1..30)) {
        let (net, ids) = random_dag(&shape);
        let subject = *ids.last().unwrap();
        let dag = net.trace(subject).unwrap();
        let scan = net.trace_by_scan(subject).unwrap();
        let a: std::collections::HashSet<_> = dag.lineage.iter().collect();
        let b: std::collections::HashSet<_> = scan.lineage.iter().collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(dag.depth, scan.depth);
        prop_assert!(dag.records_examined <= scan.records_examined);
        // DAG cost is exactly the ancestor set plus the subject.
        prop_assert_eq!(dag.records_examined as usize, dag.lineage.len() + 1);
    }

    /// Every payload fetch verifies against the on-chain digest.
    #[test]
    fn payloads_verify(shape in proptest::collection::vec(any::<u8>(), 1..15)) {
        let (net, ids) = random_dag(&shape);
        for id in &ids {
            let tx = net.tx(id).unwrap();
            let bytes = net.fetch_verified(id).unwrap();
            prop_assert_eq!(bytes.len() as u64, tx.payload_bytes);
        }
    }

    /// Anchoring any prefix of activity keeps the anchor chain verifiable.
    #[test]
    fn anchors_always_verify(splits in proptest::collection::vec(1usize..6, 1..6)) {
        let mut net = EoNetwork::new(3, 2);
        let mut counter = 0u32;
        for chunk in splits {
            for _ in 0..chunk {
                net.ingest("dc", &format!("s{counter}"), &counter.to_le_bytes()).unwrap();
                counter += 1;
            }
            net.anchor();
            prop_assert!(net.verify_anchors());
        }
    }
}
