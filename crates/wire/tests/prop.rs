//! Property tests: every wire codec must round-trip, and decoding must never
//! panic on arbitrary input.

use blockprov_wire::{decode_seq, encode_seq, Codec, Reader, Writer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.get_varint().unwrap(), v);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn varint_encoding_is_minimal(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let expected_len = if v == 0 { 1 } else { (64 - v.leading_zeros()).div_ceil(7) as usize };
        prop_assert_eq!(w.len(), expected_len);
    }

    #[test]
    fn bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let encoded = data.to_wire();
        prop_assert_eq!(Vec::<u8>::from_wire(&encoded).unwrap(), data);
    }

    #[test]
    fn string_round_trip(s in "\\PC{0,200}") {
        let owned = s.to_string();
        let encoded = owned.to_wire();
        prop_assert_eq!(String::from_wire(&encoded).unwrap(), owned);
    }

    #[test]
    fn i64_round_trip(v in any::<i64>()) {
        prop_assert_eq!(i64::from_wire(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn u128_round_trip(v in any::<u128>()) {
        prop_assert_eq!(u128::from_wire(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn seq_round_trip(items in proptest::collection::vec(any::<u64>(), 0..256)) {
        let mut w = Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(decode_seq::<u64>(&mut r).unwrap(), items);
        prop_assert!(r.is_exhausted());
    }

    /// Decoding arbitrary bytes must return an error or a value, never panic.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = u64::from_wire(&bytes);
        let _ = String::from_wire(&bytes);
        let _ = Vec::<u8>::from_wire(&bytes);
        let _ = Option::<u64>::from_wire(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = decode_seq::<u32>(&mut r);
    }

    /// encode(decode(b)) == b for any well-formed encoding (canonicality).
    #[test]
    fn re_encode_is_identity(v in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let pair = (v, data);
        let bytes = pair.to_wire();
        let decoded = <(u64, Vec<u8>)>::from_wire(&bytes).unwrap();
        prop_assert_eq!(decoded.to_wire(), bytes);
    }
}
