//! Canonical, deterministic binary encoding for the blockprov workspace.
//!
//! Every structure that is hashed, signed, or stored on a chain must have a
//! single canonical byte representation, otherwise two honest nodes can
//! disagree about a block hash. This crate provides that representation:
//!
//! * fixed-width integers are little-endian;
//! * lengths and counts use a LEB128-style varint;
//! * collections are length-prefixed and encoded in iteration order — callers
//!   that need map determinism must use ordered containers (`BTreeMap`);
//! * there is exactly one way to encode any value (no optional padding, no
//!   alternative integer widths), so `decode(encode(x)) == x` and
//!   `encode(decode(b)) == b` for all well-formed `b`.
//!
//! The [`Codec`] trait is implemented by hand across the workspace rather
//! than derived, deliberately: on-chain formats are consensus-critical and
//! should be explicit in the source.

pub mod frame;
pub mod index;
pub mod manifest;
pub mod meta;
mod reader;
mod writer;

pub use reader::Reader;
pub use writer::{FrameBatch, Writer};

use std::fmt;

/// Maximum length accepted for any length-prefixed field (16 MiB).
///
/// This bounds allocation during decoding so a corrupt or malicious length
/// prefix cannot trigger an out-of-memory abort.
pub const MAX_LEN: usize = 16 * 1024 * 1024;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A varint was longer than 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// A varint used a non-canonical (overlong) encoding.
    NonCanonicalVarint,
    /// A length prefix exceeded [`MAX_LEN`].
    LengthTooLarge(u64),
    /// A byte that must be 0 or 1 (bool / option tag) held another value.
    InvalidTag(u8),
    /// Bytes that must be UTF-8 were not.
    InvalidUtf8,
    /// An enum discriminant was not recognized by the decoder.
    UnknownDiscriminant {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The unrecognized discriminant value.
        value: u64,
    },
    /// Input had trailing bytes after a complete top-level decode.
    TrailingBytes(usize),
    /// A domain-level invariant failed during decoding.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::VarintOverflow => write!(f, "varint overflows u64"),
            WireError::NonCanonicalVarint => write!(f, "non-canonical varint encoding"),
            WireError::LengthTooLarge(n) => write!(f, "length prefix {n} exceeds limit {MAX_LEN}"),
            WireError::InvalidTag(b) => write!(f, "invalid tag byte {b:#04x} (expected 0 or 1)"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::UnknownDiscriminant { type_name, value } => {
                write!(f, "unknown discriminant {value} for type {type_name}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Invalid(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A type with a canonical binary encoding.
pub trait Codec: Sized {
    /// Append the canonical encoding of `self` to the writer.
    fn encode(&self, w: &mut Writer);

    /// Decode a value from the reader, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode from a slice, requiring the entire slice to be consumed.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        let rest = r.remaining();
        if rest != 0 {
            return Err(WireError::TrailingBytes(rest));
        }
        Ok(v)
    }
}

impl Codec for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u8()
    }
}

impl Codec for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u16()
    }
}

impl Codec for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Codec for u128 {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u128()
    }
}

impl Codec for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(zigzag_encode(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(zigzag_decode(r.get_u64()?))
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidTag(b)),
        }
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_string()
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_bytes()
    }
}

impl<const N: usize> Codec for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let slice = r.get_raw(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError::InvalidTag(b)),
        }
    }
}

// `Vec<u8>` is the only `Vec` impl: a blanket `impl<T: Codec> Codec for
// Vec<T>` would conflict with it under coherence, and byte strings are by far
// the hottest case. Sequences of other element types use the free functions
// below, which keeps the length-prefix convention identical.

/// Encode a slice of codec values with a varint count prefix.
pub fn encode_seq<T: Codec>(items: &[T], w: &mut Writer) {
    w.put_varint(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

/// Decode a sequence written by [`encode_seq`].
pub fn decode_seq<T: Codec>(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let n = r.get_len()?;
    // Guard allocation: assume each element takes at least one byte.
    if n > r.remaining() {
        return Err(WireError::UnexpectedEof {
            needed: n,
            remaining: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// ZigZag-encode a signed integer so small magnitudes stay small as varints.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let bytes = v.to_wire();
            assert_eq!(u64::from_wire(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn varint_is_canonical() {
        // 0x80 0x00 is an overlong encoding of 0 and must be rejected.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert_eq!(r.get_varint(), Err(WireError::NonCanonicalVarint));
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes overflow a u64.
        let bytes = [0xFFu8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn bool_rejects_bad_tag() {
        assert_eq!(bool::from_wire(&[2]), Err(WireError::InvalidTag(2)));
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(42);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_wire(&some.to_wire()).unwrap(), some);
        assert_eq!(Option::<u32>::from_wire(&none.to_wire()).unwrap(), none);
    }

    #[test]
    fn string_round_trip_and_utf8_guard() {
        let s = "provenance — 来源".to_string();
        assert_eq!(String::from_wire(&s.to_wire()).unwrap(), s);

        let mut w = Writer::new();
        w.put_varint(2);
        w.put_raw(&[0xFF, 0xFE]);
        assert_eq!(
            String::from_wire(&w.into_bytes()),
            Err(WireError::InvalidUtf8)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u8.to_wire();
        bytes.push(0);
        assert_eq!(u8::from_wire(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn seq_round_trip() {
        let items = vec![1u64, 2, 3, u64::MAX];
        let mut w = Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_seq::<u64>(&mut r).unwrap(), items);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn seq_length_bomb_rejected() {
        // A count prefix of 2^32 with a 3-byte body must not allocate 2^32 slots.
        let mut w = Writer::new();
        w.put_varint(1 << 32);
        w.put_raw(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(decode_seq::<u64>(&mut r).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn i64_round_trip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(i64::from_wire(&v.to_wire()).unwrap(), v);
        }
    }

    #[test]
    fn fixed_array_round_trip() {
        let arr = [7u8; 32];
        assert_eq!(<[u8; 32]>::from_wire(&arr.to_wire()).unwrap(), arr);
        // Truncated input fails.
        assert!(<[u8; 32]>::from_wire(&[0u8; 31]).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let t = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_wire(&t.to_wire()).unwrap(), t);
        let t3 = (1u8, 2u16, 3u32);
        assert_eq!(<(u8, u16, u32)>::from_wire(&t3.to_wire()).unwrap(), t3);
    }
}
