//! Index-page codec for durable, disk-backed secondary indexes.
//!
//! The ledger spills its finalized transaction indexes into append-only
//! *index pages* (see `blockprov_ledger::index`). The on-disk page layout is
//! specified here, next to the rest of the wire format, and reuses the
//! [`crate::frame`] framing: each page is one `[u32 le len][payload]` frame
//! whose payload opens with an [`IndexPageHeader`] followed by the page's
//! entries. Entry encoding is the *caller's* business — at this layer a page
//! body is opaque bytes — so the same page machinery can carry any keyed
//! index (transaction locations today, record anchors or contract events
//! tomorrow).
//!
//! The header carries everything a reader needs to skip a page without
//! decoding its entries: the height range the page covers and two
//! [`BloomFilter`]s (primary key and secondary key) plus a 64-bit tag mask.
//! Keys are uniformly-distributed hashes, so min/max fences are useless —
//! per-page Blooms are the standard answer (≈10 bits/key keeps the false
//! positive rate around 1%).

use crate::frame::{read_frame_from, write_frame_to};
use crate::{Codec, Reader, WireError, Writer};
use std::io::{self, Read, Write};

/// Magic bytes opening every index page (`BPIX` = BlockProv IndeX).
pub const INDEX_MAGIC: [u8; 4] = *b"BPIX";

/// Current index page format version.
pub const INDEX_VERSION: u16 = 1;

/// Number of hash probes per Bloom insertion/query.
const BLOOM_PROBES: u64 = 6;

/// A split-and-merge Bloom filter sized at build time for its key count.
///
/// Callers hash their keys themselves and feed `(h1, h2)` pairs; the filter
/// derives its probe positions by double hashing (`h1 + i·h2`), so it is
/// agnostic to the key type. An empty filter (zero capacity) reports
/// `contains == false` for everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
}

impl BloomFilter {
    /// Filter sized for `keys` insertions at ~10 bits per key (rounded up
    /// to a power-of-two bit count, minimum 64 bits).
    pub fn with_capacity(keys: usize) -> Self {
        if keys == 0 {
            return Self { bits: Vec::new() };
        }
        let bits = (keys * 10).next_power_of_two().max(64);
        Self {
            bits: vec![0u8; bits / 8],
        }
    }

    /// Number of addressable bits.
    fn bit_len(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    /// Insert a key by its two independent 64-bit hashes.
    pub fn insert(&mut self, h1: u64, h2: u64) {
        let m = self.bit_len();
        if m == 0 {
            return;
        }
        // Odd stride: the bit count is a power of two, so an even h2 would
        // confine probes to a sublattice and inflate false positives.
        let stride = h2 | 1;
        for i in 0..BLOOM_PROBES {
            let bit = h1.wrapping_add(i.wrapping_mul(stride)) % m;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// Whether the key *may* have been inserted (false positives possible,
    /// false negatives not).
    pub fn contains(&self, h1: u64, h2: u64) -> bool {
        let m = self.bit_len();
        if m == 0 {
            return false;
        }
        let stride = h2 | 1;
        (0..BLOOM_PROBES).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(stride)) % m;
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }

    /// Encoded size in bytes (for storage accounting).
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }
}

impl Codec for BloomFilter {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.bits);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bits = r.get_bytes()?;
        if !bits.is_empty() && !bits.len().is_power_of_two() {
            return Err(WireError::Invalid("bloom filter length not a power of two"));
        }
        Ok(Self { bits })
    }
}

/// Header opening every index page.
///
/// `partition`/`sequence` pin the page's place in a partitioned, append-only
/// page sequence (readers reject pages filed under the wrong partition).
/// `first_height`/`last_height` bound the ledger heights the entries cover,
/// which is what makes page appends idempotent across crash/replay: a writer
/// re-deriving entries after a restart drops everything at or below the
/// partition's durable `last_height`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexPageHeader {
    /// Format version (readers reject versions they do not understand).
    pub version: u16,
    /// Partition this page belongs to.
    pub partition: u16,
    /// Zero-based position of this page within its partition.
    pub sequence: u32,
    /// Number of entries in the page body.
    pub entry_count: u32,
    /// Smallest ledger height contributing entries to this page.
    pub first_height: u64,
    /// Largest ledger height contributing entries to this page.
    pub last_height: u64,
    /// Bloom over the entries' primary keys.
    pub key_bloom: BloomFilter,
    /// Bloom over the entries' secondary keys (e.g. authors).
    pub secondary_bloom: BloomFilter,
    /// Bitmask over the entries' small tags (`tag % 64`, e.g. tx kinds).
    pub tag_mask: u64,
}

impl Codec for IndexPageHeader {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&INDEX_MAGIC);
        w.put_u16(self.version);
        w.put_u16(self.partition);
        w.put_u32(self.sequence);
        w.put_u32(self.entry_count);
        w.put_u64(self.first_height);
        w.put_u64(self.last_height);
        self.key_bloom.encode(w);
        self.secondary_bloom.encode(w);
        w.put_u64(self.tag_mask);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.get_raw(4)?;
        if magic != INDEX_MAGIC {
            return Err(WireError::Invalid("bad index page magic"));
        }
        let version = r.get_u16()?;
        if version != INDEX_VERSION {
            return Err(WireError::Invalid("unsupported index page version"));
        }
        Ok(Self {
            version,
            partition: r.get_u16()?,
            sequence: r.get_u32()?,
            entry_count: r.get_u32()?,
            first_height: r.get_u64()?,
            last_height: r.get_u64()?,
            key_bloom: BloomFilter::decode(r)?,
            secondary_bloom: BloomFilter::decode(r)?,
            tag_mask: r.get_u64()?,
        })
    }
}

/// Write one index page — header plus pre-encoded entry bytes — as a single
/// frame. No flush; callers batch pages and flush once.
pub fn write_page_to<W: Write>(
    w: &mut W,
    header: &IndexPageHeader,
    entry_bytes: &[u8],
) -> io::Result<()> {
    let mut body = header.to_wire();
    body.extend_from_slice(entry_bytes);
    write_frame_to(w, &body)
}

/// Read the next index page, returning its header and the raw entry bytes.
///
/// `Ok(None)` on clean end-of-stream; a torn trailing frame or an
/// undecodable header is an error (callers decide whether that means
/// tamper-failure or crash-recovery truncation).
pub fn read_page_from<R: Read>(r: &mut R) -> io::Result<Option<(IndexPageHeader, Vec<u8>)>> {
    let Some(body) = read_frame_from(r)? else {
        return Ok(None);
    };
    let mut reader = Reader::new(&body);
    let header = IndexPageHeader::decode(&mut reader)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let rest = reader.remaining();
    let entries = reader
        .get_raw(rest)
        .expect("remaining bytes are available")
        .to_vec();
    Ok(Some((header, entries)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(partition: u16, seq: u32) -> IndexPageHeader {
        let mut key_bloom = BloomFilter::with_capacity(8);
        key_bloom.insert(1, 2);
        IndexPageHeader {
            version: INDEX_VERSION,
            partition,
            sequence: seq,
            entry_count: 3,
            first_height: 10,
            last_height: 12,
            key_bloom,
            secondary_bloom: BloomFilter::with_capacity(2),
            tag_mask: 0b1010,
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = BloomFilter::with_capacity(64);
        let keys: Vec<(u64, u64)> = (0..64u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15), i ^ 0xABCDEF))
            .collect();
        for &(h1, h2) in &keys {
            b.insert(h1, h2);
        }
        for &(h1, h2) in &keys {
            assert!(b.contains(h1, h2));
        }
    }

    /// SplitMix64 finalizer: the tests' stand-in for the uniformly
    /// distributed crypto-hash key bytes real callers feed in.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn bloom_rejects_most_absent_keys() {
        let mut b = BloomFilter::with_capacity(128);
        for i in 0..128u64 {
            b.insert(mix(i), mix(i ^ 0xDEAD_BEEF));
        }
        let false_positives = (10_000..20_000u64)
            .filter(|&i| b.contains(mix(i), mix(i ^ 0xDEAD_BEEF)))
            .count();
        // ~10 bits/key, 6 probes: expect ≈0.1% — allow generous slack.
        assert!(
            false_positives < 300,
            "false positive rate too high: {false_positives}/10000"
        );
    }

    #[test]
    fn empty_bloom_contains_nothing() {
        let b = BloomFilter::with_capacity(0);
        assert!(!b.contains(1, 2));
        assert_eq!(b.byte_len(), 0);
    }

    #[test]
    fn header_round_trip() {
        let h = header(3, 7);
        let bytes = h.to_wire();
        assert_eq!(IndexPageHeader::from_wire(&bytes).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut bytes = header(0, 0).to_wire();
        bytes[0] = b'X';
        assert!(IndexPageHeader::from_wire(&bytes).is_err());

        let mut bytes = header(0, 0).to_wire();
        bytes[4] = 0xFF;
        assert!(IndexPageHeader::from_wire(&bytes).is_err());
    }

    #[test]
    fn page_round_trip_through_io() {
        let mut buf = Vec::new();
        write_page_to(&mut buf, &header(1, 0), b"entry-bytes").unwrap();
        write_page_to(&mut buf, &header(1, 1), b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (h0, e0) = read_page_from(&mut cursor).unwrap().unwrap();
        assert_eq!(h0.sequence, 0);
        assert_eq!(e0, b"entry-bytes");
        let (h1, e1) = read_page_from(&mut cursor).unwrap().unwrap();
        assert_eq!(h1.sequence, 1);
        assert!(e1.is_empty());
        assert!(read_page_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn torn_trailing_page_is_an_error() {
        let mut buf = Vec::new();
        write_page_to(&mut buf, &header(0, 0), b"whole").unwrap();
        buf.extend_from_slice(&(500u32).to_le_bytes());
        buf.extend_from_slice(b"torn");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_page_from(&mut cursor).unwrap().is_some());
        assert!(read_page_from(&mut cursor).is_err());
    }

    #[test]
    fn garbage_page_body_is_an_error_not_a_page() {
        let mut buf = Vec::new();
        crate::frame::write_frame_to(&mut buf, b"not an index page").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_page_from(&mut cursor).is_err());
    }
}
