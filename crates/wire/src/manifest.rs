//! Storage-manifest codec: the durable record of which files are live.
//!
//! LSM stores (RocksDB's MANIFEST, ethrex's `Store` seam) solve the
//! "which files does this directory actually own?" problem with a single
//! atomically-replaced file that lists every live file together with the
//! key range it covers. The ledger adopts the same shape: each storage
//! tier directory may hold a `MANIFEST` whose entries name the live files
//! (segments, index pages, height-map pages, nonce-floor pages) with
//! per-file *height fences* and byte lengths, under a monotonically
//! increasing *epoch*. Compaction then becomes an epoch bump — write new
//! files, commit a manifest listing only them, delete the old ones — and
//! a crash at any point between those steps loses nothing, because only
//! manifest-listed files are live and stray files are garbage-collected
//! on open.
//!
//! This module is the wire format only: the magic, the entry layout and
//! the whole-file codec. The commit protocol (temp + rename, epoch
//! succession, GC) lives in `blockprov_ledger::manifest`.

use crate::{decode_seq, encode_seq, Codec, Reader, WireError, Writer};

/// Magic bytes opening every manifest (`BPMF` = BlockProv ManiFest).
pub const MANIFEST_MAGIC: [u8; 4] = *b"BPMF";

/// Current manifest format version.
pub const MANIFEST_VERSION: u16 = 1;

/// Conventional file name for a tier directory's manifest.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// What role a manifest-listed file plays in its tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManifestFileKind {
    /// A block segment (`seg-NNNNN.blk`); `items` counts blocks.
    Segment,
    /// A tx-index partition page file (`idx-NN.pages`); `items` counts
    /// durable pages.
    IndexPartition,
    /// The height-map file (`height.map`); `items` counts height entries.
    HeightMap,
    /// A nonce-floor partition page file (`floor-NN.pages`); `items`
    /// counts durable pages.
    FloorPartition,
}

impl Codec for ManifestFileKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ManifestFileKind::Segment => 0,
            ManifestFileKind::IndexPartition => 1,
            ManifestFileKind::HeightMap => 2,
            ManifestFileKind::FloorPartition => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ManifestFileKind::Segment),
            1 => Ok(ManifestFileKind::IndexPartition),
            2 => Ok(ManifestFileKind::HeightMap),
            3 => Ok(ManifestFileKind::FloorPartition),
            value => Err(WireError::UnknownDiscriminant {
                type_name: "ManifestFileKind",
                value: value as u64,
            }),
        }
    }
}

/// A point of the sparse intra-file height index: every frame that starts
/// at a byte offset below `offset` holds a block at height ≤ `max_height`.
///
/// Emitted every [`crate::manifest`]-user-defined stride of frames, so a
/// reader that only wants heights above a floor can seek to the deepest
/// point whose `max_height` is at or below the floor and scan from there,
/// instead of reading the file from the top. `max_height` values are
/// monotone across a file's points (each is a running maximum), which is
/// what makes the seek a binary search even though block heights inside a
/// segment are not themselves monotone (fork rivals append out of order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsePoint {
    /// Byte offset the guarantee covers (exclusive).
    pub offset: u64,
    /// Running maximum block height over all frames before `offset`.
    pub max_height: u64,
}

impl Codec for SparsePoint {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.offset);
        w.put_u64(self.max_height);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            offset: r.get_u64()?,
            max_height: r.get_u64()?,
        })
    }
}

/// One live file, as recorded in the manifest.
///
/// The height fence (`first_height..=last_height`) is what buys the
/// O(window) cold start: a reader that only needs heights above a
/// checkpoint skips every *sealed* file whose `last_height` sits at or
/// below it without opening the file. For files that straddle the fence
/// (the active segment, typically), the `sparse` height index narrows the
/// scan further to the file's tail. `len` is the file's exact byte
/// length at commit time — a listed file that is missing or shorter than
/// its fence says is loud corruption, never silently ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Role of the file in its tier.
    pub kind: ManifestFileKind,
    /// Tier-local file id (segment number, partition number; 0 for the
    /// single height map).
    pub id: u32,
    /// Smallest ledger height the file covers (0 when empty).
    pub first_height: u64,
    /// Largest ledger height the file covers (0 when empty).
    pub last_height: u64,
    /// Exact byte length of the file when this manifest was committed.
    pub len: u64,
    /// Item count at commit time; the unit depends on `kind` (blocks for
    /// segments, durable pages for paged indexes, entries for the height
    /// map).
    pub items: u64,
    /// Sparse intra-file height index (may be empty), offsets ascending.
    pub sparse: Vec<SparsePoint>,
}

impl Codec for ManifestEntry {
    fn encode(&self, w: &mut Writer) {
        self.kind.encode(w);
        w.put_u32(self.id);
        w.put_u64(self.first_height);
        w.put_u64(self.last_height);
        w.put_u64(self.len);
        w.put_u64(self.items);
        encode_seq(&self.sparse, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            kind: ManifestFileKind::decode(r)?,
            id: r.get_u32()?,
            first_height: r.get_u64()?,
            last_height: r.get_u64()?,
            len: r.get_u64()?,
            items: r.get_u64()?,
            sparse: decode_seq(r)?,
        })
    }
}

/// A whole manifest: the epoch plus every live file.
///
/// Epochs are monotonically increasing across commits; the file is only
/// ever replaced whole (temp + rename), never appended to, so a reader
/// either sees a complete epoch or — after a crash before the rename —
/// the previous one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Commit sequence number, bumped on every replace.
    pub epoch: u64,
    /// Every live file in the tier directory.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Entries of one kind, in listed (id) order.
    pub fn of_kind(&self, kind: ManifestFileKind) -> impl Iterator<Item = &ManifestEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }
}

impl Codec for Manifest {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&MANIFEST_MAGIC);
        w.put_u16(MANIFEST_VERSION);
        w.put_u64(self.epoch);
        encode_seq(&self.entries, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.get_raw(4)?;
        if magic != MANIFEST_MAGIC {
            return Err(WireError::Invalid("bad manifest magic"));
        }
        let version = r.get_u16()?;
        if version != MANIFEST_VERSION {
            return Err(WireError::Invalid("unsupported manifest version"));
        }
        Ok(Self {
            epoch: r.get_u64()?,
            entries: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            epoch: 7,
            entries: vec![
                ManifestEntry {
                    kind: ManifestFileKind::Segment,
                    id: 0,
                    first_height: 0,
                    last_height: 99,
                    len: 4096,
                    items: 100,
                    sparse: vec![
                        SparsePoint {
                            offset: 2048,
                            max_height: 49,
                        },
                        SparsePoint {
                            offset: 4096,
                            max_height: 99,
                        },
                    ],
                },
                ManifestEntry {
                    kind: ManifestFileKind::Segment,
                    id: 1,
                    first_height: 100,
                    last_height: 120,
                    len: 812,
                    items: 21,
                    sparse: Vec::new(),
                },
                ManifestEntry {
                    kind: ManifestFileKind::FloorPartition,
                    id: 3,
                    first_height: 0,
                    last_height: 99,
                    len: 333,
                    items: 2,
                    sparse: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trip() {
        let m = sample();
        assert_eq!(Manifest::from_wire(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn empty_manifest_round_trip() {
        let m = Manifest::default();
        assert_eq!(Manifest::from_wire(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn of_kind_filters() {
        let m = sample();
        assert_eq!(m.of_kind(ManifestFileKind::Segment).count(), 2);
        assert_eq!(m.of_kind(ManifestFileKind::FloorPartition).count(), 1);
        assert_eq!(m.of_kind(ManifestFileKind::HeightMap).count(), 0);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let m = sample();
        let mut bytes = m.to_wire();
        bytes[0] = b'X';
        assert!(Manifest::from_wire(&bytes).is_err());

        let mut bytes = m.to_wire();
        bytes[4] = 0xFF; // version
        assert!(Manifest::from_wire(&bytes).is_err());

        let bytes = m.to_wire();
        assert!(Manifest::from_wire(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn rejects_unknown_kind_and_trailing_bytes() {
        let bytes = [9u8]; // discriminant 9 is unassigned
        assert!(ManifestFileKind::from_wire(&bytes).is_err());

        let mut bytes = sample().to_wire();
        bytes.push(0);
        assert!(matches!(
            Manifest::from_wire(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }
}
