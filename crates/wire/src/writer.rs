//! Append-only encoder producing canonical wire bytes.

/// An append-only byte buffer with helpers for the canonical wire format.
///
/// Integers are little-endian; lengths are LEB128 varints. A `Writer` never
/// fails: all fallibility lives on the decode side.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create a writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// View the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Append a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    #[inline]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append raw bytes with no length prefix.
    #[inline]
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7F]),
            (128, &[0x80, 0x01]),
            (300, &[0xAC, 0x02]),
            (
                u64::MAX,
                &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01],
            ),
        ];
        for (v, expect) in cases {
            let mut w = Writer::new();
            w.put_varint(*v);
            assert_eq!(w.as_slice(), *expect, "varint({v})");
        }
    }

    #[test]
    fn integers_are_little_endian() {
        let mut w = Writer::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn with_capacity_and_len() {
        let mut w = Writer::with_capacity(64);
        assert!(w.is_empty());
        w.put_str("abc");
        assert_eq!(w.len(), 4); // 1-byte length + 3 bytes
    }
}
