//! Append-only encoder producing canonical wire bytes.

use std::io::{self, IoSlice, Write};

/// An append-only byte buffer with helpers for the canonical wire format.
///
/// Integers are little-endian; lengths are LEB128 varints. A `Writer` never
/// fails: all fallibility lives on the decode side.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create a writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// View the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Append a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    #[inline]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append raw bytes with no length prefix.
    #[inline]
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// A batch of length-delimited frames staged for one vectored write.
///
/// Group-commit write paths stage many frames and emit them with a single
/// syscall instead of one write-plus-flush per frame. Each frame keeps the
/// on-disk layout of [`frame::write_frame_to`](crate::frame::write_frame_to)
/// — `[u32 le length][payload]` — so a reader cannot tell whether a segment
/// was written frame-at-a-time or batch-at-a-time. The batch owns its
/// payloads; length prefixes are materialized at push time so the emit path
/// is pure `IoSlice` assembly with no per-frame encoding work.
#[derive(Debug, Default)]
pub struct FrameBatch {
    prefixes: Vec<[u8; 4]>,
    payloads: Vec<Vec<u8>>,
    bytes: u64,
}

impl FrameBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage one frame, returning its byte offset within the batch.
    ///
    /// Rejects payloads over [`MAX_LEN`](crate::MAX_LEN) before staging
    /// anything, mirroring the single-frame writer: an oversized frame must
    /// never reach the output, where its length prefix would poison every
    /// later read of the stream.
    pub fn push(&mut self, payload: Vec<u8>) -> io::Result<u64> {
        if payload.len() > crate::MAX_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame length {} exceeds maximum {}",
                    payload.len(),
                    crate::MAX_LEN
                ),
            ));
        }
        let offset = self.bytes;
        self.prefixes.push((payload.len() as u32).to_le_bytes());
        self.bytes += (4 + payload.len()) as u64;
        self.payloads.push(payload);
        Ok(offset)
    }

    /// Number of frames staged.
    pub fn frames(&self) -> usize {
        self.payloads.len()
    }

    /// Total encoded size of the staged frames, prefixes included.
    pub fn byte_len(&self) -> u64 {
        self.bytes
    }

    /// True if no frames are staged.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Drop all staged frames without writing them.
    pub fn clear(&mut self) {
        self.prefixes.clear();
        self.payloads.clear();
        self.bytes = 0;
    }

    /// Emit every staged frame with vectored writes and clear the batch.
    ///
    /// Prefix and payload slices are gathered into one `IoSlice` run so the
    /// whole batch reaches the kernel in a single `writev` where the
    /// platform allows (the OS may still split it; short writes resume from
    /// the interrupted slice). On error the batch is left intact but the
    /// sink may hold a torn prefix of it — callers must treat the sink as
    /// needing crash recovery, not retry the emit.
    pub fn write_to<W: Write>(&mut self, out: &mut W) -> io::Result<()> {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.payloads.len() * 2);
        for (prefix, payload) in self.prefixes.iter().zip(&self.payloads) {
            slices.push(IoSlice::new(prefix));
            if !payload.is_empty() {
                slices.push(IoSlice::new(payload));
            }
        }
        let mut idx = 0;
        let mut partial = 0usize;
        while idx < slices.len() {
            if partial > 0 {
                // A short write stopped inside this slice: finish it with a
                // plain write, then resume vectored from the next one.
                out.write_all(&slices[idx][partial..])?;
                partial = 0;
                idx += 1;
                continue;
            }
            let mut n = match out.write_vectored(&slices[idx..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "failed to write frame batch",
                    ));
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            while idx < slices.len() && n >= slices[idx].len() {
                n -= slices[idx].len();
                idx += 1;
            }
            partial = n;
        }
        self.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7F]),
            (128, &[0x80, 0x01]),
            (300, &[0xAC, 0x02]),
            (
                u64::MAX,
                &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01],
            ),
        ];
        for (v, expect) in cases {
            let mut w = Writer::new();
            w.put_varint(*v);
            assert_eq!(w.as_slice(), *expect, "varint({v})");
        }
    }

    #[test]
    fn integers_are_little_endian() {
        let mut w = Writer::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn with_capacity_and_len() {
        let mut w = Writer::with_capacity(64);
        assert!(w.is_empty());
        w.put_str("abc");
        assert_eq!(w.len(), 4); // 1-byte length + 3 bytes
    }

    #[test]
    fn frame_batch_matches_single_frame_writer() {
        let frames: Vec<Vec<u8>> = vec![b"alpha".to_vec(), Vec::new(), vec![0xAB; 300]];

        let mut batch = FrameBatch::new();
        let mut offsets = Vec::new();
        for f in &frames {
            offsets.push(batch.push(f.clone()).unwrap());
        }
        assert_eq!(batch.frames(), 3);
        assert_eq!(offsets, vec![0, 9, 13]);

        let mut batched = Vec::new();
        batch.write_to(&mut batched).unwrap();
        assert!(batch.is_empty(), "emit clears the batch");
        assert_eq!(batch.byte_len(), 0);

        let mut sequential = Vec::new();
        for f in &frames {
            crate::frame::write_frame_to(&mut sequential, f).unwrap();
        }
        assert_eq!(batched, sequential, "byte-identical to per-frame writes");

        // And the standard frame reader round-trips the batch output.
        let mut cursor = std::io::Cursor::new(batched);
        for f in &frames {
            assert_eq!(
                crate::frame::read_frame_from(&mut cursor).unwrap().as_deref(),
                Some(f.as_slice())
            );
        }
        assert_eq!(crate::frame::read_frame_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn frame_batch_rejects_oversized_payload() {
        let mut batch = FrameBatch::new();
        batch.push(vec![0u8; 16]).unwrap();
        let err = batch.push(vec![0u8; crate::MAX_LEN + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // The reject staged nothing: the earlier frame is still intact.
        assert_eq!(batch.frames(), 1);
        assert_eq!(batch.byte_len(), 20);
    }

    /// A sink that accepts at most `cap` bytes per call and ignores the
    /// vectored fast path half the time, exercising the short-write resume
    /// logic inside a slice and across slice boundaries.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl std::io::Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_batch_survives_short_writes() {
        for cap in [1usize, 3, 7, 64] {
            let frames: Vec<Vec<u8>> = vec![vec![1; 5], vec![2; 17], Vec::new(), vec![3; 2]];
            let mut batch = FrameBatch::new();
            for f in &frames {
                batch.push(f.clone()).unwrap();
            }
            let mut sink = Dribble {
                out: Vec::new(),
                cap,
                calls: 0,
            };
            batch.write_to(&mut sink).unwrap();

            let mut expect = Vec::new();
            for f in &frames {
                crate::frame::write_frame_to(&mut expect, f).unwrap();
            }
            assert_eq!(sink.out, expect, "cap={cap}");
        }
    }

    #[test]
    fn empty_frame_batch_writes_nothing() {
        struct Explode;
        impl std::io::Write for Explode {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                panic!("empty batch must not touch the sink");
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        FrameBatch::new().write_to(&mut Explode).unwrap();
    }
}
