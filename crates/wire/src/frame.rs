//! Length-delimited record framing for append-only storage files.
//!
//! The ledger's durable backends (`FileStore`, `SegmentStore`) lay blocks out
//! as a sequence of frames — `[u32 le length][payload]` — inside append-only
//! files. The framing lives here, next to the rest of the wire format, so the
//! on-disk layout is specified in exactly one place and both stores (plus any
//! future replication / snapshot shipping code) share one implementation.
//!
//! Segment files additionally open with a [`SegmentHeader`] identifying the
//! file format and the segment's position in the sequence, so a directory of
//! segments can be re-assembled after restart without trusting file names.

use crate::{Codec, Reader, WireError, Writer};
use std::io::{self, Read, Write};

/// Magic bytes opening every segment file (`BPSG` = BlockProv SeGment).
pub const SEGMENT_MAGIC: [u8; 4] = *b"BPSG";

/// Current segment file format version.
pub const SEGMENT_VERSION: u16 = 1;

/// Bytes of framing overhead per record (the `u32` length prefix).
pub const FRAME_OVERHEAD: u64 = 4;

/// Header opening a segment file: magic, format version, sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Format version (readers reject versions they do not understand).
    pub version: u16,
    /// Zero-based position of this segment in the store's sequence.
    pub segment_id: u32,
}

impl SegmentHeader {
    /// Encoded size: 4 magic + 2 version + 4 id.
    pub const ENCODED_LEN: usize = 10;

    /// Header for segment `segment_id` at the current format version.
    pub fn new(segment_id: u32) -> Self {
        Self {
            version: SEGMENT_VERSION,
            segment_id,
        }
    }
}

impl Codec for SegmentHeader {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&SEGMENT_MAGIC);
        w.put_u16(self.version);
        w.put_u32(self.segment_id);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.get_raw(4)?;
        if magic != SEGMENT_MAGIC {
            return Err(WireError::Invalid("bad segment magic"));
        }
        let version = r.get_u16()?;
        if version != SEGMENT_VERSION {
            return Err(WireError::Invalid("unsupported segment version"));
        }
        Ok(Self {
            version,
            segment_id: r.get_u32()?,
        })
    }
}

/// Total on-disk size of a frame carrying `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> u64 {
    FRAME_OVERHEAD + payload_len as u64
}

/// Append one frame to a wire buffer.
pub fn put_frame(w: &mut Writer, payload: &[u8]) {
    w.put_u32(payload.len() as u32);
    w.put_raw(payload);
}

/// Read one frame from a wire reader, borrowing the payload.
pub fn get_frame<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], WireError> {
    let len = r.get_u32()? as usize;
    r.get_raw(len)
}

/// Write one frame to an `io` sink (no flush — callers batch and flush once).
///
/// Rejects payloads over [`crate::MAX_LEN`] *before* anything hits the sink:
/// [`read_frame_from`] enforces the same bound, so an oversized frame that
/// were written durably could never be read back — the store would brick on
/// reopen.
pub fn write_frame_to<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > crate::MAX_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame length {} exceeds limit {} (would be unreadable)",
                payload.len(),
                crate::MAX_LEN
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read the next frame from an `io` source.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary); a partial frame is an error, so torn trailing writes surface
/// loudly instead of being silently dropped.
pub fn read_frame_from<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > crate::MAX_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {}", crate::MAX_LEN),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_header_round_trip() {
        let h = SegmentHeader::new(7);
        let bytes = h.to_wire();
        assert_eq!(bytes.len(), SegmentHeader::ENCODED_LEN);
        assert_eq!(SegmentHeader::from_wire(&bytes).unwrap(), h);
    }

    #[test]
    fn segment_header_rejects_bad_magic_and_version() {
        let mut bytes = SegmentHeader::new(0).to_wire();
        bytes[0] = b'X';
        assert!(SegmentHeader::from_wire(&bytes).is_err());

        let mut bytes = SegmentHeader::new(0).to_wire();
        bytes[4] = 0xFF; // version low byte
        assert!(SegmentHeader::from_wire(&bytes).is_err());
    }

    #[test]
    fn frame_round_trip_in_memory() {
        let mut w = Writer::new();
        put_frame(&mut w, b"alpha");
        put_frame(&mut w, b"");
        put_frame(&mut w, &[9u8; 300]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_frame(&mut r).unwrap(), b"alpha");
        assert_eq!(get_frame(&mut r).unwrap(), b"");
        assert_eq!(get_frame(&mut r).unwrap(), &[9u8; 300][..]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn frame_round_trip_through_io() {
        let mut buf = Vec::new();
        write_frame_to(&mut buf, b"one").unwrap();
        write_frame_to(&mut buf, b"two").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame_from(&mut cursor).unwrap().unwrap(), b"one");
        assert_eq!(read_frame_from(&mut cursor).unwrap().unwrap(), b"two");
        assert_eq!(read_frame_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn torn_trailing_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame_to(&mut buf, b"whole").unwrap();
        buf.extend_from_slice(&(100u32).to_le_bytes());
        buf.extend_from_slice(b"short");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame_from(&mut cursor).unwrap().is_some());
        assert!(read_frame_from(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_rejected_at_write_time() {
        let payload = vec![0u8; crate::MAX_LEN + 1];
        let mut buf = Vec::new();
        let err = write_frame_to(&mut buf, &payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn frame_length_bomb_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame_from(&mut cursor).is_err());
    }

    #[test]
    fn frame_len_accounts_for_prefix() {
        assert_eq!(frame_len(0), 4);
        assert_eq!(frame_len(100), 104);
    }
}
