//! Chain-metadata codec: height-map pages and checkpoint snapshots.
//!
//! PR 2/3 spilled blocks and transaction indexes to disk; this module
//! specifies the on-disk layout for the *remaining* per-block chain
//! metadata — the canonical height→hash table and the checkpoint state
//! snapshot — so a node's resident state can stay O(finality window) over
//! unbounded history and a restart can fast-start from the snapshot instead
//! of re-absorbing all of history.
//!
//! Two record kinds, both framed with the shared [`crate::frame`] framing:
//!
//! * **Height pages**: fixed-width entries (32-byte block hashes) covering a
//!   contiguous height range `[first_height, first_height + entry_count)`.
//!   Entry bytes are opaque at this layer (the ledger writes raw hashes), so
//!   a reader can binary-search a page directory without decoding bodies.
//! * **[`CheckpointSnapshot`]**: everything the chain needs to resume at a
//!   finality checkpoint — its height/hash, the transaction-index and
//!   nonce-floor durability watermarks, and the height-map length at
//!   snapshot time (the self-consistency watermarks crash recovery checks
//!   against). Since version 2 the snapshot carries *only* watermarks: the
//!   per-author nonce floors themselves live in the floor store's disk
//!   pages, so snapshot size no longer grows with the number of authors.

use crate::frame::{read_frame_from, write_frame_to};
use crate::{decode_seq, encode_seq, Codec, Reader, WireError, Writer};
use std::io::{self, Read, Write};

/// Magic bytes opening every height-map page (`BPHM` = BlockProv Height Map).
pub const HEIGHT_MAGIC: [u8; 4] = *b"BPHM";

/// Magic bytes opening every checkpoint snapshot (`BPCS`).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"BPCS";

/// Height-page format version (unchanged since PR 4).
pub const META_VERSION: u16 = 1;

/// Checkpoint-snapshot format version. Version 2 drops the inline
/// per-author `next_nonce` map in favour of nonce-floor watermarks (the
/// floors page to disk beside the height map). A version-1 snapshot fails
/// decode, which readers treat as "no usable snapshot": the node replays
/// from blocks once and writes a fresh version-2 snapshot — self-healing,
/// no migration path needed.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Width in bytes of one height-map entry (a block hash).
pub const HEIGHT_ENTRY_LEN: usize = 32;

/// Header opening every height-map page.
///
/// Pages cover *contiguous* height ranges in append order: page N+1's
/// `first_height` must equal page N's `first_height + entry_count`, so a
/// directory scan can verify gap-freeness without decoding entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeightPageHeader {
    /// Format version (readers reject versions they do not understand).
    pub version: u16,
    /// First height covered by this page.
    pub first_height: u64,
    /// Number of fixed-width entries in the page body.
    pub entry_count: u32,
}

impl Codec for HeightPageHeader {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&HEIGHT_MAGIC);
        w.put_u16(self.version);
        w.put_u64(self.first_height);
        w.put_u32(self.entry_count);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.get_raw(4)?;
        if magic != HEIGHT_MAGIC {
            return Err(WireError::Invalid("bad height page magic"));
        }
        let version = r.get_u16()?;
        if version != META_VERSION {
            return Err(WireError::Invalid("unsupported height page version"));
        }
        Ok(Self {
            version,
            first_height: r.get_u64()?,
            entry_count: r.get_u32()?,
        })
    }
}

/// Write one height page — header plus fixed-width entry bytes — as a single
/// frame. No flush; callers batch pages and flush once.
pub fn write_height_page_to<W: Write>(
    w: &mut W,
    header: &HeightPageHeader,
    entry_bytes: &[u8],
) -> io::Result<()> {
    debug_assert_eq!(
        entry_bytes.len(),
        header.entry_count as usize * HEIGHT_ENTRY_LEN,
        "height page body must be entry_count fixed-width entries"
    );
    let mut body = header.to_wire();
    body.extend_from_slice(entry_bytes);
    write_frame_to(w, &body)
}

/// Read the next height page, returning its header and raw entry bytes.
///
/// `Ok(None)` on clean end-of-stream; a torn trailing frame, a bad header,
/// or a body whose length disagrees with `entry_count` is an error (callers
/// decide whether that means tamper-failure or crash-recovery truncation).
pub fn read_height_page_from<R: Read>(
    r: &mut R,
) -> io::Result<Option<(HeightPageHeader, Vec<u8>)>> {
    let Some(body) = read_frame_from(r)? else {
        return Ok(None);
    };
    let mut reader = Reader::new(&body);
    let header = HeightPageHeader::decode(&mut reader)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let rest = reader.remaining();
    if rest != header.entry_count as usize * HEIGHT_ENTRY_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "height page body {} bytes does not match {} fixed-width entries",
                rest, header.entry_count
            ),
        ));
    }
    let entries = reader
        .get_raw(rest)
        .expect("remaining bytes are available")
        .to_vec();
    Ok(Some((header, entries)))
}

/// A checkpoint state snapshot: the chain state a restart resumes from.
///
/// Written atomically (temp + rename) at each finality advance. The hash
/// appears as a raw 32-byte value because the wire layer sits below the
/// ledger's newtypes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSnapshot {
    /// Format version.
    pub version: u16,
    /// Height of the checkpoint block.
    pub height: u64,
    /// Hash of the checkpoint block.
    pub hash: [u8; 32],
    /// Per-partition durable height watermarks of the transaction index at
    /// snapshot time (empty when no index is attached).
    pub index_watermarks: Vec<u64>,
    /// Height through which the transaction index was last fully synced —
    /// entries at or below this height are guaranteed durable, so crash
    /// recovery only re-derives `(index_durable_height, height]`.
    pub index_durable_height: u64,
    /// Per-partition durable height watermarks of the nonce-floor store at
    /// snapshot time.
    pub floor_watermarks: Vec<u64>,
    /// Height through which the nonce floors were last fully synced; floors
    /// raised by finalizing heights in `(floor_durable_height, height]`
    /// were staged when the snapshot was cut and are re-derived from blocks
    /// on reopen.
    pub floor_durable_height: u64,
    /// Durable height-map length (heights covered by flushed pages) at
    /// snapshot time; a shorter map on reopen marks a torn tail to heal.
    pub height_map_len: u64,
}

impl Codec for CheckpointSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&SNAPSHOT_MAGIC);
        w.put_u16(self.version);
        w.put_u64(self.height);
        self.hash.encode(w);
        encode_seq(&self.index_watermarks, w);
        w.put_u64(self.index_durable_height);
        encode_seq(&self.floor_watermarks, w);
        w.put_u64(self.floor_durable_height);
        w.put_u64(self.height_map_len);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.get_raw(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::Invalid("bad snapshot magic"));
        }
        let version = r.get_u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::Invalid("unsupported snapshot version"));
        }
        Ok(Self {
            version,
            height: r.get_u64()?,
            hash: <[u8; 32]>::decode(r)?,
            index_watermarks: decode_seq(r)?,
            index_durable_height: r.get_u64()?,
            floor_watermarks: decode_seq(r)?,
            floor_durable_height: r.get_u64()?,
            height_map_len: r.get_u64()?,
        })
    }
}

/// Write a snapshot as one frame (callers write to a temp file and rename).
pub fn write_snapshot_to<W: Write>(w: &mut W, snapshot: &CheckpointSnapshot) -> io::Result<()> {
    write_frame_to(w, &snapshot.to_wire())
}

/// Read a snapshot frame. `Ok(None)` on a clean empty stream; torn or
/// corrupt bytes are an error (callers treat that as "no usable snapshot" —
/// blocks stay authoritative).
pub fn read_snapshot_from<R: Read>(r: &mut R) -> io::Result<Option<CheckpointSnapshot>> {
    let Some(body) = read_frame_from(r)? else {
        return Ok(None);
    };
    CheckpointSnapshot::from_wire(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(first: u64, count: u32) -> (HeightPageHeader, Vec<u8>) {
        let header = HeightPageHeader {
            version: META_VERSION,
            first_height: first,
            entry_count: count,
        };
        let mut bytes = Vec::new();
        for i in 0..count {
            bytes.extend_from_slice(&[(first as u8).wrapping_add(i as u8); HEIGHT_ENTRY_LEN]);
        }
        (header, bytes)
    }

    fn snapshot() -> CheckpointSnapshot {
        CheckpointSnapshot {
            version: SNAPSHOT_VERSION,
            height: 42,
            hash: [7u8; 32],
            index_watermarks: vec![40, 0, 41, 12],
            index_durable_height: 38,
            floor_watermarks: vec![39, 41],
            floor_durable_height: 39,
            height_map_len: 40,
        }
    }

    #[test]
    fn height_page_round_trip_through_io() {
        let mut buf = Vec::new();
        let (h0, e0) = page(0, 3);
        let (h1, e1) = page(3, 2);
        write_height_page_to(&mut buf, &h0, &e0).unwrap();
        write_height_page_to(&mut buf, &h1, &e1).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (rh0, re0) = read_height_page_from(&mut cursor).unwrap().unwrap();
        assert_eq!(rh0, h0);
        assert_eq!(re0, e0);
        let (rh1, re1) = read_height_page_from(&mut cursor).unwrap().unwrap();
        assert_eq!(rh1, h1);
        assert_eq!(re1, e1);
        assert!(read_height_page_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn height_page_rejects_bad_magic_and_length_mismatch() {
        let (h, e) = page(0, 2);
        let mut buf = Vec::new();
        write_height_page_to(&mut buf, &h, &e).unwrap();
        buf[4] = b'X'; // magic sits after the 4-byte frame length
        assert!(read_height_page_from(&mut std::io::Cursor::new(buf)).is_err());

        // A body shorter than entry_count * 32 is corrupt, not a page.
        let mut body = h.to_wire();
        body.extend_from_slice(&e[..HEIGHT_ENTRY_LEN]); // one entry missing
        let mut buf = Vec::new();
        crate::frame::write_frame_to(&mut buf, &body).unwrap();
        assert!(read_height_page_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn snapshot_round_trip() {
        let s = snapshot();
        assert_eq!(CheckpointSnapshot::from_wire(&s.to_wire()).unwrap(), s);

        let mut buf = Vec::new();
        write_snapshot_to(&mut buf, &s).unwrap();
        let read = read_snapshot_from(&mut std::io::Cursor::new(buf))
            .unwrap()
            .unwrap();
        assert_eq!(read, s);
    }

    #[test]
    fn snapshot_rejects_bad_magic_version_and_torn_frames() {
        let mut bytes = snapshot().to_wire();
        bytes[0] = b'X';
        assert!(CheckpointSnapshot::from_wire(&bytes).is_err());

        let mut bytes = snapshot().to_wire();
        bytes[4] = 0xFF; // version low byte
        assert!(CheckpointSnapshot::from_wire(&bytes).is_err());

        // Torn frame: length prefix promising more than is present.
        let mut buf = Vec::new();
        write_snapshot_to(&mut buf, &snapshot()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_snapshot_from(&mut std::io::Cursor::new(buf)).is_err());

        // Clean empty stream is "no snapshot", not an error.
        assert!(read_snapshot_from(&mut std::io::Cursor::new(Vec::new()))
            .unwrap()
            .is_none());
    }
}
