//! Zero-copy decoder over a byte slice.

use crate::{WireError, MAX_LEN};

/// A cursor over a byte slice with canonical-format accessors.
///
/// All accessors either consume exactly the bytes of one value or return an
/// error leaving the reader position unspecified (decoding is abandoned on
/// first error across the workspace).
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True if all bytes were consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, WireError> {
        let b = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        Ok(u128::from_le_bytes(arr))
    }

    /// Read a canonical LEB128 varint.
    ///
    /// Overlong encodings (e.g. `0x80 0x00` for zero) are rejected so that
    /// every integer has exactly one wire representation.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                // Canonical form: the final byte of a multi-byte varint must
                // be non-zero, otherwise a shorter encoding exists.
                if shift > 0 && byte == 0 {
                    return Err(WireError::NonCanonicalVarint);
                }
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Read a varint length prefix, bounded by [`MAX_LEN`].
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let n = self.get_varint()?;
        if n > MAX_LEN as u64 {
            return Err(WireError::LengthTooLarge(n));
        }
        Ok(n as usize)
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read length-prefixed bytes as a borrowed slice.
    pub fn get_byte_slice(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Read length-prefixed bytes as an owned vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self.get_byte_slice()?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, WireError> {
        let bytes = self.get_byte_slice()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Writer;

    #[test]
    fn round_trip_all_widths() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_u128(u128::MAX - 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 1);
        assert!(r.is_exhausted());
    }

    #[test]
    fn eof_reports_counts() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.get_u32(),
            Err(WireError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn varint_round_trip_exhaustive_boundaries() {
        for v in [0u64, 1, 0x7F, 0x80, 0x3FFF, 0x4000, u64::MAX / 2, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn length_limit_enforced() {
        let mut w = Writer::new();
        w.put_varint((MAX_LEN as u64) + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_len(), Err(WireError::LengthTooLarge(_))));
    }

    #[test]
    fn position_tracks_consumption() {
        let bytes = [0u8; 10];
        let mut r = Reader::new(&bytes);
        r.get_raw(3).unwrap();
        assert_eq!(r.position(), 3);
        assert_eq!(r.remaining(), 7);
    }
}
