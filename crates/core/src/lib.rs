//! The configurable provenance-ledger framework.
//!
//! This crate operationalizes the paper's §6.1 "Design Considerations": a
//! [`ProvenanceLedger`] is assembled from explicit choices along every axis
//! the paper names —
//!
//! | §6.1 axis | Type |
//! |---|---|
//! | Blockchain choice | [`BlockchainKind`] (public PoW / private PoA / consortium PoS) |
//! | Domain | [`blockprov_provenance::Domain`] + the domain crates |
//! | Access control | RBAC engine + ledger views (from `blockprov-access`) |
//! | Provenance capture | [`blockprov_provenance::CapturePathway`] (Figure 3) |
//! | Provenance query | indexed engine + repeated-query cache |
//! | Evaluation | every component exposes counters; see `blockprov-bench` |
//!
//! It also contains the RQ1 reproduction: [`cloud::CloudAuditor`], a
//! ProvChain [47]-style cloud-storage auditing pipeline (file operations →
//! provenance records → block anchoring → user-verifiable Merkle proofs,
//! with hashed user identities for privacy).

pub mod cloud;
pub mod config;
pub mod design;
pub mod ledger;
pub mod offchain;

pub use cloud::{CloudAuditor, CloudOpKind, CloudReport};
pub use config::{BlockchainKind, LedgerConfig, StorageMode};
pub use design::{table2, DomainProfile};
pub use ledger::{CoreError, LedgerReader, ProvenanceLedger, RecordProof};
pub use offchain::OffChainStore;

/// Transaction kind tags used by the framework.
pub mod txkind {
    /// Provenance record payload.
    pub const PROVENANCE: u16 = 1;
    /// Smart-contract invocation.
    pub const CONTRACT_CALL: u16 = 2;
    /// Cross-chain receipt (used by `blockprov-crosschain`).
    pub const CROSS_CHAIN: u16 = 3;
    /// Domain-specific envelope.
    pub const DOMAIN: u16 = 4;
}
