//! Ledger configuration: the §6.1 design axes as one value.

use blockprov_ledger::chain::SignaturePolicy;
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::{CapturePathway, Domain};

/// §6.1 "Blockchain Choice": public vs private vs consortium, and with it
/// the consensus machinery.
#[derive(Debug, Clone)]
pub enum BlockchainKind {
    /// Open-participation chain sealed by proof of work.
    Public {
        /// PoW difficulty in leading zero bits.
        pow_bits: u32,
    },
    /// Private chain sealed round-robin by named authorities.
    Private {
        /// The sealing authorities, in rotation order.
        authorities: Vec<AccountId>,
    },
    /// Consortium chain with stake-weighted leader election.
    Consortium {
        /// `(validator, stake)` table.
        validators: Vec<(AccountId, u64)>,
    },
}

impl BlockchainKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BlockchainKind::Public { .. } => "public/PoW",
            BlockchainKind::Private { .. } => "private/PoA",
            BlockchainKind::Consortium { .. } => "consortium/PoS",
        }
    }
}

/// §6.1 "Provenance Capture" storage decision: everything on-chain, or
/// hash-anchored with payloads off-chain (the ProvChain/IPFS pattern [33]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// Full payload embedded in the transaction.
    OnChainFull,
    /// Only the content digest on-chain; payload in the off-chain store.
    HashAnchored,
}

/// Complete configuration of a [`crate::ProvenanceLedger`].
#[derive(Debug, Clone)]
pub struct LedgerConfig {
    /// Blockchain choice (public/private/consortium).
    pub kind: BlockchainKind,
    /// Capture pathway (Figure 3).
    pub capture: CapturePathway,
    /// Domain schema enforced on records.
    pub domain: Domain,
    /// On-chain vs hash-anchored payload storage.
    pub storage: StorageMode,
    /// Transaction signature enforcement.
    pub signature_policy: SignaturePolicy,
    /// ProvChain-style hashed user identities.
    pub pseudonymize: bool,
    /// Maximum transactions per sealed block.
    pub max_block_txs: usize,
    /// Repeated-query cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Enforce Table 1 required fields on submit.
    pub enforce_schema: bool,
    /// Checkpoint finality depth: blocks this far behind the tip become
    /// irreversible, their fork metadata is pruned and their bodies may be
    /// demoted to the block store's cold tier. `None` keeps every fork
    /// replayable forever (the seed behaviour).
    pub finality_depth: Option<u64>,
    /// Worker threads for the stateless stage of batched block ingest.
    /// `0` = one per available core, `1` = inline (no worker threads).
    /// Chain state is byte-identical at any setting.
    pub ingest_threads: usize,
}

impl LedgerConfig {
    /// A private single-organization ledger: PoA with one authority,
    /// store-emitted capture, hash-anchored storage — the configuration the
    /// RQ1 cloud-audit scenario uses.
    pub fn private_default() -> Self {
        Self {
            kind: BlockchainKind::Private {
                authorities: vec![AccountId::from_name("authority-0")],
            },
            capture: CapturePathway::DataStoreEmitted,
            domain: Domain::Cloud,
            storage: StorageMode::HashAnchored,
            signature_policy: SignaturePolicy::Off,
            pseudonymize: true,
            max_block_txs: 1_000,
            cache_capacity: 256,
            enforce_schema: true,
            finality_depth: None,
            ingest_threads: 0,
        }
    }

    /// A public PoW-anchored ledger (ProvChain's original deployment model).
    pub fn public_default() -> Self {
        Self {
            kind: BlockchainKind::Public { pow_bits: 8 },
            capture: CapturePathway::UserDirect,
            domain: Domain::Cloud,
            storage: StorageMode::HashAnchored,
            signature_policy: SignaturePolicy::Off,
            pseudonymize: true,
            max_block_txs: 1_000,
            cache_capacity: 256,
            enforce_schema: true,
            finality_depth: None,
            ingest_threads: 0,
        }
    }

    /// A consortium ledger with `n` equal-stake validators.
    pub fn consortium(n: usize) -> Self {
        Self {
            kind: BlockchainKind::Consortium {
                validators: (0..n)
                    .map(|i| (AccountId::from_name(&format!("validator-{i}")), 100))
                    .collect(),
            },
            capture: CapturePathway::ThirdParty {
                decentralized: true,
            },
            domain: Domain::Generic,
            storage: StorageMode::HashAnchored,
            signature_policy: SignaturePolicy::Off,
            pseudonymize: false,
            max_block_txs: 1_000,
            cache_capacity: 256,
            enforce_schema: false,
            finality_depth: None,
            ingest_threads: 0,
        }
    }

    /// Builder: set the domain.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Builder: set the capture pathway.
    pub fn with_capture(mut self, capture: CapturePathway) -> Self {
        self.capture = capture;
        self
    }

    /// Builder: set the storage mode.
    pub fn with_storage(mut self, storage: StorageMode) -> Self {
        self.storage = storage;
        self
    }

    /// Builder: enable checkpoint finality at `depth` blocks behind the tip.
    pub fn with_finality(mut self, depth: u64) -> Self {
        self.finality_depth = Some(depth);
        self
    }

    /// Builder: set the worker-thread count for the stateless stage of
    /// batched ingest (`0` = one per core, `1` = inline).
    pub fn with_ingest_threads(mut self, threads: usize) -> Self {
        self.ingest_threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        let p = LedgerConfig::private_default();
        assert!(matches!(p.kind, BlockchainKind::Private { .. }));
        assert_eq!(p.storage, StorageMode::HashAnchored);
        assert!(p.pseudonymize);

        let pu = LedgerConfig::public_default();
        assert!(matches!(pu.kind, BlockchainKind::Public { pow_bits: 8 }));

        let co = LedgerConfig::consortium(4);
        match &co.kind {
            BlockchainKind::Consortium { validators } => assert_eq!(validators.len(), 4),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn builders_override_axes() {
        let c = LedgerConfig::private_default()
            .with_domain(Domain::SupplyChain)
            .with_capture(CapturePathway::MultiSource { sources: 3 })
            .with_storage(StorageMode::OnChainFull);
        assert_eq!(c.domain, Domain::SupplyChain);
        assert_eq!(c.storage, StorageMode::OnChainFull);
    }

    #[test]
    fn labels() {
        assert_eq!(LedgerConfig::private_default().kind.label(), "private/PoA");
        assert_eq!(LedgerConfig::public_default().kind.label(), "public/PoW");
        assert_eq!(LedgerConfig::consortium(2).kind.label(), "consortium/PoS");
    }
}
