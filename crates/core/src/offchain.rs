//! Content-addressed off-chain payload store.
//!
//! Stands in for the OpenStack Swift / IPFS stores the surveyed systems use
//! ([33], [56], HealthBlock [1]): payloads live off-chain, addressed by
//! digest; the chain carries only the digest. Experiment E3 measures the
//! on-chain byte savings this split produces.

use blockprov_crypto::sha256::{sha256, Hash256};
use std::collections::HashMap;

/// A content-addressed blob store.
#[derive(Debug, Default)]
pub struct OffChainStore {
    blobs: HashMap<Hash256, Vec<u8>>,
    bytes: u64,
}

impl OffChainStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store content, returning its address. Idempotent.
    pub fn put(&mut self, content: &[u8]) -> Hash256 {
        let addr = sha256(content);
        if !self.blobs.contains_key(&addr) {
            self.bytes += content.len() as u64;
            self.blobs.insert(addr, content.to_vec());
        }
        addr
    }

    /// Fetch content by address.
    pub fn get(&self, addr: &Hash256) -> Option<&[u8]> {
        self.blobs.get(addr).map(Vec::as_slice)
    }

    /// Verify that stored content still matches its address (bit-rot /
    /// tamper check on the off-chain side).
    pub fn verify(&self, addr: &Hash256) -> bool {
        self.get(addr).is_some_and(|c| sha256(c) == *addr)
    }

    /// Number of blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total payload bytes held off-chain.
    pub fn stored_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = OffChainStore::new();
        let addr = s.put(b"payload");
        assert_eq!(s.get(&addr), Some(b"payload".as_slice()));
        assert!(s.verify(&addr));
        assert_eq!(s.len(), 1);
        assert_eq!(s.stored_bytes(), 7);
    }

    #[test]
    fn idempotent_put_does_not_double_count() {
        let mut s = OffChainStore::new();
        s.put(b"same");
        s.put(b"same");
        assert_eq!(s.len(), 1);
        assert_eq!(s.stored_bytes(), 4);
    }

    #[test]
    fn missing_address() {
        let s = OffChainStore::new();
        assert_eq!(s.get(&sha256(b"ghost")), None);
        assert!(!s.verify(&sha256(b"ghost")));
    }
}
