//! ProvChain-style cloud-storage auditing (the RQ1 reproduction).
//!
//! ProvChain [47] hooks a cloud storage service (ownCloud in the paper) so
//! every user file operation produces a provenance record that is hashed
//! into blockchain transactions; a *block confirmation* later, users can
//! request Merkle-proof validation of their operations from an auditor.
//! Privacy comes from publishing hashed user ids rather than identities.
//!
//! [`CloudAuditor`] reproduces that loop: file operations → capture →
//! transactions → sealed blocks → [`crate::RecordProof`]s a user verifies
//! against the block header without trusting the auditor.

use crate::config::LedgerConfig;
use crate::ledger::{CoreError, ProvenanceLedger, RecordProof};
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, RecordId};
use blockprov_provenance::query::ProvQuery;

/// Cloud file operations audited by ProvChain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudOpKind {
    /// File created/uploaded.
    Upload,
    /// File content read.
    Read,
    /// File content changed.
    Update,
    /// File shared with another user.
    Share,
    /// File removed.
    Delete,
}

impl CloudOpKind {
    fn action(&self) -> Action {
        match self {
            CloudOpKind::Upload => Action::Create,
            CloudOpKind::Read => Action::Read,
            CloudOpKind::Update => Action::Update,
            CloudOpKind::Share => Action::Share,
            CloudOpKind::Delete => Action::Delete,
        }
    }
}

/// Summary counters for an auditing session (experiment E4).
#[derive(Debug, Default, Clone)]
pub struct CloudReport {
    /// File operations processed.
    pub operations: u64,
    /// Blocks sealed.
    pub blocks: u64,
    /// Proofs issued to users.
    pub proofs_issued: u64,
    /// Total serialized proof bytes.
    pub proof_bytes: u64,
}

/// The auditing service wrapping a provenance ledger.
pub struct CloudAuditor {
    ledger: ProvenanceLedger,
    /// Seal automatically after this many pending operations.
    batch_size: usize,
    report: CloudReport,
}

impl CloudAuditor {
    /// Create over a (typically `Domain::Cloud`) ledger configuration.
    pub fn new(config: LedgerConfig, batch_size: usize) -> Self {
        Self {
            ledger: ProvenanceLedger::open(config),
            batch_size: batch_size.max(1),
            report: CloudReport::default(),
        }
    }

    /// Register a storage user.
    pub fn register_user(&mut self, name: &str) -> Result<AccountId, CoreError> {
        self.ledger.register_agent(name)
    }

    /// Record one file operation; seals a block when the batch fills
    /// (ProvChain's "block confirmation" granularity).
    pub fn file_op(
        &mut self,
        user: &AccountId,
        file: &str,
        kind: CloudOpKind,
        content: &[u8],
    ) -> Result<RecordId, CoreError> {
        let rid = self
            .ledger
            .apply_operation(user, file, kind.action(), content)?;
        self.report.operations += 1;
        if self.ledger.pending() >= self.batch_size {
            self.seal()?;
        }
        Ok(rid)
    }

    /// Seal any pending operations into a block.
    pub fn seal(&mut self) -> Result<(), CoreError> {
        if self.ledger.pending() > 0 {
            self.ledger.seal_block()?;
            self.report.blocks += 1;
        }
        Ok(())
    }

    /// Auditor-side: produce the proof a user asked for.
    ///
    /// The returned proof is self-contained; the user checks it with
    /// [`CloudAuditor::user_verify`] (or independently) against the block
    /// hash they obtained from the network.
    pub fn issue_proof(&mut self, record: &RecordId) -> Result<RecordProof, CoreError> {
        let proof = self.ledger.prove_record(record)?;
        self.report.proofs_issued += 1;
        self.report.proof_bytes +=
            blockprov_wire::Codec::to_wire(&proof.inclusion.proof).len() as u64;
        Ok(proof)
    }

    /// User-side verification: record body + proof + canonical block check.
    pub fn user_verify(&self, record: &RecordId, proof: &RecordProof) -> bool {
        let Some(body) = self.ledger.record(record) else {
            return false;
        };
        proof.verify(body)
            && self
                .ledger
                .chain()
                .is_canonical(&proof.inclusion.block_hash)
    }

    /// History of a file, oldest first (provenance retrieval, E2).
    pub fn file_history(&mut self, file: &str) -> Vec<RecordId> {
        self.ledger
            .query(&ProvQuery::BySubject(file.to_string()))
            .ids
    }

    /// The session report.
    pub fn report(&self) -> &CloudReport {
        &self.report
    }

    /// Access the underlying ledger (experiments).
    pub fn ledger(&self) -> &ProvenanceLedger {
        &self.ledger
    }

    /// Mutable access to the underlying ledger (experiments).
    pub fn ledger_mut(&mut self) -> &mut ProvenanceLedger {
        &mut self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockprov_ledger::tx::AccountId;

    fn auditor() -> CloudAuditor {
        CloudAuditor::new(LedgerConfig::private_default(), 4)
    }

    #[test]
    fn provchain_loop_record_seal_prove_verify() {
        let mut a = auditor();
        let alice = a.register_user("alice").unwrap();
        let r1 = a
            .file_op(&alice, "thesis.tex", CloudOpKind::Upload, b"v1")
            .unwrap();
        for i in 0..5u8 {
            a.file_op(&alice, "thesis.tex", CloudOpKind::Update, &[i])
                .unwrap();
        }
        a.seal().unwrap();
        let proof = a.issue_proof(&r1).unwrap();
        assert!(a.user_verify(&r1, &proof));
        assert!(a.report().blocks >= 1);
        assert_eq!(a.report().operations, 6);
    }

    #[test]
    fn proof_fails_for_wrong_record() {
        let mut a = auditor();
        let alice = a.register_user("alice").unwrap();
        let r1 = a
            .file_op(&alice, "a.txt", CloudOpKind::Upload, b"a")
            .unwrap();
        let r2 = a
            .file_op(&alice, "b.txt", CloudOpKind::Upload, b"b")
            .unwrap();
        a.seal().unwrap();
        let p1 = a.issue_proof(&r1).unwrap();
        assert!(
            !a.user_verify(&r2, &p1),
            "proof bound to r1 must not verify r2"
        );
    }

    #[test]
    fn pseudonymized_records_hide_user_identity() {
        let mut a = auditor();
        let alice = a.register_user("alice").unwrap();
        let rid = a.file_op(&alice, "f", CloudOpKind::Upload, b"x").unwrap();
        let record = a.ledger().record(&rid).unwrap();
        assert_ne!(record.agent, alice, "on-chain agent is a pseudonym");
        assert_ne!(record.agent, AccountId::from_name("alice"));
    }

    #[test]
    fn auto_seal_at_batch_size() {
        let mut a = auditor(); // batch 4
        let u = a.register_user("u").unwrap();
        for i in 0..8u8 {
            a.file_op(&u, "f", CloudOpKind::Update, &[i]).unwrap();
        }
        assert_eq!(a.report().blocks, 2, "two auto-sealed blocks");
        assert_eq!(a.ledger().pending(), 0);
    }

    #[test]
    fn file_history_in_order() {
        let mut a = auditor();
        let u = a.register_user("u").unwrap();
        let expect = vec![
            a.file_op(&u, "f", CloudOpKind::Upload, b"1").unwrap(),
            a.file_op(&u, "f", CloudOpKind::Update, b"2").unwrap(),
            a.file_op(&u, "f", CloudOpKind::Read, b"").unwrap(),
        ];
        a.seal().unwrap();
        assert_eq!(a.file_history("f"), expect);
    }

    #[test]
    fn tampering_detected_by_verification() {
        let mut a = auditor();
        let u = a.register_user("u").unwrap();
        let rid = a.file_op(&u, "f", CloudOpKind::Upload, b"honest").unwrap();
        a.seal().unwrap();
        let mut proof = a.issue_proof(&rid).unwrap();
        // Tamper with the claimed header.
        proof.inclusion.header.timestamp_ms += 1;
        assert!(!a.user_verify(&rid, &proof));
    }
}
