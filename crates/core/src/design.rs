//! Table 2 — "Considerations in Blockchain Collaborative Applications for
//! Provenance Across Domains" — as data.
//!
//! Each domain crate implements the mechanisms behind its column; this
//! module carries the table itself so the bench harness can regenerate it
//! (experiment T2) and examples can introspect the design space.

use blockprov_provenance::Domain;

/// One column of Table 2: a domain and its design considerations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainProfile {
    /// The domain.
    pub domain: Domain,
    /// The consideration rows, in the paper's order.
    pub considerations: &'static [&'static str],
    /// Which blockprov crate implements the mechanisms.
    pub implemented_by: &'static str,
}

/// The five columns of the paper's Table 2.
pub fn table2() -> Vec<DomainProfile> {
    vec![
        DomainProfile {
            domain: Domain::ScientificCollaboration,
            considerations: &[
                "Intellectual property",
                "Managing data workflow, private data inputs",
                "Flexibility for re-execution",
                "Invalidating tasks",
            ],
            implemented_by: "blockprov-sciwork",
        },
        DomainProfile {
            domain: Domain::DigitalForensics,
            considerations: &[
                "Coordination of investigation stages",
                "Handling multi-modal data",
                "Utilizing AI/ML techniques",
                "Analyzing encrypted data",
            ],
            implemented_by: "blockprov-forensics",
        },
        DomainProfile {
            domain: Domain::MachineLearning,
            considerations: &[
                "Monitoring data gathering for training",
                "Addressing non-IID data",
                "Documenting all steps of training",
                "Managing statistical heterogeneity",
            ],
            implemented_by: "blockprov-mlprov",
        },
        DomainProfile {
            domain: Domain::SupplyChain,
            considerations: &[
                "Device ownership transfer",
                "Illegitimate product registration",
                "Incentives to share provenance",
                "Focus on specific industries",
            ],
            implemented_by: "blockprov-supply",
        },
        DomainProfile {
            domain: Domain::Healthcare,
            considerations: &[
                "Determining data ownership",
                "Manager of access",
                "HIPAA",
                "Goals of collaborations",
            ],
            implemented_by: "blockprov-health",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_five_domains_with_four_rows_each() {
        let t = table2();
        assert_eq!(t.len(), 5);
        for profile in &t {
            assert_eq!(profile.considerations.len(), 4, "{:?}", profile.domain);
            assert!(profile.implemented_by.starts_with("blockprov-"));
        }
    }

    #[test]
    fn table2_matches_paper_cells() {
        let t = table2();
        let supply = t.iter().find(|p| p.domain == Domain::SupplyChain).unwrap();
        assert!(supply
            .considerations
            .contains(&"Illegitimate product registration"));
        let health = t.iter().find(|p| p.domain == Domain::Healthcare).unwrap();
        assert!(health.considerations.contains(&"HIPAA"));
        let ml = t
            .iter()
            .find(|p| p.domain == Domain::MachineLearning)
            .unwrap();
        assert!(ml.considerations.contains(&"Addressing non-IID data"));
    }
}
