//! [`ProvenanceLedger`]: the framework facade assembling chain, capture,
//! graph, query, access control and contracts behind one API.

use crate::config::{BlockchainKind, LedgerConfig, StorageMode};
use crate::offchain::OffChainStore;
use crate::txkind;
use blockprov_access::rbac::{Permission, RbacEngine, Role};
use blockprov_access::views::ViewManager;
use blockprov_consensus::poa::AuthoritySet;
use blockprov_consensus::pos::ValidatorSet;
use blockprov_consensus::pow;
use blockprov_contracts::ContractRuntime;
use blockprov_crypto::sha256::{sha256, Hash256};
use blockprov_ledger::block::{Block, BlockHash};
use blockprov_ledger::chain::{
    AppendOutcome, BatchError, Chain, ChainConfig, ChainReader, ChainView, TxInclusionProof,
    ValidationError,
};
use blockprov_ledger::mempool::{Mempool, MempoolError};
use blockprov_ledger::tx::{AccountId, Transaction, TxId};
use blockprov_provenance::capture::{CaptureError, CapturePipeline, DataOperation};
use blockprov_provenance::graph::{GraphError, ProvGraph};
use blockprov_provenance::model::{Action, MissingField, ProvenanceRecord, RecordId};
use blockprov_provenance::query::{ProvQuery, QueryCache, QueryEngine, QueryResult};
use blockprov_wire::Codec;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Framework-level errors.
#[derive(Debug)]
pub enum CoreError {
    /// Chain-level validation failure.
    Chain(ValidationError),
    /// Mempool refusal.
    Mempool(MempoolError),
    /// Capture pathway refusal.
    Capture(CaptureError),
    /// DAG violation.
    Graph(GraphError),
    /// Table 1 schema violation.
    Schema(MissingField),
    /// Unknown agent (not registered).
    UnknownAgent(AccountId),
    /// PoW search exhausted its budget.
    MiningFailed,
    /// Record not found on the canonical chain.
    UnknownRecord(RecordId),
    /// The durable transaction index failed a read (corruption or I/O) —
    /// surfaced loudly instead of rebuilding a partial provenance graph.
    IndexIo(std::io::Error),
    /// A batched block ingest stopped at an invalid block. Blocks before
    /// it committed; the failing block and everything after it did not.
    Batch(BatchError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Chain(e) => write!(f, "chain: {e}"),
            CoreError::Mempool(e) => write!(f, "mempool: {e}"),
            CoreError::Capture(e) => write!(f, "capture: {e}"),
            CoreError::Graph(e) => write!(f, "graph: {e}"),
            CoreError::Schema(e) => write!(f, "schema: {e}"),
            CoreError::UnknownAgent(a) => write!(f, "unknown agent {a}"),
            CoreError::MiningFailed => write!(f, "mining budget exhausted"),
            CoreError::UnknownRecord(r) => write!(f, "unknown record {r}"),
            CoreError::IndexIo(e) => write!(f, "transaction index read failed: {e}"),
            CoreError::Batch(e) => write!(f, "ingest: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ValidationError> for CoreError {
    fn from(e: ValidationError) -> Self {
        CoreError::Chain(e)
    }
}
impl From<MempoolError> for CoreError {
    fn from(e: MempoolError) -> Self {
        CoreError::Mempool(e)
    }
}
impl From<CaptureError> for CoreError {
    fn from(e: CaptureError) -> Self {
        CoreError::Capture(e)
    }
}
impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}
impl From<BatchError> for CoreError {
    fn from(e: BatchError) -> Self {
        CoreError::Batch(e)
    }
}

/// A self-contained, user-verifiable proof that a provenance record is
/// anchored on the chain — what a ProvChain auditor hands back to a client.
#[derive(Debug, Clone)]
pub struct RecordProof {
    /// The proven record id.
    pub record_id: RecordId,
    /// The transaction carrying the record.
    pub tx_id: TxId,
    /// Inclusion proof of the transaction in its block.
    pub inclusion: TxInclusionProof,
}

impl RecordProof {
    /// Verify the whole chain of custody of the proof:
    /// record → transaction payload → Merkle root → block hash.
    pub fn verify(&self, record: &ProvenanceRecord) -> bool {
        if record.id() != self.record_id {
            return false;
        }
        self.inclusion.tx_id == self.tx_id && self.inclusion.verify()
    }
}

/// A cloneable, `Send + Sync` query handle over a [`ProvenanceLedger`]'s
/// chain, obtained from [`ProvenanceLedger::reader`].
///
/// Backed by the chain's epoch-published snapshots and the durable tiers'
/// published states: every method answers without blocking the writer, and
/// multi-step queries that must agree with each other can pin one snapshot
/// via [`LedgerReader::view`].
#[derive(Debug, Clone)]
pub struct LedgerReader {
    chain: ChainReader,
}

impl LedgerReader {
    /// The underlying chain read handle.
    pub fn chain(&self) -> &ChainReader {
        &self.chain
    }

    /// Pin the latest published snapshot for a prefix-consistent view.
    pub fn view(&self) -> ChainView {
        self.chain.view()
    }

    /// Current published tip hash.
    pub fn tip(&self) -> BlockHash {
        self.chain.tip()
    }

    /// Current published tip height.
    pub fn height(&self) -> u64 {
        self.chain.height()
    }

    /// Current published finality checkpoint height.
    pub fn finalized_height(&self) -> u64 {
        self.chain.finalized_height()
    }

    /// Canonical block hash at `height`.
    pub fn hash_at(&self, height: u64) -> Option<BlockHash> {
        self.chain.hash_at(height)
    }

    /// Fetch a stored block by hash.
    pub fn block(&self, hash: &BlockHash) -> Option<std::sync::Arc<Block>> {
        self.chain.block(hash)
    }

    /// Fetch the canonical block at `height`.
    pub fn block_at(&self, height: u64) -> Option<std::sync::Arc<Block>> {
        self.chain.block_at(height)
    }

    /// Locate a canonical transaction: `(containing block hash, position)`.
    pub fn tx_by_id(&self, id: &TxId) -> Option<(BlockHash, u32)> {
        self.chain.tx_by_id(id)
    }

    /// Fetch a canonical transaction by id.
    pub fn get_tx(&self, id: &TxId) -> Option<Transaction> {
        self.chain.get_tx(id)
    }

    /// All canonical transaction ids by author, oldest first.
    pub fn txs_by_author(&self, author: &AccountId) -> Vec<TxId> {
        self.chain.txs_by_author(author)
    }

    /// All canonical transaction ids with the given kind tag, oldest first.
    pub fn txs_by_kind(&self, kind: u16) -> Vec<TxId> {
        self.chain.txs_by_kind(kind)
    }

    /// All canonical provenance-carrying transaction ids, oldest first.
    pub fn provenance_txs(&self) -> Vec<TxId> {
        self.chain.txs_by_kind(txkind::PROVENANCE)
    }

    /// Whether `hash` lies on the canonical chain.
    pub fn is_canonical(&self, hash: &BlockHash) -> bool {
        self.chain.is_canonical(hash)
    }

    /// Produce a Merkle inclusion proof for a canonical transaction.
    pub fn prove_tx(&self, id: &TxId) -> Option<TxInclusionProof> {
        self.chain.prove_tx(id)
    }

    /// Produce a user-verifiable anchoring proof for a sealed record whose
    /// carrying transaction id is known (e.g. from
    /// [`ProvenanceLedger::prove_record`]'s mapping at seal time).
    pub fn prove_record_tx(&self, record_id: RecordId, tx_id: TxId) -> Option<RecordProof> {
        let inclusion = self.chain.prove_tx(&tx_id)?;
        Some(RecordProof {
            record_id,
            tx_id,
            inclusion,
        })
    }
}

/// The assembled provenance ledger.
pub struct ProvenanceLedger {
    config: LedgerConfig,
    chain: Chain,
    mempool: Mempool,
    capture: CapturePipeline,
    graph: ProvGraph,
    engine: QueryEngine,
    cache: QueryCache,
    offchain: OffChainStore,
    /// Role-based access control over ledger operations.
    pub rbac: RbacEngine,
    /// LedgerView-style filtered views.
    pub views: ViewManager,
    /// Smart-contract runtime (state root sealed into headers).
    pub contracts: ContractRuntime,
    authorities: AuthoritySet,
    validators: ValidatorSet,
    epoch_seed: Hash256,
    agents: BTreeMap<AccountId, String>,
    nonces: HashMap<AccountId, u64>,
    /// record → carrying tx (filled at seal time).
    record_tx: HashMap<RecordId, TxId>,
    /// Logical clock (ms); deterministic and strictly monotonic.
    now_ms: u64,
}

impl ProvenanceLedger {
    /// The chain-level validation parameters implied by a ledger config.
    fn chain_config(config: &LedgerConfig) -> ChainConfig {
        ChainConfig {
            signature_policy: config.signature_policy,
            require_pow: matches!(config.kind, BlockchainKind::Public { .. }),
            max_block_txs: config.max_block_txs,
            timestamp_tolerance_ms: 5_000,
            enforce_nonces: false,
            finality_depth: config.finality_depth,
            ingest_threads: config.ingest_threads,
        }
    }

    /// Open a fresh ledger under `config` (in-memory block store).
    pub fn open(config: LedgerConfig) -> Self {
        let chain = Chain::new(Self::chain_config(&config));
        Self::assemble(config, chain)
    }

    /// Open a ledger over a custom block store — typically a
    /// [`blockprov_ledger::segment::TieredStore`] for bounded-memory
    /// operation — replaying any history the store already holds.
    ///
    /// The chain (fork choice, canonical indexes, finality checkpoint) and
    /// the provenance layer (graph, query indexes, record→tx anchoring,
    /// author nonces, logical clock) are all reconstructed from the stored
    /// canonical blocks. Off-chain payloads, agent registrations and
    /// unsealed mempool contents are process state, not chain state, and do
    /// not survive a restart.
    pub fn open_with_store(
        config: LedgerConfig,
        store: Box<dyn blockprov_ledger::store::BlockStore>,
    ) -> std::io::Result<Self> {
        let chain = Chain::replay(store, Self::chain_config(&config))?;
        Self::finish_open(config, chain)
    }

    /// [`ProvenanceLedger::open_with_store`] with a durable transaction
    /// index (see [`blockprov_ledger::index::TxIndex`]).
    ///
    /// The chain's canonical tx indexes rehydrate from the index pages
    /// instead of being rebuilt in RAM — the mutable in-memory index covers
    /// only the non-finalized suffix — and the provenance layer is
    /// reconstructed by walking `txs_by_kind(PROVENANCE)` rather than
    /// re-reading every canonical block.
    pub fn open_with_store_and_index(
        config: LedgerConfig,
        store: Box<dyn blockprov_ledger::store::BlockStore>,
        index: blockprov_ledger::index::TxIndex,
    ) -> std::io::Result<Self> {
        let chain = Chain::replay_with_index(store, index, Self::chain_config(&config))?;
        Self::finish_open(config, chain)
    }

    /// [`ProvenanceLedger::open_with_store_and_index`] plus the durable
    /// metadata tier (see [`blockprov_ledger::meta::MetaStore`]).
    ///
    /// The chain consumes the checkpoint snapshot and height map: when a
    /// snapshot is present, cold start re-validates only the non-finalized
    /// suffix (blocks above the checkpoint) instead of re-absorbing all of
    /// history, resident chain metadata stays O(finality window + live
    /// forks), and a snapshot that contradicts the block store fails the
    /// open loudly. Provenance-graph rehydration still walks the (durable)
    /// provenance-kind index entries, exactly as before.
    pub fn open_with_tiers(
        config: LedgerConfig,
        store: Box<dyn blockprov_ledger::store::BlockStore>,
        index: blockprov_ledger::index::TxIndex,
        meta: blockprov_ledger::meta::MetaStore,
    ) -> std::io::Result<Self> {
        let chain =
            Chain::replay_with_tiers(store, Some(index), meta, Self::chain_config(&config))?;
        Self::finish_open(config, chain)
    }

    fn finish_open(config: LedgerConfig, chain: Chain) -> std::io::Result<Self> {
        let mut ledger = Self::assemble(config, chain);
        ledger.rehydrate_provenance().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("replay: {e}"))
        })?;
        Ok(ledger)
    }

    /// Rebuild the provenance layer from the canonical chain after replay.
    ///
    /// Index-driven: only provenance-carrying transactions are visited (via
    /// the two-tier located-by-kind query, which hands back each entry's
    /// block and position so no per-id point lookup re-probes the index),
    /// in canonical order — blocks with no provenance payload are never
    /// decoded, and consecutive transactions of one block hit the store's
    /// hot cache. A durable-index read failure fails the open loudly
    /// instead of silently rebuilding a partial provenance graph. The
    /// logical clock resumes from the tip header and the visited
    /// records/blocks — for ledger-sealed histories the tip carries the
    /// maximum timestamp.
    fn rehydrate_provenance(&mut self) -> Result<(), CoreError> {
        self.now_ms = self.now_ms.max(self.chain.tip_header().timestamp_ms);
        let located = self
            .chain
            .try_txs_by_kind_located(txkind::PROVENANCE)
            .map_err(CoreError::IndexIo)?;
        for (id, hash, pos) in located {
            // A located entry whose block is unreadable means the index and
            // store disagree (e.g. the store was rolled back without its
            // index directory) — fail the open rather than silently
            // rebuilding a partial provenance graph.
            let block = self.chain.block(&hash).ok_or_else(|| {
                CoreError::IndexIo(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("index entry for {id} references block {hash} missing from the store"),
                ))
            })?;
            let tx = &block.txs[pos as usize];
            self.now_ms = self.now_ms.max(block.header.timestamp_ms);
            // OnChainFull transactions append raw content after the
            // record, so decode from the payload prefix (a payload that
            // is exactly one record is the prefix case with no tail).
            let Some(record) = Self::decode_record_prefix(&tx.payload) else {
                continue;
            };
            let record_id = record.id();
            self.now_ms = self.now_ms.max(record.timestamp_ms);
            let nonce = self.nonces.entry(tx.author).or_insert(0);
            *nonce = (*nonce).max(tx.nonce + 1);
            self.record_tx.insert(record_id, id);
            if self.graph.get(&record_id).is_none() {
                self.graph.insert(record.clone())?;
                self.engine.index_record(record_id, &record);
            }
        }
        Ok(())
    }

    /// Decode a provenance record from the front of an `OnChainFull`
    /// payload (record bytes followed by raw content).
    fn decode_record_prefix(payload: &[u8]) -> Option<ProvenanceRecord> {
        let mut r = blockprov_wire::Reader::new(payload);
        ProvenanceRecord::decode(&mut r).ok()
    }

    /// Assemble the framework around an existing chain.
    fn assemble(config: LedgerConfig, chain: Chain) -> Self {
        let mut capture = CapturePipeline::new(config.capture, config.domain);
        if config.pseudonymize {
            capture = capture.with_pseudonyms(sha256(b"blockprov-epoch-0"));
        }
        let (authorities, validators) = match &config.kind {
            BlockchainKind::Private { authorities } => {
                (AuthoritySet::new(authorities.clone()), ValidatorSet::new())
            }
            BlockchainKind::Consortium { validators } => {
                let mut vs = ValidatorSet::new();
                for (v, s) in validators {
                    vs.bond(*v, *s);
                }
                (AuthoritySet::default(), vs)
            }
            BlockchainKind::Public { .. } => (AuthoritySet::default(), ValidatorSet::new()),
        };
        Self {
            chain,
            mempool: Mempool::new(config.max_block_txs * 64),
            capture,
            graph: ProvGraph::new(),
            engine: QueryEngine::new(),
            cache: QueryCache::new(config.cache_capacity.max(1)),
            offchain: OffChainStore::new(),
            rbac: RbacEngine::new(),
            views: ViewManager::new(),
            contracts: ContractRuntime::new(),
            authorities,
            validators,
            epoch_seed: sha256(b"blockprov-pos-epoch"),
            agents: BTreeMap::new(),
            nonces: HashMap::new(),
            record_tx: HashMap::new(),
            now_ms: 1,
            config,
        }
    }

    /// The configuration this ledger runs under.
    pub fn config(&self) -> &LedgerConfig {
        &self.config
    }

    /// The underlying chain (read access for audits and experiments).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Attach a concurrent, cloneable query handle over the chain.
    ///
    /// The handle is `Send + Sync` and answers from epoch-published chain
    /// snapshots plus the durable tiers' published states, so query threads
    /// never block the sealing/ingest path and never observe torn commit
    /// state. While at least one handle is alive the chain re-publishes a
    /// snapshot at every commit point; queries then lag live state by at
    /// most one commit. Provenance-graph state (records, DAG edges) is not
    /// covered — this is the chain-level view: id/author/kind lookups,
    /// height/hash resolution, block fetch and Merkle inclusion proofs.
    pub fn reader(&mut self) -> LedgerReader {
        LedgerReader {
            chain: self.chain.reader(),
        }
    }

    /// Force a clean-shutdown sync: flush staged commits across every
    /// durable tier and write the checkpoint snapshot the next open
    /// fast-starts from.
    ///
    /// Dropping the ledger performs the same sync implicitly; long-running
    /// services call this explicitly (e.g. on SIGTERM) so a durability
    /// failure surfaces as an error instead of being swallowed by `Drop`.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.chain.sync_meta()
    }

    /// The provenance DAG.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// The off-chain store.
    pub fn offchain(&self) -> &OffChainStore {
        &self.offchain
    }

    /// Capture-pipeline work counters (F3/E4).
    pub fn capture_stats(&self) -> &blockprov_provenance::CaptureStats {
        &self.capture.stats
    }

    /// Query-cache hit/miss counters (E2).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }

    /// Advance the logical clock and return the new time.
    fn tick(&mut self) -> u64 {
        self.now_ms += 1;
        self.now_ms
    }

    /// Current logical time (ms).
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advance the logical clock by one tick and return the new time.
    ///
    /// Domain crates building records directly (rather than through
    /// [`ProvenanceLedger::apply_operation`]) must stamp each record with a
    /// fresh tick so that semantically identical consecutive records (e.g.
    /// repeated disclosure audits) keep distinct content-addressed ids.
    pub fn advance_clock(&mut self) -> u64 {
        self.tick()
    }

    /// Register an agent by name. Grants the default `participant` role and
    /// authenticates the agent with third-party capture pathways.
    pub fn register_agent(&mut self, name: &str) -> Result<AccountId, CoreError> {
        let id = AccountId::from_name(name);
        self.agents.insert(id, name.to_string());
        let role = Role::new("participant");
        self.rbac.grant(&role, Permission::new("record.append"));
        self.rbac.grant(&role, Permission::new("record.read"));
        self.rbac.assign(id, &role);
        self.capture.authenticate(id);
        Ok(id)
    }

    /// Whether an agent is registered.
    pub fn is_registered(&self, agent: &AccountId) -> bool {
        self.agents.contains_key(agent)
    }

    /// Register an entity: captures and submits a `Create` record over the
    /// initial content. Returns the subject name for chaining.
    pub fn register_entity(&mut self, subject: &str, content: &[u8]) -> Result<String, CoreError> {
        // System-level creation uses the first registered agent if any,
        // otherwise an internal system account.
        let agent = self
            .agents
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| AccountId::from_name("system"));
        self.apply_operation(&agent, subject, Action::Create, content)?;
        Ok(subject.to_string())
    }

    /// Record an action with empty content.
    pub fn record_action(
        &mut self,
        agent: &AccountId,
        subject: &str,
        action: Action,
    ) -> Result<RecordId, CoreError> {
        self.apply_operation(agent, subject, action, &[])
    }

    /// Capture one data operation end-to-end: pathway → record → schema
    /// check → (off-chain payload) → mempool transaction.
    pub fn apply_operation(
        &mut self,
        agent: &AccountId,
        subject: &str,
        action: Action,
        content: &[u8],
    ) -> Result<RecordId, CoreError> {
        if !self.agents.contains_key(agent) && *agent != AccountId::from_name("system") {
            return Err(CoreError::UnknownAgent(*agent));
        }
        let ts = self.tick();
        let op = DataOperation {
            user: *agent,
            object: subject.to_string(),
            action,
            timestamp_ms: ts,
            content: content.to_vec(),
        };
        let mut record = self.capture.capture(&op)?;
        // Derivation edge: link to the latest prior record of this subject.
        if let Some(prev) = self
            .engine
            .execute(&self.graph, &ProvQuery::BySubject(subject.to_string()))
            .ids
            .last()
        {
            record = record.with_parent(*prev);
        }
        if self.config.enforce_schema {
            record.validate_schema().map_err(CoreError::Schema)?;
        }
        self.submit_record(record, content)
    }

    /// Submit a pre-built record (domain crates use this directly).
    pub fn submit_record(
        &mut self,
        record: ProvenanceRecord,
        content: &[u8],
    ) -> Result<RecordId, CoreError> {
        let payload = match self.config.storage {
            StorageMode::HashAnchored => {
                if !content.is_empty() {
                    self.offchain.put(content);
                }
                record.to_wire()
            }
            StorageMode::OnChainFull => {
                let mut bytes = record.to_wire();
                bytes.extend_from_slice(content);
                bytes
            }
        };
        let author = record.agent;
        let nonce = self.nonces.entry(author).or_insert(0);
        let tx = Transaction::new(
            author,
            *nonce,
            record.timestamp_ms,
            txkind::PROVENANCE,
            payload,
        );
        *nonce += 1;
        let record_id = record.id();
        self.mempool.insert(tx)?;
        // Insert into the graph immediately (pending); queries see pending
        // records, proofs only exist after sealing.
        self.graph.insert(record.clone())?;
        self.engine.index_record(record_id, &record);
        Ok(record_id)
    }

    /// Seal pending transactions into a block under the configured
    /// consensus. Returns the new block hash (or the current tip if the
    /// mempool was empty).
    pub fn seal_block(&mut self) -> Result<BlockHash, CoreError> {
        let txs = self.mempool.take_batch(self.config.max_block_txs);
        if txs.is_empty() {
            return Ok(self.chain.tip());
        }
        let ts = self.tick();
        let height = self.chain.height() + 1;
        let (proposer, difficulty) = match &self.config.kind {
            BlockchainKind::Public { pow_bits } => (AccountId::from_name("miner-0"), *pow_bits),
            BlockchainKind::Private { .. } => (
                self.authorities
                    .sealer_for(height)
                    .unwrap_or_else(|| AccountId::from_name("authority-0")),
                0,
            ),
            BlockchainKind::Consortium { .. } => (
                self.validators
                    .leader(&self.epoch_seed, height)
                    .unwrap_or_else(|| AccountId::from_name("validator-0")),
                0,
            ),
        };
        let tx_ids: Vec<TxId> = txs.iter().map(Transaction::id).collect();
        let record_ids: Vec<(RecordId, TxId)> = txs
            .iter()
            .filter(|t| t.kind == txkind::PROVENANCE)
            .filter_map(|t| {
                ProvenanceRecord::from_wire(&t.payload)
                    .ok()
                    .map(|r| (r.id(), t.id()))
            })
            .collect();
        let mut block = self.chain.assemble_next(ts, proposer, difficulty, txs);
        block.header.state_root = self.contracts.state_root();
        if difficulty > 0 {
            match pow::mine(&mut block.header, 1 << 28) {
                pow::MiningOutcome::Found { .. } => {}
                pow::MiningOutcome::Exhausted => return Err(CoreError::MiningFailed),
            }
        }
        let outcome = self.chain.append(block)?;
        self.mempool.remove_committed(&tx_ids);
        for (rid, txid) in record_ids {
            self.record_tx.insert(rid, txid);
        }
        Ok(outcome.hash)
    }

    /// Ingest a batch of externally produced blocks (e.g. replicated from
    /// a peer) through the two-stage pipeline: stateless validation fans
    /// out across [`LedgerConfig::ingest_threads`] workers, the serialized
    /// commit section applies fork choice, finality and the provenance
    /// layer per committed block. Durability is batch-granular: the chain
    /// group-flushes every tier once per call, on the error path too, so
    /// blocks this method reports as committed are on disk — which is also
    /// what lets the loop below read the committed prefix's bodies back
    /// for provenance absorption before surfacing the error. Blocks before
    /// the first invalid one commit, and the error reports which block
    /// failed and why (a `StoreIo` error with `index == committed.len()`
    /// means the group flush itself failed; reopen and replay).
    pub fn ingest_blocks(&mut self, blocks: Vec<Block>) -> Result<Vec<AppendOutcome>, CoreError> {
        let (outcomes, err) = match self.chain.append_batch(blocks) {
            Ok(outcomes) => (outcomes, None),
            Err(e) => (e.committed.clone(), Some(e)),
        };
        for outcome in &outcomes {
            let Some(block) = self.chain.block(&outcome.hash) else {
                continue; // already pruned by finality — nothing to absorb
            };
            self.absorb_block_provenance(&block)?;
        }
        match err {
            None => Ok(outcomes),
            Some(e) => Err(CoreError::Batch(e)),
        }
    }

    /// Fold one committed block into the provenance layer: logical clock,
    /// author nonces, record→tx anchoring, graph and query indexes — the
    /// same per-transaction work [`Self::rehydrate_provenance`] does on
    /// replay.
    fn absorb_block_provenance(&mut self, block: &Block) -> Result<(), CoreError> {
        self.now_ms = self.now_ms.max(block.header.timestamp_ms);
        for tx in &block.txs {
            if tx.kind != txkind::PROVENANCE {
                continue;
            }
            let Some(record) = Self::decode_record_prefix(&tx.payload) else {
                continue;
            };
            let record_id = record.id();
            self.now_ms = self.now_ms.max(record.timestamp_ms);
            let nonce = self.nonces.entry(tx.author).or_insert(0);
            *nonce = (*nonce).max(tx.nonce + 1);
            self.record_tx.insert(record_id, tx.id());
            if self.graph.get(&record_id).is_none() {
                self.graph.insert(record.clone())?;
                self.engine.index_record(record_id, &record);
            }
        }
        Ok(())
    }

    /// Number of transactions waiting to be sealed.
    pub fn pending(&self) -> usize {
        self.mempool.len()
    }

    /// Execute a provenance query through the repeated-query cache.
    pub fn query(&mut self, query: &ProvQuery) -> QueryResult {
        self.cache.execute(&self.engine, &self.graph, query)
    }

    /// Fetch a record body by id.
    pub fn record(&self, id: &RecordId) -> Option<&ProvenanceRecord> {
        self.graph.get(id)
    }

    /// Produce a user-verifiable anchoring proof for a sealed record.
    pub fn prove_record(&self, id: &RecordId) -> Result<RecordProof, CoreError> {
        let tx_id = self
            .record_tx
            .get(id)
            .ok_or(CoreError::UnknownRecord(*id))?;
        let inclusion = self
            .chain
            .prove_tx(tx_id)
            .ok_or(CoreError::UnknownRecord(*id))?;
        Ok(RecordProof {
            record_id: *id,
            tx_id: *tx_id,
            inclusion,
        })
    }

    /// Re-verify the whole chain (Figure 2 integrity walk).
    pub fn verify_chain(&self) -> Result<(), CoreError> {
        self.chain.verify_integrity().map_err(CoreError::Chain)
    }

    /// On-chain bytes (block store) — experiment E3.
    pub fn onchain_bytes(&self) -> u64 {
        self.chain.stored_bytes()
    }

    /// Off-chain bytes — experiment E3.
    pub fn offchain_bytes(&self) -> u64 {
        self.offchain.stored_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockprov_provenance::Domain;

    fn ledger() -> ProvenanceLedger {
        ProvenanceLedger::open(LedgerConfig::private_default())
    }

    #[test]
    fn end_to_end_record_seal_prove_verify() {
        let mut l = ledger();
        let alice = l.register_agent("alice").unwrap();
        l.register_entity("report.pdf", b"v1").unwrap();
        let rid = l
            .apply_operation(&alice, "report.pdf", Action::Update, b"v2")
            .unwrap();
        l.seal_block().unwrap();

        let proof = l.prove_record(&rid).unwrap();
        let record = l.record(&rid).unwrap().clone();
        assert!(proof.verify(&record));
        assert!(l.chain().is_canonical(&proof.inclusion.block_hash));
        l.verify_chain().unwrap();
    }

    #[test]
    fn unknown_agent_rejected() {
        let mut l = ledger();
        let ghost = AccountId::from_name("ghost");
        assert!(matches!(
            l.apply_operation(&ghost, "f", Action::Read, &[]),
            Err(CoreError::UnknownAgent(_))
        ));
    }

    #[test]
    fn unsealed_record_has_no_proof_but_is_queryable() {
        let mut l = ledger();
        let alice = l.register_agent("alice").unwrap();
        let rid = l
            .apply_operation(&alice, "f", Action::Create, b"x")
            .unwrap();
        assert!(matches!(
            l.prove_record(&rid),
            Err(CoreError::UnknownRecord(_))
        ));
        let res = l.query(&ProvQuery::BySubject("f".into()));
        assert_eq!(res.ids, vec![rid]);
    }

    #[test]
    fn derivation_chain_links_successive_operations() {
        let mut l = ledger();
        let alice = l.register_agent("alice").unwrap();
        let r1 = l
            .apply_operation(&alice, "f", Action::Create, b"v1")
            .unwrap();
        let r2 = l
            .apply_operation(&alice, "f", Action::Update, b"v2")
            .unwrap();
        let r3 = l
            .apply_operation(&alice, "f", Action::Update, b"v3")
            .unwrap();
        let rec3 = l.record(&r3).unwrap();
        assert_eq!(rec3.parents, vec![r2]);
        let anc = l.graph().ancestors(&r3).unwrap();
        assert_eq!(anc, vec![r2, r1]);
    }

    #[test]
    fn storage_modes_split_bytes_differently() {
        let payload = vec![0xABu8; 4096];
        let mut anchored = ProvenanceLedger::open(
            LedgerConfig::private_default().with_storage(StorageMode::HashAnchored),
        );
        let a = anchored.register_agent("a").unwrap();
        anchored
            .apply_operation(&a, "f", Action::Create, &payload)
            .unwrap();
        anchored.seal_block().unwrap();

        let mut full = ProvenanceLedger::open(
            LedgerConfig::private_default().with_storage(StorageMode::OnChainFull),
        );
        let b = full.register_agent("a").unwrap();
        full.apply_operation(&b, "f", Action::Create, &payload)
            .unwrap();
        full.seal_block().unwrap();

        assert!(full.onchain_bytes() > anchored.onchain_bytes() + 3000);
        assert_eq!(full.offchain_bytes(), 0);
        assert!(anchored.offchain_bytes() >= 4096);
    }

    #[test]
    fn public_chain_mines_and_validates_pow() {
        let mut l = ProvenanceLedger::open(LedgerConfig::public_default());
        let a = l.register_agent("a").unwrap();
        l.apply_operation(&a, "f", Action::Create, b"x").unwrap();
        let hash = l.seal_block().unwrap();
        let block = l.chain().block(&hash).unwrap();
        assert!(block.header.difficulty_bits == 8);
        assert!(block.header.meets_difficulty());
        l.verify_chain().unwrap();
    }

    #[test]
    fn consortium_rotates_stake_weighted_proposers() {
        let mut l =
            ProvenanceLedger::open(LedgerConfig::consortium(4).with_domain(Domain::Generic));
        let a = l.register_agent("a").unwrap();
        let mut proposers = std::collections::BTreeSet::new();
        for i in 0..12 {
            l.apply_operation(&a, &format!("f{i}"), Action::Create, b"x")
                .unwrap();
            let h = l.seal_block().unwrap();
            proposers.insert(l.chain().block(&h).unwrap().header.proposer);
        }
        assert!(proposers.len() > 1, "multiple validators should win");
    }

    #[test]
    fn empty_seal_is_a_noop() {
        let mut l = ledger();
        let tip = l.chain().tip();
        assert_eq!(l.seal_block().unwrap(), tip);
    }

    #[test]
    fn cache_serves_repeated_queries() {
        let mut l = ledger();
        let a = l.register_agent("a").unwrap();
        l.apply_operation(&a, "f", Action::Create, b"x").unwrap();
        let q = ProvQuery::BySubject("f".into());
        let _ = l.query(&q);
        let second = l.query(&q);
        assert!(second.from_cache);
        assert_eq!(l.cache_stats().0, 1);
    }

    fn tiered_store(dir: &std::path::Path) -> Box<dyn blockprov_ledger::store::BlockStore> {
        use blockprov_ledger::segment::{SegmentConfig, TieredConfig, TieredStore};
        Box::new(
            TieredStore::open(
                dir,
                TieredConfig {
                    segment: SegmentConfig {
                        segment_bytes: 64 * 1024,
                    },
                    hot_capacity: 16,
                },
            )
            .unwrap(),
        )
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "blockprov-core-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ledger_over_tiered_store_serves_queries_and_replays_after_restart() {
        let dir = temp_dir("tiered");
        let config = LedgerConfig::private_default().with_finality(4);
        let (rid, tip, height);
        {
            let mut l =
                ProvenanceLedger::open_with_store(config.clone(), tiered_store(&dir)).unwrap();
            let alice = l.register_agent("alice").unwrap();
            l.register_entity("report.pdf", b"v1").unwrap();
            rid = l
                .apply_operation(&alice, "report.pdf", Action::Update, b"v2")
                .unwrap();
            l.seal_block().unwrap();
            // Grow history so finality advances and old blocks go cold.
            for i in 0..12 {
                l.apply_operation(&alice, &format!("f{i}"), Action::Create, b"x")
                    .unwrap();
                l.seal_block().unwrap();
            }
            // Query paths run over the tiered chain.
            let res = l.query(&ProvQuery::BySubject("report.pdf".into()));
            assert_eq!(res.ids.len(), 2);
            let proof = l.prove_record(&rid).unwrap();
            let record = l.record(&rid).unwrap().clone();
            assert!(proof.verify(&record));
            l.verify_chain().unwrap();
            assert!(l.chain().finalized_height() > 0);
            assert!(l.chain().resident_blocks() <= 16);
            tip = l.chain().tip();
            height = l.chain().height();
        }

        // "Restart": replay the same segment directory.
        let mut l = ProvenanceLedger::open_with_store(config, tiered_store(&dir)).unwrap();
        assert_eq!(l.chain().tip(), tip);
        assert_eq!(l.chain().height(), height);
        l.verify_chain().unwrap();
        // Sealed provenance state is reconstructed: graph, query indexes,
        // and record→tx anchoring all survive.
        let res = l.query(&ProvQuery::BySubject("report.pdf".into()));
        assert_eq!(res.ids.len(), 2);
        let record = l.record(&rid).unwrap().clone();
        let proof = l.prove_record(&rid).unwrap();
        assert!(proof.verify(&record));
        // The derivation edge survives replay too.
        assert_eq!(l.graph().ancestors(&rid).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_over_indexed_store_bounds_resident_index_and_replays() {
        use blockprov_ledger::index::{TxIndex, TxIndexConfig};
        let dir = temp_dir("indexed");
        let config = LedgerConfig::private_default().with_finality(4);
        let index_config = TxIndexConfig {
            partitions: 4,
            page_entries: 8,
            cached_pages: 8,
            ..TxIndexConfig::default()
        };
        let open = |config: &LedgerConfig| {
            ProvenanceLedger::open_with_store_and_index(
                config.clone(),
                tiered_store(&dir),
                TxIndex::open(dir.join("txindex"), index_config).unwrap(),
            )
            .unwrap()
        };
        let (rid, tip, height);
        {
            let mut l = open(&config);
            let alice = l.register_agent("alice").unwrap();
            l.register_entity("report.pdf", b"v1").unwrap();
            rid = l
                .apply_operation(&alice, "report.pdf", Action::Update, b"v2")
                .unwrap();
            l.seal_block().unwrap();
            for i in 0..24 {
                l.apply_operation(&alice, &format!("f{i}"), Action::Create, b"x")
                    .unwrap();
                l.seal_block().unwrap();
            }
            // The mutable index covers only the non-finalized suffix…
            let suffix = l.chain().height() - l.chain().finalized_height();
            assert!(
                (l.chain().resident_index_entries() as u64) <= 2 * suffix,
                "resident index entries {} not bounded by suffix {suffix}",
                l.chain().resident_index_entries()
            );
            // …while finalized entries are served from the durable tier.
            assert!(l.chain().tx_index().unwrap().entries() > 0);
            let proof = l.prove_record(&rid).unwrap();
            assert!(proof.verify(&l.record(&rid).unwrap().clone()));
            tip = l.chain().tip();
            height = l.chain().height();
        }

        // Restart: chain queries rehydrate from index pages, and the
        // provenance layer is rebuilt via txs_by_kind.
        let mut l = open(&config);
        assert_eq!(l.chain().tip(), tip);
        assert_eq!(l.chain().height(), height);
        l.verify_chain().unwrap();
        let res = l.query(&ProvQuery::BySubject("report.pdf".into()));
        assert_eq!(res.ids.len(), 2);
        let record = l.record(&rid).unwrap().clone();
        assert!(l.prove_record(&rid).unwrap().verify(&record));
        // Nonces continue, so new operations seal cleanly.
        let alice = l.register_agent("alice").unwrap();
        l.apply_operation(&alice, "f-new", Action::Create, b"y")
            .unwrap();
        l.seal_block().unwrap();
        l.verify_chain().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_over_all_three_tiers_fast_starts_from_snapshot() {
        use blockprov_ledger::index::{TxIndex, TxIndexConfig};
        use blockprov_ledger::meta::{MetaConfig, MetaStore};
        let dir = temp_dir("tiers");
        let config = LedgerConfig::private_default().with_finality(4);
        let index_config = TxIndexConfig {
            partitions: 4,
            page_entries: 8,
            cached_pages: 8,
            ..TxIndexConfig::default()
        };
        let meta_config = MetaConfig {
            page_heights: 8,
            cached_pages: 4,
            ..MetaConfig::default()
        };
        let open = |config: &LedgerConfig| {
            ProvenanceLedger::open_with_tiers(
                config.clone(),
                tiered_store(&dir),
                TxIndex::open(dir.join("txindex"), index_config).unwrap(),
                MetaStore::open(dir.join("meta"), meta_config).unwrap(),
            )
            .unwrap()
        };
        let (rid, tip, height);
        {
            let mut l = open(&config);
            let alice = l.register_agent("alice").unwrap();
            l.register_entity("report.pdf", b"v1").unwrap();
            rid = l
                .apply_operation(&alice, "report.pdf", Action::Update, b"v2")
                .unwrap();
            l.seal_block().unwrap();
            for i in 0..24 {
                l.apply_operation(&alice, &format!("f{i}"), Action::Create, b"x")
                    .unwrap();
                l.seal_block().unwrap();
            }
            // Resident chain metadata is bounded by the finality window,
            // not history.
            let r = l.chain().resident_metadata();
            let suffix = l.chain().height() - l.chain().finalized_height();
            assert!(
                (r.canonical as u64) == suffix + 1,
                "canonical suffix {} vs window {suffix}",
                r.canonical
            );
            tip = l.chain().tip();
            height = l.chain().height();
        }

        // Restart: the chain fast-starts from the snapshot — only the
        // non-finalized suffix is re-validated — while provenance state
        // rehydrates from the durable index as before.
        let mut l = open(&config);
        assert_eq!(l.chain().tip(), tip);
        assert_eq!(l.chain().height(), height);
        assert!(
            l.chain().appended_blocks() <= 5,
            "fast start re-absorbed {} blocks",
            l.chain().appended_blocks()
        );
        l.verify_chain().unwrap();
        let res = l.query(&ProvQuery::BySubject("report.pdf".into()));
        assert_eq!(res.ids.len(), 2);
        let record = l.record(&rid).unwrap().clone();
        assert!(l.prove_record(&rid).unwrap().verify(&record));
        // Nonces continue across the fast start.
        let alice = l.register_agent("alice").unwrap();
        l.apply_operation(&alice, "f-new", Action::Create, b"y")
            .unwrap();
        l.seal_block().unwrap();
        l.verify_chain().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_restores_author_nonces() {
        let dir = temp_dir("nonces");
        let config = LedgerConfig::private_default();
        {
            let mut l =
                ProvenanceLedger::open_with_store(config.clone(), tiered_store(&dir)).unwrap();
            let a = l.register_agent("alice").unwrap();
            for i in 0..3 {
                l.apply_operation(&a, &format!("f{i}"), Action::Create, b"x")
                    .unwrap();
            }
            l.seal_block().unwrap();
        }
        let mut l = ProvenanceLedger::open_with_store(config, tiered_store(&dir)).unwrap();
        // A fresh operation must continue the nonce sequence, not restart it
        // (a restarted sequence would collide in the mempool).
        let a = l.register_agent("alice").unwrap();
        l.apply_operation(&a, "f-new", Action::Create, b"y").unwrap();
        l.seal_block().unwrap();
        l.verify_chain().unwrap();
        assert_eq!(l.chain().height(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_reader_serves_concurrent_queries_while_sealing() {
        let mut l = ProvenanceLedger::open(LedgerConfig::private_default().with_finality(4));
        let alice = l.register_agent("alice").unwrap();
        l.apply_operation(&alice, "f0", Action::Create, b"x").unwrap();
        l.seal_block().unwrap();
        let reader = l.reader();
        let poller = {
            let r = reader.clone();
            std::thread::spawn(move || loop {
                // Every pinned view must be internally consistent no matter
                // where the writer is: the tip resolves at the view's own
                // height.
                let v = r.view();
                assert_eq!(v.hash_at(v.height()), Some(v.tip()), "torn view");
                if v.height() >= 10 {
                    break;
                }
                std::thread::yield_now();
            })
        };
        for i in 1..=12 {
            l.apply_operation(&alice, &format!("f{i}"), Action::Create, b"x")
                .unwrap();
            l.seal_block().unwrap();
        }
        poller.join().unwrap();
        assert_eq!(reader.height(), l.chain().height());
        assert_eq!(reader.tip(), l.chain().tip());
        assert_eq!(reader.provenance_txs().len(), 13);
        let some_id = reader.provenance_txs()[4];
        let proof = reader.prove_tx(&some_id).expect("proof through reader");
        assert!(proof.verify());
    }

    #[test]
    fn schema_enforcement_rejects_incomplete_domain_records() {
        let mut l = ProvenanceLedger::open(
            LedgerConfig::private_default().with_domain(Domain::SupplyChain),
        );
        let a = l.register_agent("factory").unwrap();
        // The capture pipeline does not fill supply-chain fields, so schema
        // enforcement must reject the bare operation.
        assert!(matches!(
            l.apply_operation(&a, "device-1", Action::Create, b""),
            Err(CoreError::Schema(_))
        ));
        // A fully-specified record submitted directly passes.
        let record = ProvenanceRecord::new("device-1", a, Action::Create, 99, Domain::SupplyChain)
            .with_field("unique_product_id", "device-1")
            .with_field("manufacturer_id", "acme");
        l.submit_record(record, b"").unwrap();
    }
}
