//! Steganographic evidence preservation — the AlKhanafseh & Surakhi [13]
//! model.
//!
//! The surveyed design stores evidence with both confidentiality *and*
//! plausible concealment: "a cover file is created from the previous
//! block's data and encrypted to form a cipher file. Evidence is
//! preprocessed, divided into chunks, and encrypted. These encrypted chunks
//! are embedded into the cipher file to create a steganography file, which
//! is then stored in the blockchain through mining, ensuring integrity and
//! confidentiality."
//!
//! Reproduction:
//!
//! 1. the **cover** is expanded deterministically from the previous block's
//!    bytes (so every stego file is bound to its chain position);
//! 2. cover and evidence chunks are encrypted with an HMAC-DRBG keystream
//!    (a CTR-style stream cipher over our own primitives — the workspace's
//!    standing substitution for AES);
//! 3. encrypted chunks are **embedded** between cover segments whose
//!    lengths come from a keyed schedule, so chunk positions are not
//!    recoverable without the key;
//! 4. an encrypted header carries the layout and the evidence digest, so
//!    extraction verifies end-to-end integrity and a wrong key or a single
//!    flipped byte is detected.
//!
//! The produced [`StegoFile`] is an opaque byte blob ready to be carried in
//! a ledger transaction; its digest is what a chain-of-custody record
//! anchors.

use blockprov_crypto::sha256::{hash_parts, sha256, Hash256};
use blockprov_crypto::HmacDrbg;
use std::fmt;

/// Fixed evidence chunk size (bytes).
pub const CHUNK_LEN: usize = 64;
const MAGIC: [u8; 8] = *b"BPSTEGO1";
const HEADER_LEN: usize = 8 + 8 + 8 + 8 + 32; // magic, cover_len, n_chunks, evidence_len, digest

/// A sealed steganographic container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StegoFile {
    /// The opaque container bytes (header ‖ interleaved cover/chunks).
    pub bytes: Vec<u8>,
}

impl StegoFile {
    /// Digest anchored on chain by custody records.
    pub fn digest(&self) -> Hash256 {
        sha256(&self.bytes)
    }

    /// Container size.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the container is empty (never true for sealed files).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Errors from sealing/extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StegoError {
    /// Container too short or header magic mismatch — wrong key or not a
    /// stego file.
    WrongKeyOrCorrupt,
    /// Layout decoded but the evidence digest check failed — tampering.
    IntegrityFailure,
    /// Evidence may not be empty.
    EmptyEvidence,
}

impl fmt::Display for StegoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StegoError::WrongKeyOrCorrupt => write!(f, "wrong key or corrupted container"),
            StegoError::IntegrityFailure => write!(f, "evidence digest mismatch (tampered)"),
            StegoError::EmptyEvidence => write!(f, "evidence must be non-empty"),
        }
    }
}

impl std::error::Error for StegoError {}

/// The evidence vault: holds the symmetric key shared by the investigators
/// authorized to seal and open containers.
pub struct StegoVault {
    key: Hash256,
}

impl fmt::Debug for StegoVault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StegoVault").finish_non_exhaustive()
    }
}

/// XOR `data` with a domain-separated keystream.
fn xor_stream(key: &Hash256, label: &str, index: u64, data: &mut [u8]) {
    let seed = hash_parts(
        "blockprov-stego-stream",
        &[key.as_bytes(), label.as_bytes(), &index.to_le_bytes()],
    );
    let mut drbg = HmacDrbg::from_hash(&seed);
    let mut pad = vec![0u8; data.len()];
    drbg.fill_bytes(&mut pad);
    for (b, p) in data.iter_mut().zip(pad) {
        *b ^= p;
    }
}

impl StegoVault {
    /// Derive the vault key from a passphrase.
    pub fn new(passphrase: &[u8]) -> Self {
        Self { key: hash_parts("blockprov-stego-key", &[passphrase]) }
    }

    /// Segment-length schedule: how much cover precedes each embedded
    /// chunk. Keyed, so positions are unrecoverable without the key.
    fn schedule(&self, cover_len: usize, n_chunks: usize) -> Vec<usize> {
        let base = cover_len / (n_chunks + 1);
        let seed = hash_parts(
            "blockprov-stego-layout",
            &[
                self.key.as_bytes(),
                &(cover_len as u64).to_le_bytes(),
                &(n_chunks as u64).to_le_bytes(),
            ],
        );
        let mut drbg = HmacDrbg::from_hash(&seed);
        let mut remaining = cover_len;
        let mut lens = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            let max_here = remaining.saturating_sub((n_chunks - i - 1) * base / 2);
            let jitter = if base > 1 { drbg.gen_range(base as u64) as usize } else { 0 };
            let len = (base / 2 + jitter).min(max_here);
            lens.push(len);
            remaining -= len;
        }
        lens
    }

    /// Seal `evidence` into a stego container bound to `prev_block` bytes.
    pub fn seal(&self, evidence: &[u8], prev_block: &[u8]) -> Result<StegoFile, StegoError> {
        if evidence.is_empty() {
            return Err(StegoError::EmptyEvidence);
        }
        let digest = sha256(evidence);
        let n_chunks = evidence.len().div_ceil(CHUNK_LEN);

        // 1. Cover expanded from the previous block's data: at least 2 bytes
        //    of cover per evidence byte so chunks are sparse in the output.
        let cover_len = (evidence.len() * 2).max(n_chunks * CHUNK_LEN + 256);
        let mut cover = vec![0u8; cover_len];
        HmacDrbg::new(
            hash_parts("blockprov-stego-cover", &[prev_block]).as_bytes(),
        )
        .fill_bytes(&mut cover);

        // 2. Encrypt the cover into the cipher file.
        xor_stream(&self.key, "cover", 0, &mut cover);

        // 3. Chunk + encrypt the evidence (zero-padded final chunk).
        let mut chunks: Vec<[u8; CHUNK_LEN]> = Vec::with_capacity(n_chunks);
        for (i, chunk) in evidence.chunks(CHUNK_LEN).enumerate() {
            let mut buf = [0u8; CHUNK_LEN];
            buf[..chunk.len()].copy_from_slice(chunk);
            xor_stream(&self.key, "chunk", i as u64, &mut buf);
            chunks.push(buf);
        }

        // 4. Header (encrypted): layout + integrity digest.
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&(cover_len as u64).to_le_bytes());
        header.extend_from_slice(&(n_chunks as u64).to_le_bytes());
        header.extend_from_slice(&(evidence.len() as u64).to_le_bytes());
        header.extend_from_slice(digest.as_bytes());
        xor_stream(&self.key, "header", 0, &mut header);

        // 5. Interleave: header ‖ seg₀ ‖ chunk₀ ‖ seg₁ ‖ chunk₁ ‖ … ‖ rest.
        let lens = self.schedule(cover_len, n_chunks);
        let mut out = Vec::with_capacity(HEADER_LEN + cover_len + n_chunks * CHUNK_LEN);
        out.extend_from_slice(&header);
        let mut cursor = 0usize;
        for (i, seg_len) in lens.iter().enumerate() {
            out.extend_from_slice(&cover[cursor..cursor + seg_len]);
            cursor += seg_len;
            out.extend_from_slice(&chunks[i]);
        }
        out.extend_from_slice(&cover[cursor..]);
        // Trailing MAC over the whole container: cover corruption must be
        // as detectable as chunk corruption (the chain anchors the digest,
        // but extraction itself also fails closed).
        let mac = blockprov_crypto::hmac_sha256(self.key.as_bytes(), &out);
        out.extend_from_slice(mac.as_bytes());
        Ok(StegoFile { bytes: out })
    }

    /// Open a container, returning the original evidence. Fails closed on a
    /// wrong key, truncation, or any bit flip.
    pub fn extract(&self, file: &StegoFile) -> Result<Vec<u8>, StegoError> {
        if file.bytes.len() < HEADER_LEN + 32 {
            return Err(StegoError::WrongKeyOrCorrupt);
        }
        let (body, mac) = file.bytes.split_at(file.bytes.len() - 32);
        if blockprov_crypto::hmac_sha256(self.key.as_bytes(), body).as_bytes() != mac {
            return Err(StegoError::WrongKeyOrCorrupt);
        }
        let mut header = file.bytes[..HEADER_LEN].to_vec();
        xor_stream(&self.key, "header", 0, &mut header);
        if header[..8] != MAGIC {
            return Err(StegoError::WrongKeyOrCorrupt);
        }
        let read_u64 = |off: usize| {
            u64::from_le_bytes(header[off..off + 8].try_into().expect("fixed layout"))
        };
        let cover_len = read_u64(8) as usize;
        let n_chunks = read_u64(16) as usize;
        let evidence_len = read_u64(24) as usize;
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&header[32..64]);

        if evidence_len == 0
            || n_chunks != evidence_len.div_ceil(CHUNK_LEN)
            || file.bytes.len() != HEADER_LEN + cover_len + n_chunks * CHUNK_LEN + 32
        {
            return Err(StegoError::WrongKeyOrCorrupt);
        }

        let lens = self.schedule(cover_len, n_chunks);
        let mut evidence = Vec::with_capacity(evidence_len);
        let mut cursor = HEADER_LEN;
        for (i, seg_len) in lens.iter().enumerate() {
            cursor += seg_len; // skip cover segment
            let mut chunk = [0u8; CHUNK_LEN];
            chunk.copy_from_slice(&file.bytes[cursor..cursor + CHUNK_LEN]);
            cursor += CHUNK_LEN;
            xor_stream(&self.key, "chunk", i as u64, &mut chunk);
            let take = CHUNK_LEN.min(evidence_len - evidence.len());
            evidence.extend_from_slice(&chunk[..take]);
        }
        if sha256(&evidence) != Hash256::from(digest) {
            return Err(StegoError::IntegrityFailure);
        }
        Ok(evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> StegoVault {
        StegoVault::new(b"case-7/investigator-key")
    }

    #[test]
    fn seal_extract_round_trip() {
        let v = vault();
        for len in [1usize, 63, 64, 65, 1000, 10_000] {
            let evidence: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let file = v.seal(&evidence, b"prev-block-bytes").unwrap();
            assert_eq!(v.extract(&file).unwrap(), evidence, "len={len}");
        }
    }

    #[test]
    fn empty_evidence_rejected() {
        assert_eq!(vault().seal(&[], b"prev").unwrap_err(), StegoError::EmptyEvidence);
    }

    #[test]
    fn wrong_key_fails_closed() {
        let file = vault().seal(b"the smoking gun", b"prev").unwrap();
        let wrong = StegoVault::new(b"not the key");
        assert_eq!(wrong.extract(&file).unwrap_err(), StegoError::WrongKeyOrCorrupt);
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let v = vault();
        let file = v.seal(&vec![0x5A; 500], b"prev").unwrap();
        // Flip a byte in several regions: header, early chunk area, tail.
        for pos in [3usize, HEADER_LEN + 10, file.bytes.len() / 2, file.bytes.len() - 1] {
            let mut tampered = file.clone();
            tampered.bytes[pos] ^= 0x01;
            assert!(
                v.extract(&tampered).is_err(),
                "flip at {pos} must not extract cleanly"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let v = vault();
        let mut file = v.seal(&vec![1u8; 300], b"prev").unwrap();
        file.bytes.truncate(file.bytes.len() - 1);
        assert_eq!(v.extract(&file).unwrap_err(), StegoError::WrongKeyOrCorrupt);
    }

    #[test]
    fn evidence_bytes_do_not_appear_in_container() {
        let v = vault();
        let evidence = b"CONFIDENTIAL-WITNESS-STATEMENT-0042".repeat(8);
        let file = v.seal(&evidence, b"prev").unwrap();
        let needle = &evidence[..24];
        let found = file.bytes.windows(needle.len()).any(|w| w == needle);
        assert!(!found, "plaintext must never appear in the container");
    }

    #[test]
    fn container_bound_to_previous_block() {
        let v = vault();
        let a = v.seal(b"same evidence", b"block-A").unwrap();
        let b = v.seal(b"same evidence", b"block-B").unwrap();
        assert_ne!(a.digest(), b.digest(), "cover derives from the previous block");
        // Both still extract to the same evidence.
        assert_eq!(v.extract(&a).unwrap(), b"same evidence");
        assert_eq!(v.extract(&b).unwrap(), b"same evidence");
    }

    #[test]
    fn sealing_is_deterministic() {
        let v = vault();
        let a = v.seal(b"det", b"prev").unwrap();
        let b = v.seal(b"det", b"prev").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn container_is_larger_than_evidence_by_cover_factor() {
        let v = vault();
        let evidence = vec![9u8; 4096];
        let file = v.seal(&evidence, b"prev").unwrap();
        // cover ≈ 2×, plus chunk padding and header.
        assert!(file.len() >= 3 * evidence.len());
        assert!(file.len() < 4 * evidence.len());
    }

    #[test]
    fn garbage_input_rejected() {
        let v = vault();
        assert!(v.extract(&StegoFile { bytes: vec![] }).is_err());
        assert!(v.extract(&StegoFile { bytes: vec![0u8; 1000] }).is_err());
    }
}
