//! Digital-forensics provenance — the ForensiBlock [12] reproduction.
//!
//! ForensiBlock is "a provenance-driven blockchain framework for data
//! forensics and auditability": it tracks *all* investigation data
//! (evidence operations and communication records), supports investigation
//! **stage changes** with stage-gated access control, and verifies case
//! integrity with a **distributed Merkle tree** so one case can be audited
//! without touching another case's records.
//!
//! The five-stage methodology of the paper's Figure 5 is enforced by
//! [`Stage`]: Identification → Preservation → Collection → Analysis →
//! Reporting, with transitions recorded on-chain and role requirements per
//! stage.

pub mod iot;
pub mod stego;

use blockprov_access::rbac::{Permission, RbacEngine, Role};
use blockprov_core::{CoreError, LedgerConfig, ProvenanceLedger};
use blockprov_crypto::dmt::{CompoundProof, DistributedMerkleTree};
use blockprov_crypto::sha256::Hash256;
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord, RecordId};
use std::collections::BTreeMap;
use std::fmt;

/// The five stages of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Identify evidence sources and relevant individuals.
    Identification,
    /// Preserve electronically stored information.
    Preservation,
    /// Collect data and create exact duplicates.
    Collection,
    /// Analyze the duplicates.
    Analysis,
    /// Compile findings into a report.
    Reporting,
}

impl Stage {
    /// All stages in order.
    pub const ALL: [Stage; 5] = [
        Stage::Identification,
        Stage::Preservation,
        Stage::Collection,
        Stage::Analysis,
        Stage::Reporting,
    ];

    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Identification => "identification",
            Stage::Preservation => "preservation",
            Stage::Collection => "collection",
            Stage::Analysis => "analysis",
            Stage::Reporting => "reporting",
        }
    }

    /// The stage that must follow this one.
    pub fn next(&self) -> Option<Stage> {
        let all = Stage::ALL;
        all.iter()
            .position(|s| s == self)
            .and_then(|i| all.get(i + 1))
            .copied()
    }

    /// The role allowed to perform evidence operations in this stage.
    pub fn required_role(&self) -> Role {
        match self {
            Stage::Identification => Role::new("first-responder"),
            Stage::Preservation => Role::new("evidence-custodian"),
            Stage::Collection => Role::new("collector"),
            Stage::Analysis => Role::new("analyst"),
            Stage::Reporting => Role::new("lead-investigator"),
        }
    }
}

/// Forensics domain errors.
#[derive(Debug)]
pub enum ForensicsError {
    /// Unknown case number.
    UnknownCase(String),
    /// The requested stage transition is not the successor stage.
    BadTransition {
        /// Current stage.
        from: Stage,
        /// Requested stage.
        to: Stage,
    },
    /// Actor lacks the role required in the current stage.
    RoleDenied {
        /// Acting account.
        actor: AccountId,
        /// Role needed.
        needed: Role,
    },
    /// Case already closed (reporting complete).
    CaseClosed(String),
    /// Ledger failure.
    Core(CoreError),
}

impl fmt::Display for ForensicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForensicsError::UnknownCase(c) => write!(f, "unknown case {c}"),
            ForensicsError::BadTransition { from, to } => {
                write!(f, "cannot move from {} to {}", from.label(), to.label())
            }
            ForensicsError::RoleDenied { actor, needed } => {
                write!(f, "{actor} lacks role {}", needed.0)
            }
            ForensicsError::CaseClosed(c) => write!(f, "case {c} is closed"),
            ForensicsError::Core(e) => write!(f, "ledger: {e}"),
        }
    }
}

impl std::error::Error for ForensicsError {}

impl From<CoreError> for ForensicsError {
    fn from(e: CoreError) -> Self {
        ForensicsError::Core(e)
    }
}

/// One custody event for an evidence item.
#[derive(Debug, Clone)]
pub struct CustodyEvent {
    /// Acting account.
    pub actor: AccountId,
    /// What happened.
    pub action: String,
    /// Stage at the time.
    pub stage: Stage,
    /// Anchoring record.
    pub record: RecordId,
}

struct CaseState {
    stage: Stage,
    opened_ms: u64,
    closed_ms: Option<u64>,
    /// evidence id → custody log.
    custody: BTreeMap<String, Vec<CustodyEvent>>,
    last_record: Option<RecordId>,
}

/// The ForensiBlock ledger.
pub struct ForensicsLedger {
    ledger: ProvenanceLedger,
    /// Role assignments (stage gating).
    pub rbac: RbacEngine,
    cases: BTreeMap<String, CaseState>,
    /// Per-case segment trees over record hashes (the distributed Merkle
    /// tree of ForensiBlock).
    dmt: DistributedMerkleTree,
    /// Position of each record within its case segment.
    record_pos: BTreeMap<RecordId, (String, usize)>,
}

impl Default for ForensicsLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl ForensicsLedger {
    /// Open a private forensics ledger.
    pub fn new() -> Self {
        let config = LedgerConfig::private_default().with_domain(Domain::DigitalForensics);
        Self {
            ledger: ProvenanceLedger::open(config),
            rbac: RbacEngine::new(),
            cases: BTreeMap::new(),
            dmt: DistributedMerkleTree::new(),
            record_pos: BTreeMap::new(),
        }
    }

    /// Register an investigator with roles.
    pub fn register_investigator(
        &mut self,
        name: &str,
        roles: &[Role],
    ) -> Result<AccountId, ForensicsError> {
        let id = self.ledger.register_agent(name)?;
        for role in roles {
            self.rbac.grant(role, Permission::new("evidence.op"));
            self.rbac.assign(id, role);
        }
        Ok(id)
    }

    /// Open a case (starts in Identification).
    pub fn open_case(&mut self, case: &str, by: AccountId) -> Result<RecordId, ForensicsError> {
        self.require_role(&by, &Stage::Identification.required_role())?;
        let ts = self.ledger.advance_clock();
        let record = self.case_record(case, by, Action::Create, Stage::Identification, ts, None);
        let rid = self.anchor(case, record)?;
        self.cases.insert(
            case.to_string(),
            CaseState {
                stage: Stage::Identification,
                opened_ms: ts,
                closed_ms: None,
                custody: BTreeMap::new(),
                last_record: Some(rid),
            },
        );
        Ok(rid)
    }

    fn require_role(&self, actor: &AccountId, role: &Role) -> Result<(), ForensicsError> {
        if self.rbac.roles_of(actor).any(|r| r == role) {
            Ok(())
        } else {
            Err(ForensicsError::RoleDenied {
                actor: *actor,
                needed: role.clone(),
            })
        }
    }

    fn case_record(
        &self,
        case: &str,
        actor: AccountId,
        action: Action,
        stage: Stage,
        ts: u64,
        parent: Option<RecordId>,
    ) -> ProvenanceRecord {
        let mut record = ProvenanceRecord::new(
            &format!("case:{case}"),
            actor,
            action,
            ts,
            Domain::DigitalForensics,
        )
        .with_field("case_number", case)
        .with_field("investigation_stage", stage.label())
        .with_field(
            "case_start_date",
            &self.cases.get(case).map_or(ts, |c| c.opened_ms).to_string(),
        );
        if let Some(p) = parent {
            record = record.with_parent(p);
        }
        record
    }

    fn anchor(&mut self, case: &str, record: ProvenanceRecord) -> Result<RecordId, ForensicsError> {
        let rid = self.ledger.submit_record(record, &[])?;
        let pos = self.dmt.record_count(case);
        self.dmt
            .append(case, blockprov_crypto::merkle::leaf_hash(rid.0.as_bytes()));
        self.record_pos.insert(rid, (case.to_string(), pos));
        Ok(rid)
    }

    /// Advance a case to its next stage (records the transition).
    pub fn advance_stage(
        &mut self,
        case: &str,
        to: Stage,
        by: AccountId,
    ) -> Result<RecordId, ForensicsError> {
        let state = self
            .cases
            .get(case)
            .ok_or_else(|| ForensicsError::UnknownCase(case.to_string()))?;
        if state.closed_ms.is_some() {
            return Err(ForensicsError::CaseClosed(case.to_string()));
        }
        let from = state.stage;
        if from.next() != Some(to) {
            return Err(ForensicsError::BadTransition { from, to });
        }
        // The role of the *target* stage authorizes the hand-off.
        self.require_role(&by, &to.required_role())?;
        let parent = state.last_record;
        let ts = self.ledger.advance_clock();
        let record = self.case_record(
            case,
            by,
            Action::Custom("stage-change".into()),
            to,
            ts,
            parent,
        );
        let rid = self.anchor(case, record)?;
        let state = self.cases.get_mut(case).expect("checked");
        state.stage = to;
        state.last_record = Some(rid);
        if to == Stage::Reporting {
            state.closed_ms = Some(ts);
        }
        Ok(rid)
    }

    /// Record an evidence operation in the current stage (custody chain).
    pub fn evidence_op(
        &mut self,
        case: &str,
        evidence: &str,
        by: AccountId,
        action: &str,
        payload: &[u8],
    ) -> Result<RecordId, ForensicsError> {
        let state = self
            .cases
            .get(case)
            .ok_or_else(|| ForensicsError::UnknownCase(case.to_string()))?;
        if state.closed_ms.is_some() {
            return Err(ForensicsError::CaseClosed(case.to_string()));
        }
        let stage = state.stage;
        self.require_role(&by, &stage.required_role())?;
        let parent = state
            .custody
            .get(evidence)
            .and_then(|log| log.last())
            .map(|e| e.record)
            .or(state.last_record);
        let ts = self.ledger.advance_clock();
        let record = self
            .case_record(
                case,
                by,
                Action::Custom(action.to_string()),
                stage,
                ts,
                parent,
            )
            .with_field("file_types", "binary")
            .with_field("access_patterns", action)
            .with_field("files_dependency", evidence)
            .with_content(payload);
        let rid = self.anchor(case, record)?;
        self.cases
            .get_mut(case)
            .expect("checked")
            .custody
            .entry(evidence.to_string())
            .or_default()
            .push(CustodyEvent {
                actor: by,
                action: action.to_string(),
                stage,
                record: rid,
            });
        Ok(rid)
    }

    /// Record a *multi-modal* evidence operation: the payload is tokenized
    /// per its modality (paper §6.2 / Table 2 "handling multi-modal data")
    /// so re-encoded duplicates of the same artifact stay linkable while
    /// modalities never collide.
    pub fn evidence_op_modal(
        &mut self,
        case: &str,
        evidence: &str,
        by: AccountId,
        action: &str,
        token: blockprov_provenance::multimodal::ModalToken,
        payload: &[u8],
    ) -> Result<RecordId, ForensicsError> {
        let rid = self.evidence_op(case, evidence, by, action, payload)?;
        // Attach the modal token as a follow-up annotation record linked to
        // the operation (records are immutable once submitted).
        let stage = self
            .cases
            .get(case)
            .expect("evidence_op validated the case")
            .stage;
        let ts = self.ledger.advance_clock();
        let annotation = self
            .case_record(
                case,
                by,
                Action::Custom("modal-annotation".into()),
                stage,
                ts,
                Some(rid),
            )
            .with_field("file_types", token.modality.label())
            .with_field("access_patterns", "tokenize")
            .with_field("files_dependency", evidence)
            .with_field("modal_token", &token.digest.to_hex());
        self.anchor(case, annotation)?;
        Ok(rid)
    }

    /// The chain of custody for one evidence item.
    pub fn custody_chain(&self, case: &str, evidence: &str) -> &[CustodyEvent] {
        self.cases
            .get(case)
            .and_then(|c| c.custody.get(evidence))
            .map_or(&[], Vec::as_slice)
    }

    /// Current stage of a case.
    pub fn stage_of(&self, case: &str) -> Option<Stage> {
        self.cases.get(case).map(|c| c.stage)
    }

    /// Forest root over all case segments (publish in block headers / to
    /// auditors).
    pub fn integrity_root(&mut self) -> Hash256 {
        self.dmt.forest_root()
    }

    /// Prove one record belongs to one case under the forest root —
    /// without exposing any other case's records.
    pub fn prove_case_record(&mut self, record: &RecordId) -> Option<CompoundProof> {
        let (case, pos) = self.record_pos.get(record)?.clone();
        self.dmt.prove(&case, pos)
    }

    /// Verify a compound proof for a record id.
    pub fn verify_case_record(root: &Hash256, record: &RecordId, proof: &CompoundProof) -> bool {
        proof.verify_record_hash(
            root,
            &blockprov_crypto::merkle::leaf_hash(record.0.as_bytes()),
        )
    }

    /// Seal pending provenance.
    pub fn seal(&mut self) -> Result<(), ForensicsError> {
        self.ledger.seal_block()?;
        Ok(())
    }

    /// Underlying ledger.
    pub fn ledger(&self) -> &ProvenanceLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staff(f: &mut ForensicsLedger) -> (AccountId, AccountId, AccountId) {
        let responder = f
            .register_investigator("riley", &[Stage::Identification.required_role()])
            .unwrap();
        let custodian = f
            .register_investigator(
                "casey",
                &[
                    Stage::Preservation.required_role(),
                    Stage::Collection.required_role(),
                ],
            )
            .unwrap();
        let lead = f
            .register_investigator(
                "lee",
                &[
                    Stage::Analysis.required_role(),
                    Stage::Reporting.required_role(),
                ],
            )
            .unwrap();
        (responder, custodian, lead)
    }

    #[test]
    fn five_stage_walk_matches_figure5() {
        let mut f = ForensicsLedger::new();
        let (responder, custodian, lead) = staff(&mut f);
        f.open_case("2024-001", responder).unwrap();
        assert_eq!(f.stage_of("2024-001"), Some(Stage::Identification));
        f.advance_stage("2024-001", Stage::Preservation, custodian)
            .unwrap();
        f.advance_stage("2024-001", Stage::Collection, custodian)
            .unwrap();
        f.advance_stage("2024-001", Stage::Analysis, lead).unwrap();
        f.advance_stage("2024-001", Stage::Reporting, lead).unwrap();
        assert_eq!(f.stage_of("2024-001"), Some(Stage::Reporting));
        // Closed case refuses further work.
        assert!(matches!(
            f.evidence_op("2024-001", "disk-1", lead, "read", b""),
            Err(ForensicsError::CaseClosed(_))
        ));
    }

    #[test]
    fn stages_cannot_be_skipped() {
        let mut f = ForensicsLedger::new();
        let (responder, _custodian, lead) = staff(&mut f);
        f.open_case("c", responder).unwrap();
        assert!(matches!(
            f.advance_stage("c", Stage::Analysis, lead),
            Err(ForensicsError::BadTransition { .. })
        ));
    }

    #[test]
    fn stage_roles_gate_operations() {
        let mut f = ForensicsLedger::new();
        let (responder, custodian, lead) = staff(&mut f);
        f.open_case("c", responder).unwrap();
        // In Identification, only the first responder may act.
        assert!(matches!(
            f.evidence_op("c", "phone", custodian, "photograph", b""),
            Err(ForensicsError::RoleDenied { .. })
        ));
        f.evidence_op("c", "phone", responder, "photograph", b"img")
            .unwrap();
        // Advance to Preservation: responder may no longer act.
        f.advance_stage("c", Stage::Preservation, custodian)
            .unwrap();
        assert!(matches!(
            f.evidence_op("c", "phone", responder, "seize", b""),
            Err(ForensicsError::RoleDenied { .. })
        ));
        f.evidence_op("c", "phone", custodian, "seize", b"")
            .unwrap();
        let _ = lead;
    }

    #[test]
    fn custody_chain_is_ordered_and_linked() {
        let mut f = ForensicsLedger::new();
        let (responder, custodian, _) = staff(&mut f);
        f.open_case("c", responder).unwrap();
        f.evidence_op("c", "disk", responder, "identify", b"")
            .unwrap();
        f.advance_stage("c", Stage::Preservation, custodian)
            .unwrap();
        f.evidence_op("c", "disk", custodian, "hash-image", b"sha256...")
            .unwrap();
        let chain = f.custody_chain("c", "disk");
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].action, "identify");
        assert_eq!(chain[1].action, "hash-image");
        // Custody records are linked via parents.
        let second = f.ledger().record(&chain[1].record).unwrap();
        assert_eq!(second.parents, vec![chain[0].record]);
    }

    #[test]
    fn distributed_merkle_isolates_cases() {
        let mut f = ForensicsLedger::new();
        let (responder, _, _) = staff(&mut f);
        f.open_case("case-A", responder).unwrap();
        f.open_case("case-B", responder).unwrap();
        let ra = f
            .evidence_op("case-A", "laptop", responder, "identify", b"a")
            .unwrap();
        let rb = f
            .evidence_op("case-B", "phone", responder, "identify", b"b")
            .unwrap();
        let root = f.integrity_root();
        let pa = f.prove_case_record(&ra).unwrap();
        let pb = f.prove_case_record(&rb).unwrap();
        assert!(ForensicsLedger::verify_case_record(&root, &ra, &pa));
        assert!(ForensicsLedger::verify_case_record(&root, &rb, &pb));
        // Proofs are bound to their case segment.
        assert_eq!(pa.segment, "case-A");
        assert!(!ForensicsLedger::verify_case_record(&root, &rb, &pa));
    }

    #[test]
    fn unknown_case_and_unauthorized_open() {
        let mut f = ForensicsLedger::new();
        let outsider = f.register_investigator("outsider", &[]).unwrap();
        assert!(matches!(
            f.open_case("c", outsider),
            Err(ForensicsError::RoleDenied { .. })
        ));
        assert!(matches!(
            f.evidence_op("ghost", "e", outsider, "x", b""),
            Err(ForensicsError::UnknownCase(_))
        ));
    }

    #[test]
    fn modal_evidence_annotations_link_and_tokenize() {
        use blockprov_provenance::multimodal::{tokenize_text, Modality};
        let mut f = ForensicsLedger::new();
        let (responder, _, _) = staff(&mut f);
        f.open_case("c", responder).unwrap();
        let token = tokenize_text("Witness  Statement\n#1");
        let rid = f
            .evidence_op_modal(
                "c",
                "statement-1",
                responder,
                "collect",
                token,
                b"Witness Statement #1",
            )
            .unwrap();
        // The annotation record is a child of the evidence record and
        // carries the modality + token.
        let children = f.ledger().graph().descendants(&rid).unwrap();
        assert_eq!(children.len(), 1);
        let annotation = f.ledger().record(&children[0]).unwrap();
        assert_eq!(annotation.fields["file_types"], Modality::Text.label());
        assert_eq!(annotation.fields["modal_token"], token.digest.to_hex());
        // A re-formatted duplicate of the statement yields the same token.
        assert_eq!(tokenize_text("witness statement #1"), token);
    }

    #[test]
    fn chain_seals_and_verifies() {
        let mut f = ForensicsLedger::new();
        let (responder, custodian, _) = staff(&mut f);
        f.open_case("c", responder).unwrap();
        f.evidence_op("c", "disk", responder, "identify", b"x")
            .unwrap();
        f.advance_stage("c", Stage::Preservation, custodian)
            .unwrap();
        f.seal().unwrap();
        f.ledger().verify_chain().unwrap();
    }
}
