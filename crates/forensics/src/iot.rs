//! IoTFC [45]: blockchain-based digital forensics for the Internet of
//! Things.
//!
//! The surveyed framework's strengths are "efficient data acquisition and
//! secure verification mechanisms" across fleets of IoT devices. This
//! module reproduces that acquisition pipeline:
//!
//! * devices are **enrolled** with hash-based signing keys; the registry
//!   pins each device's verification key (the IoT root of trust);
//! * a device **acquires** evidence by signing `(device, sequence,
//!   digest)` — the signature travels with the evidence so any party can
//!   verify origin and integrity offline;
//! * per-device evidence hash chains give each device an append-only
//!   timeline, and a case-level Merkle root summarizes an acquisition
//!   sweep across many devices for one on-chain anchor;
//! * forged evidence (wrong key), replayed sequence numbers, and
//!   post-acquisition tampering are all rejected.

use blockprov_crypto::merkle::MerkleTree;
use blockprov_crypto::sha256::{hash_parts, sha256, Hash256};
use blockprov_crypto::sig::{verify, Keypair, OtsScheme, PublicKey, Signature};
use std::collections::BTreeMap;
use std::fmt;

/// An enrolled IoT device (simulation host side: holds the signing key).
pub struct IotDevice {
    /// Device identifier (e.g. "cam-lobby-3").
    pub id: String,
    keypair: Keypair,
    next_seq: u64,
}

impl fmt::Debug for IotDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IotDevice")
            .field("id", &self.id)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl IotDevice {
    /// Manufacture a device with a seeded identity key (2^10 signatures).
    pub fn new(id: &str) -> Self {
        Self::with_capacity(id, 10)
    }

    /// Manufacture a device whose identity key holds `2^key_height`
    /// signatures. MSS keygen is linear in the leaf count, so fleet
    /// simulations that capture a handful of evidence items per device
    /// should pass a small height.
    pub fn with_capacity(id: &str, key_height: u32) -> Self {
        Self {
            id: id.to_string(),
            keypair: Keypair::from_name(&format!("iot-device/{id}"), OtsScheme::Wots, key_height),
            next_seq: 0,
        }
    }

    /// The device's verification key (what the registry pins at enrollment).
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public_key()
    }

    /// Produce signed evidence for `data` (a sensor log, a frame, …).
    pub fn capture(&mut self, data: &[u8]) -> SignedEvidence {
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = sha256(data);
        let msg = evidence_signing_bytes(&self.id, seq, &digest);
        let signature = self.keypair.sign(&msg).expect("device key sized for fleet life");
        SignedEvidence { device: self.id.clone(), seq, digest, signature }
    }
}

fn evidence_signing_bytes(device: &str, seq: u64, digest: &Hash256) -> Vec<u8> {
    let mut out = Vec::with_capacity(device.len() + 48);
    out.extend_from_slice(b"blockprov-iotfc-evidence");
    out.extend_from_slice(device.as_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(digest.as_bytes());
    out
}

/// Evidence as it leaves a device.
#[derive(Debug, Clone)]
pub struct SignedEvidence {
    /// Producing device.
    pub device: String,
    /// Device-local sequence number (replay defence).
    pub seq: u64,
    /// Digest of the evidence bytes.
    pub digest: Hash256,
    /// Device signature over (device, seq, digest).
    pub signature: Signature,
}

/// An accepted evidence record in the framework.
#[derive(Debug, Clone)]
pub struct EvidenceRecord {
    /// Producing device.
    pub device: String,
    /// Device-local sequence number.
    pub seq: u64,
    /// Evidence digest.
    pub digest: Hash256,
    /// Per-device hash-chain value.
    pub chain: Hash256,
}

/// Acquisition failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IotError {
    /// Device not enrolled.
    UnknownDevice(String),
    /// Device id already enrolled.
    DuplicateDevice(String),
    /// The signature does not verify under the enrolled key.
    BadSignature,
    /// Sequence number reused or out of order (replay).
    Replay {
        /// Expected next sequence.
        expected: u64,
        /// Sequence presented.
        got: u64,
    },
    /// Evidence bytes do not match the signed digest.
    DigestMismatch,
}

impl fmt::Display for IotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IotError::UnknownDevice(d) => write!(f, "device {d:?} not enrolled"),
            IotError::DuplicateDevice(d) => write!(f, "device {d:?} already enrolled"),
            IotError::BadSignature => write!(f, "device signature invalid"),
            IotError::Replay { expected, got } => {
                write!(f, "sequence replay: expected {expected}, got {got}")
            }
            IotError::DigestMismatch => write!(f, "evidence bytes do not match signed digest"),
        }
    }
}

impl std::error::Error for IotError {}

struct DeviceTrack {
    key: PublicKey,
    next_seq: u64,
    records: Vec<EvidenceRecord>,
}

/// The IoTFC acquisition framework: enrolled devices, per-device evidence
/// chains, and case-level sweep roots.
#[derive(Default)]
pub struct IotForensics {
    devices: BTreeMap<String, DeviceTrack>,
}

impl fmt::Debug for IotForensics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IotForensics")
            .field("devices", &self.devices.len())
            .finish_non_exhaustive()
    }
}

impl IotForensics {
    /// An empty framework.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enroll a device by pinning its verification key.
    pub fn enroll(&mut self, device: &IotDevice) -> Result<(), IotError> {
        if self.devices.contains_key(&device.id) {
            return Err(IotError::DuplicateDevice(device.id.clone()));
        }
        self.devices.insert(
            device.id.clone(),
            DeviceTrack { key: device.public_key(), next_seq: 0, records: Vec::new() },
        );
        Ok(())
    }

    /// Acquire one piece of signed evidence, verifying origin, order and
    /// integrity before accepting it.
    pub fn acquire(
        &mut self,
        evidence: &SignedEvidence,
        data: &[u8],
    ) -> Result<&EvidenceRecord, IotError> {
        let track = self
            .devices
            .get_mut(&evidence.device)
            .ok_or_else(|| IotError::UnknownDevice(evidence.device.clone()))?;
        if sha256(data) != evidence.digest {
            return Err(IotError::DigestMismatch);
        }
        if evidence.seq != track.next_seq {
            return Err(IotError::Replay { expected: track.next_seq, got: evidence.seq });
        }
        let msg = evidence_signing_bytes(&evidence.device, evidence.seq, &evidence.digest);
        if !verify(&track.key, &msg, &evidence.signature) {
            return Err(IotError::BadSignature);
        }
        let prev = track.records.last().map(|r| r.chain).unwrap_or(Hash256::ZERO);
        let chain = hash_parts(
            "blockprov-iotfc-chain",
            &[prev.as_bytes(), evidence.digest.as_bytes(), &evidence.seq.to_le_bytes()],
        );
        track.next_seq += 1;
        track.records.push(EvidenceRecord {
            device: evidence.device.clone(),
            seq: evidence.seq,
            digest: evidence.digest,
            chain,
        });
        Ok(track.records.last().expect("just pushed"))
    }

    /// A device's evidence timeline.
    pub fn timeline(&self, device: &str) -> Result<&[EvidenceRecord], IotError> {
        self.devices
            .get(device)
            .map(|t| t.records.as_slice())
            .ok_or_else(|| IotError::UnknownDevice(device.to_string()))
    }

    /// Verify a device's evidence hash chain.
    pub fn verify_timeline(&self, device: &str) -> Result<bool, IotError> {
        let records = self.timeline(device)?;
        let mut prev = Hash256::ZERO;
        for r in records {
            let expect = hash_parts(
                "blockprov-iotfc-chain",
                &[prev.as_bytes(), r.digest.as_bytes(), &r.seq.to_le_bytes()],
            );
            if r.chain != expect {
                return Ok(false);
            }
            prev = r.chain;
        }
        Ok(true)
    }

    /// Case-level sweep root: one Merkle root over every accepted evidence
    /// digest across all devices — the single value a custody record
    /// anchors for the whole acquisition.
    pub fn sweep_root(&self) -> Hash256 {
        let leaves: Vec<Vec<u8>> = self
            .devices
            .values()
            .flat_map(|t| t.records.iter().map(|r| r.chain.0.to_vec()))
            .collect();
        MerkleTree::from_data(&leaves).root()
    }

    /// Total accepted evidence records.
    pub fn len(&self) -> usize {
        self.devices.values().map(|t| t.records.len()).sum()
    }

    /// Whether no evidence has been acquired.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framework_with_cam() -> (IotForensics, IotDevice) {
        let mut fw = IotForensics::new();
        let cam = IotDevice::with_capacity("cam-lobby-3", 4);
        fw.enroll(&cam).unwrap();
        (fw, cam)
    }

    #[test]
    fn honest_acquisition_round_trip() {
        let (mut fw, mut cam) = framework_with_cam();
        let frame = b"frame-000:motion detected";
        let ev = cam.capture(frame);
        let rec = fw.acquire(&ev, frame).unwrap();
        assert_eq!(rec.seq, 0);
        assert_eq!(rec.digest, sha256(frame));
        assert!(fw.verify_timeline("cam-lobby-3").unwrap());
    }

    #[test]
    fn forged_evidence_rejected() {
        let (mut fw, _) = framework_with_cam();
        // A rogue device mimics the enrolled id but has its own key.
        let mut rogue = IotDevice::with_capacity("cam-lobby-3-clone", 4);
        let mut ev = rogue.capture(b"planted");
        ev.device = "cam-lobby-3".into();
        assert_eq!(fw.acquire(&ev, b"planted").unwrap_err(), IotError::BadSignature);
    }

    #[test]
    fn tampered_payload_rejected() {
        let (mut fw, mut cam) = framework_with_cam();
        let ev = cam.capture(b"original bytes");
        assert_eq!(
            fw.acquire(&ev, b"tampered bytes").unwrap_err(),
            IotError::DigestMismatch
        );
    }

    #[test]
    fn replayed_sequence_rejected() {
        let (mut fw, mut cam) = framework_with_cam();
        let e0 = cam.capture(b"a");
        fw.acquire(&e0, b"a").unwrap();
        // Replaying the same signed evidence is an out-of-order sequence.
        assert_eq!(
            fw.acquire(&e0, b"a").unwrap_err(),
            IotError::Replay { expected: 1, got: 0 }
        );
    }

    #[test]
    fn unknown_and_duplicate_devices() {
        let (mut fw, cam) = framework_with_cam();
        assert_eq!(fw.enroll(&cam).unwrap_err(), IotError::DuplicateDevice("cam-lobby-3".into()));
        let mut ghost = IotDevice::with_capacity("never-enrolled", 4);
        let ev = ghost.capture(b"x");
        assert_eq!(
            fw.acquire(&ev, b"x").unwrap_err(),
            IotError::UnknownDevice("never-enrolled".into())
        );
    }

    #[test]
    fn multi_device_sweep_root_is_stable_and_tamper_sensitive() {
        let mut fw = IotForensics::new();
        let mut cam = IotDevice::with_capacity("cam-1", 4);
        let mut lock = IotDevice::with_capacity("door-lock-7", 4);
        fw.enroll(&cam).unwrap();
        fw.enroll(&lock).unwrap();
        for i in 0..3u8 {
            let e = cam.capture(&[i]);
            fw.acquire(&e, &[i]).unwrap();
        }
        let e = lock.capture(b"unlocked 02:13");
        fw.acquire(&e, b"unlocked 02:13").unwrap();
        assert_eq!(fw.len(), 4);
        let root = fw.sweep_root();
        // More evidence changes the sweep root.
        let e = lock.capture(b"locked 02:19");
        fw.acquire(&e, b"locked 02:19").unwrap();
        assert_ne!(fw.sweep_root(), root);
    }

    #[test]
    fn timeline_is_ordered_per_device() {
        let (mut fw, mut cam) = framework_with_cam();
        for i in 0..5u8 {
            let e = cam.capture(&[i]);
            fw.acquire(&e, &[i]).unwrap();
        }
        let tl = fw.timeline("cam-lobby-3").unwrap();
        let seqs: Vec<u64> = tl.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert!(fw.verify_timeline("cam-lobby-3").unwrap());
    }
}
