//! Property tests for the steganographic evidence container: round-trip
//! identity, fail-closed corruption handling, and key separation.

use blockprov_forensics::stego::StegoVault;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// seal → extract is the identity for any evidence and any cover seed.
    #[test]
    fn round_trip(evidence in proptest::collection::vec(any::<u8>(), 1..4096),
                  prev_block in proptest::collection::vec(any::<u8>(), 0..128)) {
        let vault = StegoVault::new(b"prop-key");
        let file = vault.seal(&evidence, &prev_block).unwrap();
        prop_assert_eq!(vault.extract(&file).unwrap(), evidence);
    }

    /// Flipping any single byte anywhere in the container fails extraction.
    #[test]
    fn any_flip_fails(evidence in proptest::collection::vec(any::<u8>(), 1..1024),
                      pos_frac in 0.0f64..1.0,
                      flip in 1u8..=255) {
        let vault = StegoVault::new(b"prop-key");
        let mut file = vault.seal(&evidence, b"prev").unwrap();
        let pos = ((file.bytes.len() - 1) as f64 * pos_frac) as usize;
        file.bytes[pos] ^= flip;
        prop_assert!(vault.extract(&file).is_err(), "flip at {pos} must fail");
    }

    /// A different key never opens the container.
    #[test]
    fn wrong_key_never_opens(evidence in proptest::collection::vec(any::<u8>(), 1..1024),
                             key_a in proptest::collection::vec(any::<u8>(), 1..32),
                             key_b in proptest::collection::vec(any::<u8>(), 1..32)) {
        prop_assume!(key_a != key_b);
        let file = StegoVault::new(&key_a).seal(&evidence, b"prev").unwrap();
        prop_assert!(StegoVault::new(&key_b).extract(&file).is_err());
    }
}
