//! Property tests for group signatures: verification totality, opening
//! correctness, unlinkability of leaves, and tamper rejection.

use blockprov_crypto::groupsig::{verify_group, GroupManager};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any member's signature over any message verifies, opens to the right
    /// member, and never verifies for a different message.
    #[test]
    fn sign_verify_open(msg in proptest::collection::vec(any::<u8>(), 0..256),
                        other in proptest::collection::vec(any::<u8>(), 0..256),
                        member_idx in 0usize..3) {
        let (mgr, mut members) =
            GroupManager::setup(b"prop-group", &["a", "b", "c"], 4).unwrap();
        let pk = mgr.group_public_key();
        let name = members[member_idx].name().to_string();
        let sig = members[member_idx].sign(&msg).unwrap();
        prop_assert!(verify_group(&pk, &msg, &sig));
        prop_assert_eq!(mgr.open(&msg, &sig), Some(name.as_str()));
        if other != msg {
            prop_assert!(!verify_group(&pk, &other, &sig));
        }
    }

    /// Corrupting any OTS part invalidates the signature (and the manager
    /// refuses to open it).
    #[test]
    fn corruption_rejected(part in 0usize..67, byte in 0usize..32, flip in 1u8..=255) {
        let (mgr, mut members) =
            GroupManager::setup(b"prop-group-2", &["x", "y"], 2).unwrap();
        let pk = mgr.group_public_key();
        let mut sig = members[0].sign(b"fixed message").unwrap();
        let part = part % sig.ots.len();
        let mut raw = sig.ots[part].0;
        raw[byte] ^= flip;
        sig.ots[part] = blockprov_crypto::Hash256::from(raw);
        prop_assert!(!verify_group(&pk, b"fixed message", &sig));
        prop_assert_eq!(mgr.open(b"fixed message", &sig), None);
    }

    /// Every signature a member produces consumes a distinct leaf: the
    /// unlinkability invariant.
    #[test]
    fn leaves_never_repeat(count in 1usize..8) {
        let (_, mut members) =
            GroupManager::setup(b"prop-group-3", &["solo"], 8).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..count {
            let sig = members[0].sign(format!("m{i}").as_bytes()).unwrap();
            prop_assert!(seen.insert(sig.leaf_index), "leaf reused");
        }
    }
}
