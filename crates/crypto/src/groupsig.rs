//! Group signatures: anonymous, unlinkable signing with manager-only
//! opening.
//!
//! Abouyoussef et al. [3] build pandemic-diagnostics privacy on group
//! signatures ("privacy through group signature and random numbers,
//! supporting anonymity and data unlinkability"). This module provides the
//! same interface from hash-based primitives:
//!
//! * A **group manager** collects one-time WOTS leaf public keys from each
//!   member (never their secrets), shuffles them under a secret permutation,
//!   and publishes the Merkle root as the [`GroupPublicKey`].
//! * A **member** signs by consuming one of its leaves: the signature is a
//!   WOTS one-time signature plus the Merkle authentication path to the
//!   group root.
//! * Any verifier checks a signature against the 32-byte group root alone —
//!   learning only "some group member signed".
//! * Only the manager, holding the leaf→member **opening table**, can
//!   attribute a signature ([`GroupManager::open`]).
//!
//! Anonymity rests on leaf public keys being HMAC outputs (indistinguishable
//! from random without the member seed) and on the shuffled leaf order;
//! unlinkability holds because every signature consumes a fresh leaf, so two
//! signatures by the same member share no state a verifier can correlate.
//! Each member's signing capacity is fixed at enrollment (`per_member`
//! leaves) — the hash-based analogue of e-cash-style one-use credentials.

use crate::hmac::{hmac_sha256_parts, HmacDrbg};
use crate::merkle::{leaf_hash, MerkleProof, MerkleTree};
use crate::sha256::{Hash256, Sha256};
use crate::sig::{wots_leaf_pk, wots_recover_pk, wots_sign};
use blockprov_wire::{decode_seq, encode_seq, Codec, Reader, WireError, Writer};
use std::collections::HashMap;
use std::fmt;

/// Errors from group-signature operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupSigError {
    /// The member has consumed all of its enrolled one-time leaves.
    CredentialsExhausted,
    /// A group needs at least one member with at least one leaf.
    EmptyGroup,
}

impl fmt::Display for GroupSigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupSigError::CredentialsExhausted => {
                write!(f, "member has no unused one-time credentials left")
            }
            GroupSigError::EmptyGroup => write!(f, "group must have members and capacity"),
        }
    }
}

impl std::error::Error for GroupSigError {}

/// The public verification key of a group: a Merkle root over all members'
/// shuffled one-time leaf keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupPublicKey {
    /// Merkle root of the shuffled leaf public keys.
    pub root: Hash256,
    /// Total leaves in the group tree.
    pub leaves: u64,
}

impl Codec for GroupPublicKey {
    fn encode(&self, w: &mut Writer) {
        self.root.encode(w);
        w.put_u64(self.leaves);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self { root: Hash256::decode(r)?, leaves: r.get_u64()? })
    }
}

/// An anonymous signature by some group member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSignature {
    /// Position of the consumed leaf in the (shuffled) group tree.
    pub leaf_index: u64,
    /// WOTS one-time signature parts.
    pub ots: Vec<Hash256>,
    /// Authentication path from the leaf to the group root.
    pub auth_path: MerkleProof,
}

impl Codec for GroupSignature {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.leaf_index);
        encode_seq(&self.ots, w);
        self.auth_path.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            leaf_index: r.get_varint()?,
            ots: decode_seq(r)?,
            auth_path: MerkleProof::decode(r)?,
        })
    }
}

impl GroupSignature {
    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_wire().len()
    }
}

/// One enrolled credential held by a member: a tree position plus its
/// authentication path.
#[derive(Debug, Clone)]
struct Credential {
    /// Member-local slot (selects the WOTS secrets).
    slot: u64,
    /// Position in the group tree.
    leaf_index: u64,
    /// Path from the leaf to the group root.
    auth_path: MerkleProof,
}

/// A member's signing handle. Holds the member seed (secrets never leave
/// this struct) and the unused credentials.
pub struct GroupMember {
    name: String,
    seed: [u8; 32],
    credentials: Vec<Credential>,
    used: usize,
}

impl fmt::Debug for GroupMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupMember")
            .field("name", &self.name)
            .field("remaining", &self.remaining())
            .finish_non_exhaustive()
    }
}

impl GroupMember {
    /// Member display name (local knowledge; never appears in signatures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unused one-time credentials.
    pub fn remaining(&self) -> usize {
        self.credentials.len() - self.used
    }

    /// Sign `msg` anonymously, consuming one credential.
    pub fn sign(&mut self, msg: &[u8]) -> Result<GroupSignature, GroupSigError> {
        let cred = self
            .credentials
            .get(self.used)
            .ok_or(GroupSigError::CredentialsExhausted)?;
        self.used += 1;
        let digest = group_digest(msg);
        Ok(GroupSignature {
            leaf_index: cred.leaf_index,
            ots: wots_sign(&self.seed, cred.slot, &digest),
            auth_path: cred.auth_path.clone(),
        })
    }
}

/// The group manager: issues the group, holds the opening table.
pub struct GroupManager {
    group_pk: GroupPublicKey,
    /// leaf index in the group tree → member name.
    opening: HashMap<u64, String>,
}

impl fmt::Debug for GroupManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupManager")
            .field("root", &self.group_pk.root)
            .field("leaves", &self.group_pk.leaves)
            .finish_non_exhaustive()
    }
}

impl GroupManager {
    /// Enroll `members` with `per_member` one-time credentials each.
    ///
    /// `group_seed` drives the secret shuffle of leaves (and member seeds in
    /// this simulation — a production deployment would have members submit
    /// leaf public keys generated from their own entropy; the manager-side
    /// math is identical).
    pub fn setup(
        group_seed: &[u8],
        members: &[&str],
        per_member: usize,
    ) -> Result<(GroupManager, Vec<GroupMember>), GroupSigError> {
        if members.is_empty() || per_member == 0 {
            return Err(GroupSigError::EmptyGroup);
        }
        // Per-member seeds (stand-in for member-generated entropy).
        let member_seeds: Vec<[u8; 32]> = members
            .iter()
            .map(|m| {
                hmac_sha256_parts(group_seed, &[b"groupsig-member-seed", m.as_bytes()]).0
            })
            .collect();

        // Every (member, slot) pair contributes one leaf public key.
        let mut slots: Vec<(usize, u64, Hash256)> = Vec::with_capacity(members.len() * per_member);
        for (mi, seed) in member_seeds.iter().enumerate() {
            for slot in 0..per_member as u64 {
                slots.push((mi, slot, wots_leaf_pk(seed, slot)));
            }
        }

        // Secret shuffle: leaf order must not group members together,
        // otherwise leaf_index ranges would leak identity.
        let mut drbg = HmacDrbg::new(
            hmac_sha256_parts(group_seed, &[b"groupsig-shuffle"]).as_bytes(),
        );
        drbg.shuffle(&mut slots);

        let leaf_hashes: Vec<Hash256> =
            slots.iter().map(|(_, _, pk)| leaf_hash(pk.as_bytes())).collect();
        let tree = MerkleTree::from_leaf_hashes(leaf_hashes);
        let group_pk = GroupPublicKey { root: tree.root(), leaves: slots.len() as u64 };

        let mut opening = HashMap::with_capacity(slots.len());
        let mut credentials: Vec<Vec<Credential>> = vec![Vec::new(); members.len()];
        for (leaf_index, (mi, slot, _)) in slots.iter().enumerate() {
            opening.insert(leaf_index as u64, members[*mi].to_string());
            credentials[*mi].push(Credential {
                slot: *slot,
                leaf_index: leaf_index as u64,
                auth_path: tree.prove(leaf_index).expect("leaf in range"),
            });
        }

        let member_handles = members
            .iter()
            .zip(member_seeds)
            .zip(credentials)
            .map(|((name, seed), credentials)| GroupMember {
                name: name.to_string(),
                seed,
                credentials,
                used: 0,
            })
            .collect();

        Ok((GroupManager { group_pk, opening }, member_handles))
    }

    /// The public verification key.
    pub fn group_public_key(&self) -> GroupPublicKey {
        self.group_pk
    }

    /// Attribute a *valid* signature to its member. Returns None for
    /// signatures that do not verify (refusing to "open" forgeries prevents
    /// framing) or whose leaf is unknown.
    pub fn open(&self, msg: &[u8], sig: &GroupSignature) -> Option<&str> {
        if !verify_group(&self.group_pk, msg, sig) {
            return None;
        }
        self.opening.get(&sig.leaf_index).map(String::as_str)
    }
}

/// Domain-separated digest for group signing.
fn group_digest(msg: &[u8]) -> Hash256 {
    Sha256::new().chain(b"blockprov-groupsig-v1").chain(msg).finalize()
}

/// Verify an anonymous signature against the group public key.
pub fn verify_group(pk: &GroupPublicKey, msg: &[u8], sig: &GroupSignature) -> bool {
    if sig.leaf_index >= pk.leaves {
        return false;
    }
    let digest = group_digest(msg);
    let Some(leaf_pk) = wots_recover_pk(&digest, &sig.ots) else {
        return false;
    };
    sig.auth_path.verify_leaf_hash(&pk.root, &leaf_hash(leaf_pk.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn small_group() -> (GroupManager, Vec<GroupMember>) {
        GroupManager::setup(b"clinic-group-1", &["alice", "bob", "carol"], 4).unwrap()
    }

    #[test]
    fn member_signature_verifies_against_group_root() {
        let (mgr, mut members) = small_group();
        let pk = mgr.group_public_key();
        let sig = members[0].sign(b"symptoms: fever").unwrap();
        assert!(verify_group(&pk, b"symptoms: fever", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (mgr, mut members) = small_group();
        let pk = mgr.group_public_key();
        let sig = members[1].sign(b"original").unwrap();
        assert!(!verify_group(&pk, b"altered", &sig));
    }

    #[test]
    fn non_member_cannot_forge() {
        let (mgr, _) = small_group();
        let (_, mut outsiders) =
            GroupManager::setup(b"another-group", &["mallory"], 2).unwrap();
        let sig = outsiders[0].sign(b"let me in").unwrap();
        assert!(!verify_group(&mgr.group_public_key(), b"let me in", &sig));
    }

    #[test]
    fn manager_opens_to_correct_member() {
        let (mgr, mut members) = small_group();
        for expected in ["alice", "bob", "carol"] {
            let m = members.iter_mut().find(|m| m.name() == expected).unwrap();
            let sig = m.sign(b"report").unwrap();
            assert_eq!(mgr.open(b"report", &sig), Some(expected));
        }
    }

    #[test]
    fn open_refuses_invalid_signatures() {
        let (mgr, mut members) = small_group();
        let mut sig = members[0].sign(b"msg").unwrap();
        sig.ots[3] = sha256(b"tamper");
        assert_eq!(mgr.open(b"msg", &sig), None);
    }

    #[test]
    fn signatures_are_unlinkable_fresh_leaves() {
        let (mgr, mut members) = small_group();
        let pk = mgr.group_public_key();
        let s1 = members[2].sign(b"first").unwrap();
        let s2 = members[2].sign(b"second").unwrap();
        // Different one-time leaves, no shared OTS material.
        assert_ne!(s1.leaf_index, s2.leaf_index);
        assert!(s1.ots.iter().all(|p| !s2.ots.contains(p)));
        assert!(verify_group(&pk, b"first", &s1));
        assert!(verify_group(&pk, b"second", &s2));
        // Yet the manager links both to carol.
        assert_eq!(mgr.open(b"first", &s1), Some("carol"));
        assert_eq!(mgr.open(b"second", &s2), Some("carol"));
    }

    #[test]
    fn leaf_indices_do_not_cluster_by_member() {
        // With a secret shuffle, a member's first credential should not
        // simply be `member_index * per_member`.
        let (_, members) = small_group();
        let firsts: Vec<u64> = members.iter().map(|m| m.credentials[0].leaf_index).collect();
        assert_ne!(firsts, vec![0, 4, 8], "shuffle must break enrollment order");
    }

    #[test]
    fn capacity_is_enforced() {
        let (_, mut members) =
            GroupManager::setup(b"tiny", &["solo"], 2).unwrap();
        members[0].sign(b"a").unwrap();
        members[0].sign(b"b").unwrap();
        assert_eq!(members[0].remaining(), 0);
        assert_eq!(members[0].sign(b"c"), Err(GroupSigError::CredentialsExhausted));
    }

    #[test]
    fn empty_group_rejected() {
        assert_eq!(
            GroupManager::setup(b"x", &[], 4).err(),
            Some(GroupSigError::EmptyGroup)
        );
        assert_eq!(
            GroupManager::setup(b"x", &["a"], 0).err(),
            Some(GroupSigError::EmptyGroup)
        );
    }

    #[test]
    fn signature_codec_round_trip() {
        let (mgr, mut members) = small_group();
        let sig = members[0].sign(b"wire").unwrap();
        let back = GroupSignature::from_wire(&sig.to_wire()).unwrap();
        assert_eq!(back, sig);
        assert!(verify_group(&mgr.group_public_key(), b"wire", &back));
        let pk = mgr.group_public_key();
        assert_eq!(GroupPublicKey::from_wire(&pk.to_wire()).unwrap(), pk);
    }

    #[test]
    fn replayed_leaf_cannot_sign_second_message() {
        // A verifier-side double-spend check: the same leaf signing two
        // different messages reveals reuse; on-chain consumers track used
        // leaf indices. Here we check the signature itself cannot be
        // transplanted onto a new message.
        let (mgr, mut members) = small_group();
        let pk = mgr.group_public_key();
        let sig = members[0].sign(b"msg-one").unwrap();
        let forged = GroupSignature {
            leaf_index: sig.leaf_index,
            ots: sig.ots.clone(),
            auth_path: sig.auth_path.clone(),
        };
        assert!(!verify_group(&pk, b"msg-two", &forged));
    }
}
