//! Hash-based digital signatures.
//!
//! The workspace may not depend on external crypto crates, and implementing
//! elliptic-curve arithmetic from scratch would be reckless, so signatures
//! are hash-based — the one family whose security rests solely on the
//! preimage resistance of the underlying hash (our own SHA-256):
//!
//! * **Lamport** one-time signatures — simple, fast keygen, ~16 KiB
//!   signatures.
//! * **WOTS** (Winternitz, w=16) one-time signatures — ~2.1 KiB signatures
//!   at ~16× the chain work.
//! * **MSS** (Merkle signature scheme) — a Merkle tree over `2^h` one-time
//!   leaf keys turns either OTS into a many-time scheme with a single
//!   32-byte public key. Signing is *stateful*: each leaf must be used at
//!   most once, which [`Keypair::sign`] enforces.
//!
//! All secret material is derived from a 32-byte seed via HMAC-DRBG, so a
//! keypair stores no secret arrays.

use crate::hmac::hmac_sha256_parts;
use crate::merkle::{leaf_hash, MerkleProof, MerkleTree};
use crate::sha256::{sha256, Hash256, Sha256};
use blockprov_wire::{decode_seq, encode_seq, Codec, Reader, WireError, Writer};
use std::fmt;

/// Which one-time scheme the keypair's leaves use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OtsScheme {
    /// Lamport-Diffie: 2×256 secret values, reveal one per digest bit.
    Lamport,
    /// Winternitz with 4-bit chunks: 67 chains of length 16.
    Wots,
}

impl Codec for OtsScheme {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            OtsScheme::Lamport => 0,
            OtsScheme::Wots => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(OtsScheme::Lamport),
            1 => Ok(OtsScheme::Wots),
            v => Err(WireError::UnknownDiscriminant {
                type_name: "OtsScheme",
                value: v as u64,
            }),
        }
    }
}

/// Errors from signing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigningError {
    /// All `2^h` one-time leaves have been used.
    KeyExhausted,
}

impl fmt::Display for SigningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigningError::KeyExhausted => write!(f, "all one-time signature leaves used"),
        }
    }
}

impl std::error::Error for SigningError {}

// ---------------------------------------------------------------------------
// One-time signature internals
// ---------------------------------------------------------------------------

const WOTS_W: u32 = 16;
const WOTS_MSG_CHAINS: usize = 64; // 256 bits / 4 bits per chain
const WOTS_CSUM_CHAINS: usize = 3; // ceil(log16(64 * 15)) = 3
const WOTS_CHAINS: usize = WOTS_MSG_CHAINS + WOTS_CSUM_CHAINS;

/// Derive the j-th secret value of leaf `leaf` from the keypair seed.
fn derive_secret(seed: &[u8; 32], leaf: u64, j: u32) -> Hash256 {
    hmac_sha256_parts(
        seed,
        &[b"blockprov-ots", &leaf.to_le_bytes(), &j.to_le_bytes()],
    )
}

/// Iterate the chain hash `n` times.
fn chain(mut v: Hash256, n: u32) -> Hash256 {
    for _ in 0..n {
        v = Sha256::new().chain(&[0x03]).chain(v.as_bytes()).finalize();
    }
    v
}

/// Split a digest into 64 base-16 digits plus the 3-digit Winternitz checksum.
fn wots_digits(digest: &Hash256) -> [u8; WOTS_CHAINS] {
    let mut out = [0u8; WOTS_CHAINS];
    for (i, byte) in digest.0.iter().enumerate() {
        out[2 * i] = byte >> 4;
        out[2 * i + 1] = byte & 0x0F;
    }
    let csum: u32 = out[..WOTS_MSG_CHAINS]
        .iter()
        .map(|&d| (WOTS_W - 1) - d as u32)
        .sum();
    out[WOTS_MSG_CHAINS] = ((csum >> 8) & 0x0F) as u8;
    out[WOTS_MSG_CHAINS + 1] = ((csum >> 4) & 0x0F) as u8;
    out[WOTS_MSG_CHAINS + 2] = (csum & 0x0F) as u8;
    out
}

/// Compute the compact public key of one WOTS leaf.
pub(crate) fn wots_leaf_pk(seed: &[u8; 32], leaf: u64) -> Hash256 {
    let mut h = Sha256::new().chain(b"wots-pk");
    for j in 0..WOTS_CHAINS as u32 {
        let end = chain(derive_secret(seed, leaf, j), WOTS_W - 1);
        h.update(end.as_bytes());
    }
    h.finalize()
}

pub(crate) fn wots_sign(seed: &[u8; 32], leaf: u64, digest: &Hash256) -> Vec<Hash256> {
    wots_digits(digest)
        .iter()
        .enumerate()
        .map(|(j, &d)| chain(derive_secret(seed, leaf, j as u32), d as u32))
        .collect()
}

pub(crate) fn wots_recover_pk(digest: &Hash256, sig: &[Hash256]) -> Option<Hash256> {
    if sig.len() != WOTS_CHAINS {
        return None;
    }
    let digits = wots_digits(digest);
    let mut h = Sha256::new().chain(b"wots-pk");
    for (j, part) in sig.iter().enumerate() {
        let end = chain(*part, (WOTS_W - 1) - digits[j] as u32);
        h.update(end.as_bytes());
    }
    Some(h.finalize())
}

const LAMPORT_PARTS: usize = 512; // 2 per digest bit

/// Compact public key of one Lamport leaf.
fn lamport_leaf_pk(seed: &[u8; 32], leaf: u64) -> Hash256 {
    let mut h = Sha256::new().chain(b"lamport-pk");
    for j in 0..LAMPORT_PARTS as u32 {
        let pk_j = sha256(derive_secret(seed, leaf, j).as_bytes());
        h.update(pk_j.as_bytes());
    }
    h.finalize()
}

/// Lamport signature: for bit k with value b, reveal secret `2k+b` and the
/// *hash* of the unused counterpart so the verifier can rebuild the leaf pk.
fn lamport_sign(seed: &[u8; 32], leaf: u64, digest: &Hash256) -> Vec<Hash256> {
    let mut out = Vec::with_capacity(LAMPORT_PARTS);
    for k in 0..256u32 {
        let bit = (digest.0[(k / 8) as usize] >> (7 - (k % 8))) & 1;
        let used = derive_secret(seed, leaf, 2 * k + bit as u32);
        let unused_pk = sha256(derive_secret(seed, leaf, 2 * k + (1 - bit) as u32).as_bytes());
        // Order: [revealed secret, counterpart public half].
        out.push(used);
        out.push(unused_pk);
    }
    out
}

fn lamport_recover_pk(digest: &Hash256, sig: &[Hash256]) -> Option<Hash256> {
    if sig.len() != LAMPORT_PARTS {
        return None;
    }
    let mut h = Sha256::new().chain(b"lamport-pk");
    for k in 0..256usize {
        let bit = (digest.0[k / 8] >> (7 - (k % 8))) & 1;
        let revealed_pk = sha256(sig[2 * k].as_bytes());
        let counterpart = sig[2 * k + 1];
        // Reassemble in canonical (j = 2k, 2k+1) order.
        let (pk0, pk1) = if bit == 0 {
            (revealed_pk, counterpart)
        } else {
            (counterpart, revealed_pk)
        };
        h.update(pk0.as_bytes());
        h.update(pk1.as_bytes());
    }
    Some(h.finalize())
}

// ---------------------------------------------------------------------------
// Merkle signature scheme (many-time)
// ---------------------------------------------------------------------------

/// A stateful many-time signing key (MSS over one-time leaves).
#[derive(Clone)]
pub struct Keypair {
    seed: [u8; 32],
    scheme: OtsScheme,
    height: u32,
    tree: MerkleTree,
    next_leaf: u64,
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keypair")
            .field("scheme", &self.scheme)
            .field("height", &self.height)
            .field("next_leaf", &self.next_leaf)
            .field("root", &self.tree.root())
            .finish_non_exhaustive()
    }
}

/// A verifying key: the MSS root plus scheme parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Merkle root over the one-time leaf public keys.
    pub root: Hash256,
    /// One-time scheme of the leaves.
    pub scheme: OtsScheme,
    /// Tree height (`2^height` one-time keys).
    pub height: u32,
}

impl PublicKey {
    /// Stable account identifier derived from the key.
    pub fn id(&self) -> Hash256 {
        let mut w = Writer::new();
        self.encode(&mut w);
        sha256(w.as_slice())
    }
}

impl Codec for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.root.encode(w);
        self.scheme.encode(w);
        w.put_u8(self.height as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            root: Hash256::decode(r)?,
            scheme: OtsScheme::decode(r)?,
            height: r.get_u8()? as u32,
        })
    }
}

/// A signature: one-time signature + Merkle authentication of its leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Which one-time leaf signed.
    pub leaf_index: u64,
    /// One-time signature parts (scheme-dependent layout).
    pub ots: Vec<Hash256>,
    /// Proof that the leaf public key is under the MSS root.
    pub auth_path: MerkleProof,
}

impl Codec for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.leaf_index);
        encode_seq(&self.ots, w);
        self.auth_path.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            leaf_index: r.get_varint()?,
            ots: decode_seq(r)?,
            auth_path: MerkleProof::decode(r)?,
        })
    }
}

impl Signature {
    /// Serialized size in bytes (signature-size benches).
    pub fn encoded_len(&self) -> usize {
        self.to_wire().len()
    }
}

impl Keypair {
    /// Generate a keypair from a seed.
    ///
    /// `height` bounds the number of signatures to `2^height`; keygen cost is
    /// `O(2^height)` chain computations. Heights of 4–10 cover every workload
    /// in this workspace.
    pub fn generate(seed: [u8; 32], scheme: OtsScheme, height: u32) -> Self {
        assert!(
            height <= 20,
            "MSS height above 2^20 leaves is not supported"
        );
        let leaves = 1u64 << height;
        let leaf_hashes: Vec<Hash256> = (0..leaves)
            .map(|i| {
                let pk = match scheme {
                    OtsScheme::Lamport => lamport_leaf_pk(&seed, i),
                    OtsScheme::Wots => wots_leaf_pk(&seed, i),
                };
                leaf_hash(pk.as_bytes())
            })
            .collect();
        let tree = MerkleTree::from_leaf_hashes(leaf_hashes);
        Self {
            seed,
            scheme,
            height,
            tree,
            next_leaf: 0,
        }
    }

    /// Convenience: derive the seed from a name (tests, examples, workloads).
    pub fn from_name(name: &str, scheme: OtsScheme, height: u32) -> Self {
        Self::generate(sha256(name.as_bytes()).0, scheme, height)
    }

    /// The verifying key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey {
            root: self.tree.root(),
            scheme: self.scheme,
            height: self.height,
        }
    }

    /// Signatures remaining before exhaustion.
    pub fn remaining(&self) -> u64 {
        (1u64 << self.height) - self.next_leaf
    }

    /// Sign a message, consuming the next one-time leaf.
    pub fn sign(&mut self, msg: &[u8]) -> Result<Signature, SigningError> {
        let leaf = self.next_leaf;
        if leaf >= (1u64 << self.height) {
            return Err(SigningError::KeyExhausted);
        }
        self.next_leaf += 1;
        let digest = message_digest(msg);
        let ots = match self.scheme {
            OtsScheme::Lamport => lamport_sign(&self.seed, leaf, &digest),
            OtsScheme::Wots => wots_sign(&self.seed, leaf, &digest),
        };
        let auth_path = self.tree.prove(leaf as usize).expect("leaf index in range");
        Ok(Signature {
            leaf_index: leaf,
            ots,
            auth_path,
        })
    }
}

/// Domain-separated message digest (prevents cross-protocol replays).
fn message_digest(msg: &[u8]) -> Hash256 {
    Sha256::new()
        .chain(b"blockprov-msg-v1")
        .chain(msg)
        .finalize()
}

/// Verify `sig` over `msg` under `pk`.
pub fn verify(pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
    if sig.leaf_index >= (1u64 << pk.height) {
        return false;
    }
    let digest = message_digest(msg);
    let leaf_pk = match pk.scheme {
        OtsScheme::Lamport => lamport_recover_pk(&digest, &sig.ots),
        OtsScheme::Wots => wots_recover_pk(&digest, &sig.ots),
    };
    let Some(leaf_pk) = leaf_pk else { return false };
    sig.auth_path
        .verify_leaf_hash(&pk.root, &leaf_hash(leaf_pk.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(scheme: OtsScheme) -> Keypair {
        Keypair::from_name("tester", scheme, 3)
    }

    #[test]
    fn sign_verify_both_schemes() {
        for scheme in [OtsScheme::Lamport, OtsScheme::Wots] {
            let mut kp = pair(scheme);
            let pk = kp.public_key();
            let sig = kp.sign(b"hello provenance").unwrap();
            assert!(verify(&pk, b"hello provenance", &sig), "{scheme:?}");
        }
    }

    #[test]
    fn wrong_message_rejected() {
        for scheme in [OtsScheme::Lamport, OtsScheme::Wots] {
            let mut kp = pair(scheme);
            let pk = kp.public_key();
            let sig = kp.sign(b"original").unwrap();
            assert!(!verify(&pk, b"tampered", &sig), "{scheme:?}");
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let mut kp = pair(OtsScheme::Wots);
        let other = Keypair::from_name("other", OtsScheme::Wots, 3).public_key();
        let sig = kp.sign(b"msg").unwrap();
        assert!(!verify(&other, b"msg", &sig));
    }

    #[test]
    fn tampered_signature_part_rejected() {
        let mut kp = pair(OtsScheme::Wots);
        let pk = kp.public_key();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.ots[5] = sha256(b"garbage");
        assert!(!verify(&pk, b"msg", &sig));
    }

    #[test]
    fn leaves_are_consumed_and_exhaust() {
        let mut kp = Keypair::from_name("small", OtsScheme::Wots, 2);
        let pk = kp.public_key();
        for i in 0..4 {
            let msg = format!("msg-{i}");
            let sig = kp.sign(msg.as_bytes()).unwrap();
            assert_eq!(sig.leaf_index, i);
            assert!(verify(&pk, msg.as_bytes(), &sig));
        }
        assert_eq!(kp.sign(b"one too many"), Err(SigningError::KeyExhausted));
        assert_eq!(kp.remaining(), 0);
    }

    #[test]
    fn signature_codec_round_trip() {
        let mut kp = pair(OtsScheme::Wots);
        let pk = kp.public_key();
        let sig = kp.sign(b"wire me").unwrap();
        let decoded = Signature::from_wire(&sig.to_wire()).unwrap();
        assert_eq!(decoded, sig);
        assert!(verify(&pk, b"wire me", &decoded));
    }

    #[test]
    fn public_key_codec_and_id() {
        let kp = pair(OtsScheme::Lamport);
        let pk = kp.public_key();
        let decoded = PublicKey::from_wire(&pk.to_wire()).unwrap();
        assert_eq!(decoded, pk);
        assert_eq!(decoded.id(), pk.id());
        assert_ne!(pk.id(), pair(OtsScheme::Wots).public_key().id());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Keypair::from_name("same", OtsScheme::Wots, 2).public_key();
        let b = Keypair::from_name("same", OtsScheme::Wots, 2).public_key();
        assert_eq!(a, b);
    }

    #[test]
    fn wots_checksum_digits_cover_range() {
        // All-zero digest maximizes the checksum (64 * 15 = 960 = 0x3C0).
        let digits = wots_digits(&Hash256::ZERO);
        assert_eq!(&digits[WOTS_MSG_CHAINS..], &[0x3, 0xC, 0x0]);
        // All-0xF digest gives checksum zero.
        let digits = wots_digits(&Hash256([0xFF; 32]));
        assert_eq!(&digits[WOTS_MSG_CHAINS..], &[0, 0, 0]);
    }

    #[test]
    fn wots_signature_is_much_smaller_than_lamport() {
        let mut wots = pair(OtsScheme::Wots);
        let mut lamport = pair(OtsScheme::Lamport);
        let sw = wots.sign(b"size").unwrap().encoded_len();
        let sl = lamport.sign(b"size").unwrap().encoded_len();
        assert!(sw * 4 < sl, "wots {sw} vs lamport {sl}");
    }
}
