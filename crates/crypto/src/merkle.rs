//! Merkle trees with domain-separated hashing and inclusion proofs.
//!
//! This is the tamper-evidence mechanism of the paper's Figure 2: a block
//! header commits to its transactions through the Merkle root, so altering
//! any transaction invalidates the header and every subsequent block.
//!
//! Design notes:
//!
//! * Leaf and interior hashes use distinct prefixes (`0x00` / `0x01`,
//!   RFC 6962 style) so an interior node can never be replayed as a leaf
//!   (second-preimage defence).
//! * Odd nodes are promoted unchanged to the next level (no duplication, so
//!   the CVE-2012-2459-style duplicate-leaf ambiguity cannot arise).
//! * The empty tree has a distinguished root `H(0x02 || "merkle-empty")`.

use crate::sha256::{Hash256, Sha256};
use blockprov_wire::{decode_seq, encode_seq, Codec, Reader, WireError, Writer};

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;
const EMPTY_PREFIX: u8 = 0x02;

/// Hash a leaf payload.
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    Sha256::new().chain(&[LEAF_PREFIX]).chain(data).finalize()
}

/// Hash two child digests into a parent.
pub fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    Sha256::new()
        .chain(&[NODE_PREFIX])
        .chain(left.as_bytes())
        .chain(right.as_bytes())
        .finalize()
}

/// Root of the empty tree.
pub fn empty_root() -> Hash256 {
    Sha256::new()
        .chain(&[EMPTY_PREFIX])
        .chain(b"merkle-empty")
        .finalize()
}

/// An immutable Merkle tree storing all levels for O(log n) proof extraction.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`. Empty for 0 leaves.
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Build from raw leaf payloads.
    pub fn from_data<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        Self::from_leaf_hashes(leaves.iter().map(|l| leaf_hash(l.as_ref())).collect())
    }

    /// Build from already-hashed leaves.
    pub fn from_leaf_hashes(leaves: Vec<Hash256>) -> Self {
        if leaves.is_empty() {
            return Self { levels: Vec::new() };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < prev.len() {
                next.push(node_hash(&prev[i], &prev[i + 1]));
                i += 2;
            }
            if i < prev.len() {
                // Odd node: promote unchanged.
                next.push(prev[i]);
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The root digest.
    pub fn root(&self) -> Hash256 {
        match self.levels.last() {
            Some(top) => top[0],
            None => empty_root(),
        }
    }

    /// Leaf hash at `index`, if present.
    pub fn leaf(&self, index: usize) -> Option<Hash256> {
        self.levels.first().and_then(|l| l.get(index)).copied()
    }

    /// Produce an inclusion proof for the leaf at `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len());
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                siblings.push(ProofStep {
                    hash: level[sibling_idx],
                    sibling_on_left: sibling_idx < idx,
                });
            }
            // If no sibling (odd promotion), the node moves up unchanged and
            // contributes no step.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index as u64,
            leaf_count: self.len() as u64,
            siblings,
        })
    }
}

/// One step of a Merkle path: a sibling digest and its side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling node's digest.
    pub hash: Hash256,
    /// True if the sibling sits to the left of the running hash.
    pub sibling_on_left: bool,
}

impl Codec for ProofStep {
    fn encode(&self, w: &mut Writer) {
        self.hash.encode(w);
        self.sibling_on_left.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            hash: Hash256::decode(r)?,
            sibling_on_left: bool::decode(r)?,
        })
    }
}

/// An inclusion proof binding one leaf to a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: u64,
    /// Total number of leaves in the tree at proof time.
    pub leaf_count: u64,
    /// Bottom-up sibling path.
    pub siblings: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verify that `data` is the leaf this proof commits to under `root`.
    pub fn verify_data(&self, root: &Hash256, data: &[u8]) -> bool {
        self.verify_leaf_hash(root, &leaf_hash(data))
    }

    /// Verify with a precomputed leaf hash.
    pub fn verify_leaf_hash(&self, root: &Hash256, leaf: &Hash256) -> bool {
        let mut acc = *leaf;
        for step in &self.siblings {
            acc = if step.sibling_on_left {
                node_hash(&step.hash, &acc)
            } else {
                node_hash(&acc, &step.hash)
            };
        }
        acc == *root
    }

    /// Size of the proof in bytes when serialized (for storage benches).
    pub fn encoded_len(&self) -> usize {
        self.to_wire().len()
    }
}

impl Codec for MerkleProof {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.leaf_index);
        w.put_varint(self.leaf_count);
        encode_seq(&self.siblings, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            leaf_index: r.get_varint()?,
            leaf_count: r.get_varint()?,
            siblings: decode_seq(r)?,
        })
    }
}

/// Convenience: compute the Merkle root of a list of payloads.
pub fn merkle_root<T: AsRef<[u8]>>(leaves: &[T]) -> Hash256 {
    MerkleTree::from_data(leaves).root()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_sentinel_root() {
        let t = MerkleTree::from_data::<Vec<u8>>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), empty_root());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_data(&[b"only".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"only"));
        let p = t.prove(0).unwrap();
        assert!(p.siblings.is_empty());
        assert!(p.verify_data(&t.root(), b"only"));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_indices() {
        for n in 1..=33 {
            let data = leaves(n);
            let t = MerkleTree::from_data(&data);
            for (i, leaf) in data.iter().enumerate() {
                let p = t.prove(i).unwrap_or_else(|| panic!("no proof n={n} i={i}"));
                assert!(p.verify_data(&t.root(), leaf), "verify n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_and_wrong_root() {
        let data = leaves(8);
        let t = MerkleTree::from_data(&data);
        let p = t.prove(3).unwrap();
        assert!(!p.verify_data(&t.root(), b"not-the-leaf"));
        let other = MerkleTree::from_data(&leaves(9));
        assert!(!p.verify_data(&other.root(), &data[3]));
    }

    #[test]
    fn tampering_any_leaf_changes_root() {
        let data = leaves(16);
        let base = merkle_root(&data);
        for i in 0..16 {
            let mut tampered = data.clone();
            tampered[i][0] ^= 0xFF;
            assert_ne!(merkle_root(&tampered), base, "tamper at {i}");
        }
    }

    #[test]
    fn leaf_order_matters() {
        let a = merkle_root(&[b"x".to_vec(), b"y".to_vec()]);
        let b = merkle_root(&[b"y".to_vec(), b"x".to_vec()]);
        assert_ne!(a, b);
    }

    #[test]
    fn interior_node_cannot_pose_as_leaf() {
        // Domain separation: a two-leaf root differs from the leaf hash of
        // the concatenated children, so no interior/leaf confusion exists.
        let l = leaf_hash(b"a");
        let r = leaf_hash(b"b");
        let interior = node_hash(&l, &r);
        let mut concat = Vec::new();
        concat.extend_from_slice(l.as_bytes());
        concat.extend_from_slice(r.as_bytes());
        assert_ne!(interior, leaf_hash(&concat));
    }

    #[test]
    fn proof_codec_round_trip() {
        let data = leaves(11);
        let t = MerkleTree::from_data(&data);
        let p = t.prove(10).unwrap();
        let decoded = MerkleProof::from_wire(&p.to_wire()).unwrap();
        assert_eq!(decoded, p);
        assert!(decoded.verify_data(&t.root(), &data[10]));
    }

    #[test]
    fn proof_length_is_logarithmic() {
        let t = MerkleTree::from_data(&leaves(1024));
        let p = t.prove(512).unwrap();
        assert_eq!(p.siblings.len(), 10); // log2(1024)
    }
}
