//! Cryptographic substrate for the blockprov workspace, implemented from
//! scratch (no external crypto dependencies).
//!
//! Contents:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 with an incremental hasher and the
//!   workspace-wide [`Hash256`] digest type.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) and a deterministic HMAC-DRBG
//!   (SP 800-90A profile) used wherever protocol randomness must be
//!   reproducible (PoS leader election, key derivation, workload seeds).
//! * [`merkle`] — RFC 6962-style Merkle trees with domain-separated leaf and
//!   node hashes and logarithmic inclusion proofs (the paper's Figure 2
//!   tamper-evidence mechanism).
//! * [`dmt`] — the *distributed Merkle tree* of ForensiBlock [12]: per-case
//!   segment trees aggregated under a top tree, with compound proofs.
//! * [`sig`] — hash-based signatures: Lamport and Winternitz one-time
//!   signatures plus a Merkle (many-time) signature scheme. These substitute
//!   ECDSA/EdDSA (see DESIGN.md §Substitutions): same API, unforgeability
//!   resting on SHA-256 preimage resistance.
//! * [`groupsig`] — hash-based group signatures (anonymous sign, public
//!   verify against a 32-byte group root, manager-only opening), the
//!   anonymity/unlinkability primitive of Abouyoussef et al. [3].
//! * [`commit`] — salted hash commitments.
//! * [`rangeproof`] — hash-chain range proofs in the issuer-trust model
//!   (HashWires-style), standing in for PrivChain's ZK range proofs.

pub mod commit;
pub mod dmt;
pub mod groupsig;
pub mod hmac;
pub mod merkle;
pub mod rangeproof;
pub mod sha256;
pub mod sig;

pub use commit::Commitment;
pub use dmt::{CompoundProof, DistributedMerkleTree};
pub use groupsig::{verify_group, GroupManager, GroupMember, GroupPublicKey, GroupSignature};
pub use hmac::{hmac_sha256, HmacDrbg};
pub use merkle::{MerkleProof, MerkleTree};
pub use rangeproof::{RangeCommitment, RangeProof};
pub use sha256::{sha256, Hash256, Sha256};
pub use sig::{Keypair, PublicKey, Signature, SigningError};
