//! SHA-256 (FIPS 180-4) and the workspace digest type [`Hash256`].

use blockprov_wire::{Codec, Reader, WireError, Writer};
use std::fmt;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use blockprov_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }

        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Absorb `data` and return `self` (builder style).
    pub fn chain(mut self, data: &[u8]) -> Self {
        self.update(data);
        self
    }

    /// Finish and return the digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual write of the length: `update` would recount it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Hash256 {
    Sha256::new().chain(data).finalize()
}

/// A 256-bit digest — the universal identifier type of the workspace.
///
/// Block hashes, transaction ids, Merkle roots, account ids and content
/// addresses are all `Hash256` values (usually behind a newtype).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero digest, used as the genesis parent pointer.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// View as bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex encoding.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xF) as usize] as char);
        }
        s
    }

    /// Parse from a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Hash256> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let nibble = |c: u8| -> Option<u8> {
            match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                b'A'..=b'F' => Some(c - b'A' + 10),
                _ => None,
            }
        };
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = (nibble(bytes[2 * i])? << 4) | nibble(bytes[2 * i + 1])?;
        }
        Some(Hash256(out))
    }

    /// Short prefix for display (first 8 hex chars).
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Interpret the first 8 bytes as a big-endian integer — used for
    /// difficulty comparisons and deterministic sampling.
    pub fn leading_u64(&self) -> u64 {
        u64::from_be_bytes([
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5], self.0[6], self.0[7],
        ])
    }

    /// Number of leading zero bits, used as a PoW difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0;
        for b in self.0 {
            if b == 0 {
                bits += 8;
            } else {
                bits += b.leading_zeros();
                break;
            }
        }
        bits
    }

    /// XOR two digests (used for key derivation tweaks).
    pub fn xor(&self, other: &Hash256) -> Hash256 {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            *o = a ^ b;
        }
        Hash256(out)
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({}…)", self.short())
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(v: [u8; 32]) -> Self {
        Hash256(v)
    }
}

impl Codec for Hash256 {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = r.get_raw(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(raw);
        Ok(Hash256(out))
    }
}

/// Hash a sequence of labeled parts with unambiguous framing.
///
/// Every part is length-prefixed before hashing so `("ab","c")` and
/// `("a","bc")` produce different digests. Use this instead of manual
/// concatenation when deriving ids.
pub fn hash_parts(domain: &str, parts: &[&[u8]]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&(domain.len() as u64).to_le_bytes());
    h.update(domain.as_bytes());
    for p in parts {
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        let cases = [
            (
                "",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                "abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                "The quick brown fox jumps over the lazy dog",
                "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha256(input.as_bytes()).to_hex(), expect, "input {input:?}");
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_splits() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must not panic
        // and must differ pairwise.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xA5u8; len];
            assert!(seen.insert(sha256(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let h = sha256(b"roundtrip");
        assert_eq!(Hash256::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn leading_zero_bits_counts() {
        assert_eq!(Hash256::ZERO.leading_zero_bits(), 256);
        let mut one = [0u8; 32];
        one[0] = 0x01;
        assert_eq!(Hash256(one).leading_zero_bits(), 7);
        let mut top = [0u8; 32];
        top[0] = 0x80;
        assert_eq!(Hash256(top).leading_zero_bits(), 0);
    }

    #[test]
    fn hash_parts_framing_is_unambiguous() {
        let a = hash_parts("t", &[b"ab", b"c"]);
        let b = hash_parts("t", &[b"a", b"bc"]);
        assert_ne!(a, b);
        let c = hash_parts("u", &[b"ab", b"c"]);
        assert_ne!(a, c, "domain must separate");
    }

    #[test]
    fn codec_round_trip() {
        let h = sha256(b"wire");
        assert_eq!(Hash256::from_wire(&h.to_wire()).unwrap(), h);
    }
}
