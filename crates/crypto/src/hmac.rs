//! HMAC-SHA256 (RFC 2104) and a deterministic HMAC-DRBG (SP 800-90A profile).
//!
//! The DRBG is the workspace's source of *protocol* randomness: anything that
//! must be reproducible across nodes or runs (PoS leader election, hash-based
//! key derivation, synthetic workload generation) derives from an explicit
//! seed through it. OS randomness is never used on consensus paths.

use crate::sha256::{Hash256, Sha256};

const BLOCK: usize = 64;

/// Compute HMAC-SHA256 over `data` with `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Hash256 {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = Sha256::new().chain(key).finalize();
        key_block[..32].copy_from_slice(kh.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5Cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let inner = Sha256::new().chain(&ipad).chain(data).finalize();
    Sha256::new()
        .chain(&opad)
        .chain(inner.as_bytes())
        .finalize()
}

/// HMAC over several parts without concatenating them first.
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> Hash256 {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = Sha256::new().chain(key).finalize();
        key_block[..32].copy_from_slice(kh.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5Cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new().chain(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner = inner.finalize();
    Sha256::new()
        .chain(&opad)
        .chain(inner.as_bytes())
        .finalize()
}

/// Deterministic random bit generator (HMAC-DRBG, SHA-256).
///
/// Two instances seeded identically produce identical streams — this is a
/// feature, not a bug: consensus-critical sampling must agree across nodes.
///
/// ```
/// use blockprov_crypto::hmac::HmacDrbg;
/// let mut a = HmacDrbg::new(b"seed");
/// let mut b = HmacDrbg::new(b"seed");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    reseed_counter: u64,
}

impl std::fmt::Debug for HmacDrbg {
    /// Deliberately opaque: internal state is key material.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacDrbg")
            .field("reseed_counter", &self.reseed_counter)
            .finish_non_exhaustive()
    }
}

impl HmacDrbg {
    /// Instantiate from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = Self {
            k: [0u8; 32],
            v: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Instantiate from a digest (convenience for chained derivations).
    pub fn from_hash(seed: &Hash256) -> Self {
        Self::new(seed.as_bytes())
    }

    /// Mix additional entropy/material into the state.
    pub fn reseed(&mut self, material: &[u8]) {
        self.update(Some(material));
        self.reseed_counter = 1;
    }

    fn update(&mut self, material: Option<&[u8]>) {
        let m = material.unwrap_or(&[]);
        self.k = hmac_sha256_parts(&self.k, &[&self.v, &[0x00], m]).0;
        self.v = hmac_sha256(&self.k, &self.v).0;
        if !m.is_empty() {
            self.k = hmac_sha256_parts(&self.k, &[&self.v, &[0x01], m]).0;
            self.v = hmac_sha256(&self.k, &self.v).0;
        }
    }

    /// Fill `out` with deterministic pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.v = hmac_sha256(&self.k, &self.v).0;
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.v[..take]);
            filled += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Next 32 bytes as an array.
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Next 32 bytes as a digest-typed value.
    pub fn next_hash(&mut self) -> Hash256 {
        Hash256(self.next_bytes32())
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut out = [0u8; 8];
        self.fill_bytes(&mut out);
        u64::from_le_bytes(out)
    }

    /// Uniform value in `[0, bound)` via rejection sampling (`bound > 0`).
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than a block must be hashed first.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_equals_concatenation() {
        let key = b"key";
        let whole = hmac_sha256(key, b"abcdef");
        let parts = hmac_sha256_parts(key, &[b"ab", b"cd", b"ef"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn drbg_is_deterministic_and_seed_sensitive() {
        let mut a = HmacDrbg::new(b"seed-1");
        let mut b = HmacDrbg::new(b"seed-1");
        let mut c = HmacDrbg::new(b"seed-2");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut d = HmacDrbg::new(b"ranges");
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..50 {
                assert!(d.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut d = HmacDrbg::new(b"coverage");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[d.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut d = HmacDrbg::new(b"floats");
        for _ in 0..100 {
            let f = d.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut d = HmacDrbg::new(b"shuffle");
        let mut v: Vec<u32> = (0..50).collect();
        d.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not stay in order"
        );
    }

    #[test]
    fn fill_bytes_long_output() {
        let mut d = HmacDrbg::new(b"long");
        let mut buf = vec![0u8; 1000];
        d.fill_bytes(&mut buf);
        // Extremely unlikely to contain a run of 32 zero bytes.
        assert!(!buf.windows(32).any(|w| w.iter().all(|&b| b == 0)));
    }
}
