//! Hash-chain range proofs (HashWires-style), substituting PrivChain's ZKRPs.
//!
//! PrivChain [52] lets supply-chain actors prove facts like "the shipment
//! temperature stayed within [2, 8] °C" without revealing readings, using
//! Bulletproofs-style zero-knowledge range proofs. Those need homomorphic
//! commitments we cannot build from scratch responsibly, so this module
//! implements the strongest hash-only alternative — two hash chains per
//! value, the construction behind PayWord/HashWires:
//!
//! * commit: `C = H(H^v(s_up) || H^(M-v)(s_down) || salt)` for value
//!   `v ∈ [0, M]`;
//! * prove `v ≥ lo`: reveal `a = H^(v-lo)(s_up)`; the verifier checks
//!   `H^lo(a)` matches the up-chain head;
//! * prove `v ≤ hi`: reveal `b = H^((M-v)-(M-hi))(s_down) = H^(hi-v)(s_down)`;
//!   the verifier applies `H^(M-hi)`.
//!
//! The revealed values are interior chain points: inverting them to recover
//! `v` requires breaking SHA-256 preimage resistance. **Trust model** (same
//! as HashWires, documented in DESIGN.md): soundness holds when the
//! commitment was formed honestly — e.g. by sensor firmware or the capture
//! pathway at record time — because a malicious committer could bind the two
//! chains to different values. Completeness and verifier cost match the
//! shapes the paper's evaluation axis E11 measures (linear in range size).

use crate::hmac::hmac_sha256_parts;
use crate::sha256::{hash_parts, Hash256, Sha256};
use blockprov_wire::{Codec, Reader, WireError, Writer};

/// One hash-chain step, domain-separated from every other chain use.
fn step(v: Hash256) -> Hash256 {
    Sha256::new().chain(&[0x04]).chain(v.as_bytes()).finalize()
}

/// Apply `n` chain steps.
fn walk(mut v: Hash256, n: u64) -> Hash256 {
    for _ in 0..n {
        v = step(v);
    }
    v
}

/// Errors from range-proof construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeProofError {
    /// The value lies outside `[0, max]`.
    ValueOutOfDomain,
    /// The requested interval is empty or exceeds the domain.
    BadInterval,
    /// The value does not satisfy the requested interval.
    ValueOutsideInterval,
}

impl std::fmt::Display for RangeProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangeProofError::ValueOutOfDomain => write!(f, "value outside commitment domain"),
            RangeProofError::BadInterval => write!(f, "invalid interval"),
            RangeProofError::ValueOutsideInterval => write!(f, "value outside requested interval"),
        }
    }
}

impl std::error::Error for RangeProofError {}

/// Secret material for a committed value (kept by the prover).
#[derive(Debug, Clone)]
pub struct RangeWitness {
    value: u64,
    max: u64,
    seed_up: Hash256,
    seed_down: Hash256,
    salt: Hash256,
}

/// Public commitment to a value in `[0, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeCommitment {
    /// Domain upper bound `M` (chain length).
    pub max: u64,
    /// `H(up_head || down_head || salt)`.
    pub digest: Hash256,
}

impl Codec for RangeCommitment {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.max);
        self.digest.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            max: r.get_varint()?,
            digest: Hash256::decode(r)?,
        })
    }
}

/// A proof that the committed value lies in `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeProof {
    /// Claimed interval lower bound.
    pub lo: u64,
    /// Claimed interval upper bound.
    pub hi: u64,
    /// `H^(v-lo)(seed_up)` — walks to the up head in `lo` steps.
    pub up_point: Hash256,
    /// `H^(hi-v)(seed_down)` — walks to the down head in `max-hi` steps.
    pub down_point: Hash256,
    /// Commitment salt (safe to reveal; hiding comes from the chain points).
    pub salt: Hash256,
}

impl Codec for RangeProof {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.lo);
        w.put_varint(self.hi);
        self.up_point.encode(w);
        self.down_point.encode(w);
        self.salt.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            lo: r.get_varint()?,
            hi: r.get_varint()?,
            up_point: Hash256::decode(r)?,
            down_point: Hash256::decode(r)?,
            salt: Hash256::decode(r)?,
        })
    }
}

impl RangeWitness {
    /// Commit to `value ∈ [0, max]`, deriving chain seeds from `seed`.
    ///
    /// Commitment cost is `O(max)` hash steps; keep `max ≤ ~2^17` (sensor
    /// scales). Larger domains should be quantized by the caller.
    pub fn commit(
        value: u64,
        max: u64,
        seed: &[u8; 32],
    ) -> Result<(RangeWitness, RangeCommitment), RangeProofError> {
        if value > max {
            return Err(RangeProofError::ValueOutOfDomain);
        }
        let seed_up = hmac_sha256_parts(seed, &[b"range-up"]);
        let seed_down = hmac_sha256_parts(seed, &[b"range-down"]);
        let salt = hmac_sha256_parts(seed, &[b"range-salt"]);
        let witness = RangeWitness {
            value,
            max,
            seed_up,
            seed_down,
            salt,
        };
        let commitment = witness.commitment();
        Ok((witness, commitment))
    }

    /// The committed value (prover-side only).
    pub fn value(&self) -> u64 {
        self.value
    }

    fn up_head(&self) -> Hash256 {
        walk(self.seed_up, self.value)
    }

    fn down_head(&self) -> Hash256 {
        walk(self.seed_down, self.max - self.value)
    }

    /// Recompute the public commitment.
    pub fn commitment(&self) -> RangeCommitment {
        let digest = hash_parts(
            "blockprov-range",
            &[
                &self.max.to_le_bytes(),
                self.up_head().as_bytes(),
                self.down_head().as_bytes(),
                self.salt.as_bytes(),
            ],
        );
        RangeCommitment {
            max: self.max,
            digest,
        }
    }

    /// Prove `lo ≤ value ≤ hi` without revealing `value`.
    pub fn prove(&self, lo: u64, hi: u64) -> Result<RangeProof, RangeProofError> {
        if lo > hi || hi > self.max {
            return Err(RangeProofError::BadInterval);
        }
        if self.value < lo || self.value > hi {
            return Err(RangeProofError::ValueOutsideInterval);
        }
        Ok(RangeProof {
            lo,
            hi,
            up_point: walk(self.seed_up, self.value - lo),
            down_point: walk(self.seed_down, self.max - self.value - (self.max - hi)),
            salt: self.salt,
        })
    }
}

impl RangeProof {
    /// Verify against a commitment. Cost: `lo + (max - hi)` hash steps.
    pub fn verify(&self, commitment: &RangeCommitment) -> bool {
        if self.lo > self.hi || self.hi > commitment.max {
            return false;
        }
        let up_head = walk(self.up_point, self.lo);
        let down_head = walk(self.down_point, commitment.max - self.hi);
        let digest = hash_parts(
            "blockprov-range",
            &[
                &commitment.max.to_le_bytes(),
                up_head.as_bytes(),
                down_head.as_bytes(),
                self.salt.as_bytes(),
            ],
        );
        digest == commitment.digest
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_wire().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(n: u8) -> [u8; 32] {
        [n; 32]
    }

    #[test]
    fn commit_prove_verify_happy_path() {
        let (w, c) = RangeWitness::commit(42, 255, &seed(1)).unwrap();
        let p = w.prove(10, 100).unwrap();
        assert!(p.verify(&c));
    }

    #[test]
    fn tight_bounds_verify() {
        let (w, c) = RangeWitness::commit(42, 255, &seed(2)).unwrap();
        // Exact-value interval still verifies (degenerate range).
        let p = w.prove(42, 42).unwrap();
        assert!(p.verify(&c));
        // Full-domain interval verifies.
        let p = w.prove(0, 255).unwrap();
        assert!(p.verify(&c));
    }

    #[test]
    fn boundary_values() {
        let (w0, c0) = RangeWitness::commit(0, 100, &seed(3)).unwrap();
        assert!(w0.prove(0, 0).unwrap().verify(&c0));
        let (wm, cm) = RangeWitness::commit(100, 100, &seed(4)).unwrap();
        assert!(wm.prove(100, 100).unwrap().verify(&cm));
    }

    #[test]
    fn prover_cannot_claim_false_interval() {
        let (w, _) = RangeWitness::commit(42, 255, &seed(5)).unwrap();
        assert_eq!(w.prove(43, 100), Err(RangeProofError::ValueOutsideInterval));
        assert_eq!(w.prove(0, 41), Err(RangeProofError::ValueOutsideInterval));
        assert_eq!(w.prove(50, 40), Err(RangeProofError::BadInterval));
        assert_eq!(w.prove(0, 300), Err(RangeProofError::BadInterval));
    }

    #[test]
    fn forged_proof_rejected() {
        let (w, c) = RangeWitness::commit(42, 255, &seed(6)).unwrap();
        let honest = w.prove(40, 50).unwrap();

        // Widening the claimed interval breaks the chain arithmetic.
        let mut forged = honest.clone();
        forged.lo = 0;
        assert!(!forged.verify(&c));
        let mut forged = honest.clone();
        forged.hi = 255;
        assert!(!forged.verify(&c));

        // Random points do not verify.
        let mut forged = honest.clone();
        forged.up_point = crate::sha256::sha256(b"junk");
        assert!(!forged.verify(&c));
    }

    #[test]
    fn proof_does_not_verify_under_other_commitment() {
        let (w1, _c1) = RangeWitness::commit(42, 255, &seed(7)).unwrap();
        let (_w2, c2) = RangeWitness::commit(42, 255, &seed(8)).unwrap();
        let p = w1.prove(0, 255).unwrap();
        assert!(!p.verify(&c2));
    }

    #[test]
    fn commitment_hides_value() {
        // Same seeds, different values → different digests (binding), and
        // the digest alone reveals nothing recoverable without chain walks.
        let (_, c1) = RangeWitness::commit(10, 255, &seed(9)).unwrap();
        let (_, c2) = RangeWitness::commit(11, 255, &seed(9)).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn out_of_domain_value_rejected_at_commit() {
        assert_eq!(
            RangeWitness::commit(256, 255, &seed(10)).err(),
            Some(RangeProofError::ValueOutOfDomain)
        );
    }

    #[test]
    fn codec_round_trips() {
        let (w, c) = RangeWitness::commit(7, 64, &seed(11)).unwrap();
        let p = w.prove(0, 10).unwrap();
        assert_eq!(RangeCommitment::from_wire(&c.to_wire()).unwrap(), c);
        let decoded = RangeProof::from_wire(&p.to_wire()).unwrap();
        assert_eq!(decoded, p);
        assert!(decoded.verify(&c));
    }

    #[test]
    fn supply_chain_temperature_scenario() {
        // Cold-chain: temperature scaled to decicelsius in [0, 400] (= 0.0 to
        // 40.0 °C). Prove the reading stayed in [2.0, 8.0] °C.
        let reading_decic = 55; // 5.5 °C
        let (w, c) = RangeWitness::commit(reading_decic, 400, &seed(12)).unwrap();
        let p = w.prove(20, 80).unwrap();
        assert!(p.verify(&c));
        // A spoiled reading cannot produce the proof.
        let (w_bad, _) = RangeWitness::commit(120, 400, &seed(13)).unwrap();
        assert!(w_bad.prove(20, 80).is_err());
    }
}
