//! Salted hash commitments.
//!
//! The minimal hiding/binding primitive used across the workspace: supply
//! chain actors commit to telemetry before revealing it, forensics cases
//! commit to sealed evidence, and the range-proof module builds on the same
//! construction.

use crate::sha256::{hash_parts, Hash256};
use blockprov_wire::{Codec, Reader, WireError, Writer};

/// A binding, hiding commitment `H(domain || value || salt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Commitment(pub Hash256);

impl Commitment {
    /// Commit to `value` under a 32-byte salt.
    pub fn commit(value: &[u8], salt: &[u8; 32]) -> Self {
        Commitment(hash_parts("blockprov-commit", &[value, salt]))
    }

    /// Check an opening.
    pub fn verify(&self, value: &[u8], salt: &[u8; 32]) -> bool {
        Self::commit(value, salt) == *self
    }
}

impl Codec for Commitment {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Commitment(Hash256::decode(r)?))
    }
}

/// An opening for a commitment: the value plus its salt.
///
/// Kept off-chain until reveal time; the commitment alone goes on-chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opening {
    /// Committed value bytes.
    pub value: Vec<u8>,
    /// Blinding salt.
    pub salt: [u8; 32],
}

impl Opening {
    /// The commitment this opening satisfies.
    pub fn commitment(&self) -> Commitment {
        Commitment::commit(&self.value, &self.salt)
    }
}

impl Codec for Opening {
    fn encode(&self, w: &mut Writer) {
        self.value.encode(w);
        w.put_raw(&self.salt);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let value = Vec::<u8>::decode(r)?;
        let raw = r.get_raw(32)?;
        let mut salt = [0u8; 32];
        salt.copy_from_slice(raw);
        Ok(Self { value, salt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmac::HmacDrbg;

    #[test]
    fn commit_and_open() {
        let mut drbg = HmacDrbg::new(b"salts");
        let salt = drbg.next_bytes32();
        let c = Commitment::commit(b"21.5C", &salt);
        assert!(c.verify(b"21.5C", &salt));
    }

    #[test]
    fn wrong_value_or_salt_fails() {
        let salt = [7u8; 32];
        let c = Commitment::commit(b"value", &salt);
        assert!(!c.verify(b"other", &salt));
        assert!(!c.verify(b"value", &[8u8; 32]));
    }

    #[test]
    fn different_salts_hide_equal_values() {
        let a = Commitment::commit(b"same", &[1u8; 32]);
        let b = Commitment::commit(b"same", &[2u8; 32]);
        assert_ne!(a, b);
    }

    #[test]
    fn opening_round_trip() {
        let o = Opening {
            value: b"payload".to_vec(),
            salt: [9u8; 32],
        };
        let decoded = Opening::from_wire(&o.to_wire()).unwrap();
        assert_eq!(decoded, o);
        assert_eq!(decoded.commitment(), o.commitment());
    }
}
