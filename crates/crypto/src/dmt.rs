//! The *distributed Merkle tree* of ForensiBlock [12].
//!
//! ForensiBlock verifies the integrity of a forensic **case** without
//! touching other cases' records: each case owns a segment tree over its own
//! records, and a top tree commits to every `(segment key, segment root)`
//! pair. A compound proof then shows (1) a record is in its segment and
//! (2) the segment root is under the top root — so an auditor for case A
//! never sees case B's record hashes.
//!
//! The same structure serves any multi-tenant ledger where per-tenant
//! verification must not leak across tenants (supply-chain lots, hospital
//! wards, workflow runs).

use crate::merkle::{leaf_hash, MerkleProof, MerkleTree};
use crate::sha256::{hash_parts, Hash256};
use blockprov_wire::{Codec, Reader, WireError, Writer};
use std::collections::BTreeMap;

/// A forest of per-segment Merkle trees under one top-level root.
///
/// Segments are keyed by string (case number, lot id, ward name…). The top
/// tree is built over segment keys in lexicographic order so the root is
/// independent of insertion order.
#[derive(Debug, Default, Clone)]
pub struct DistributedMerkleTree {
    segments: BTreeMap<String, Vec<Hash256>>,
    /// Cache invalidated on mutation.
    cache: Option<TreeCache>,
}

#[derive(Debug, Clone)]
struct TreeCache {
    segment_trees: BTreeMap<String, MerkleTree>,
    top: MerkleTree,
    /// Position of each segment in the top tree's leaf order.
    positions: BTreeMap<String, usize>,
}

/// Proof that a record belongs to a segment *and* that segment belongs to the
/// forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompoundProof {
    /// Segment key the record belongs to.
    pub segment: String,
    /// Root of the segment's own tree.
    pub segment_root: Hash256,
    /// Inclusion of the record hash under `segment_root`.
    pub record_proof: MerkleProof,
    /// Inclusion of the segment leaf under the forest root.
    pub segment_proof: MerkleProof,
}

impl CompoundProof {
    /// Verify the compound proof against the forest root.
    pub fn verify(&self, forest_root: &Hash256, record: &[u8]) -> bool {
        self.verify_record_hash(forest_root, &leaf_hash(record))
    }

    /// Verify with a precomputed record leaf hash.
    pub fn verify_record_hash(&self, forest_root: &Hash256, record_leaf: &Hash256) -> bool {
        if !self
            .record_proof
            .verify_leaf_hash(&self.segment_root, record_leaf)
        {
            return false;
        }
        let seg_leaf = segment_leaf(&self.segment, &self.segment_root);
        self.segment_proof.verify_leaf_hash(forest_root, &seg_leaf)
    }
}

impl Codec for CompoundProof {
    fn encode(&self, w: &mut Writer) {
        self.segment.encode(w);
        self.segment_root.encode(w);
        self.record_proof.encode(w);
        self.segment_proof.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            segment: String::decode(r)?,
            segment_root: Hash256::decode(r)?,
            record_proof: MerkleProof::decode(r)?,
            segment_proof: MerkleProof::decode(r)?,
        })
    }
}

/// The leaf committed into the top tree for a segment.
fn segment_leaf(key: &str, root: &Hash256) -> Hash256 {
    leaf_hash(hash_parts("dmt-segment", &[key.as_bytes(), root.as_bytes()]).as_bytes())
}

impl DistributedMerkleTree {
    /// Create an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record (by hash) to a segment, creating it if needed.
    pub fn append(&mut self, segment: &str, record_hash: Hash256) {
        self.segments
            .entry(segment.to_string())
            .or_default()
            .push(record_hash);
        self.cache = None;
    }

    /// Append raw record bytes (hashed as a leaf).
    pub fn append_data(&mut self, segment: &str, record: &[u8]) {
        self.append(segment, leaf_hash(record));
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of records in a segment.
    pub fn record_count(&self, segment: &str) -> usize {
        self.segments.get(segment).map_or(0, Vec::len)
    }

    /// Total records across all segments.
    pub fn total_records(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    fn build(&mut self) -> &TreeCache {
        if self.cache.is_none() {
            let mut segment_trees = BTreeMap::new();
            let mut positions = BTreeMap::new();
            let mut top_leaves = Vec::with_capacity(self.segments.len());
            for (pos, (key, hashes)) in self.segments.iter().enumerate() {
                let tree = MerkleTree::from_leaf_hashes(hashes.clone());
                top_leaves.push(segment_leaf(key, &tree.root()));
                positions.insert(key.clone(), pos);
                segment_trees.insert(key.clone(), tree);
            }
            let top = MerkleTree::from_leaf_hashes(top_leaves);
            self.cache = Some(TreeCache {
                segment_trees,
                top,
                positions,
            });
        }
        self.cache.as_ref().expect("just built")
    }

    /// Root over all segments.
    pub fn forest_root(&mut self) -> Hash256 {
        self.build().top.root()
    }

    /// Root of a single segment's tree, if it exists.
    pub fn segment_root(&mut self, segment: &str) -> Option<Hash256> {
        let cache = self.build();
        cache.segment_trees.get(segment).map(MerkleTree::root)
    }

    /// Produce a compound proof for the `index`-th record of `segment`.
    pub fn prove(&mut self, segment: &str, index: usize) -> Option<CompoundProof> {
        let cache = self.build();
        let seg_tree = cache.segment_trees.get(segment)?;
        let record_proof = seg_tree.prove(index)?;
        let pos = *cache.positions.get(segment)?;
        let segment_proof = cache.top.prove(pos)?;
        Some(CompoundProof {
            segment: segment.to_string(),
            segment_root: seg_tree.root(),
            record_proof,
            segment_proof,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> DistributedMerkleTree {
        let mut f = DistributedMerkleTree::new();
        for case in ["case-001", "case-002", "case-003"] {
            for i in 0..10 {
                f.append_data(case, format!("{case}/record-{i}").as_bytes());
            }
        }
        f
    }

    #[test]
    fn proofs_verify_per_segment() {
        let mut f = forest();
        let root = f.forest_root();
        for case in ["case-001", "case-002", "case-003"] {
            for i in 0..10 {
                let p = f.prove(case, i).unwrap();
                assert!(p.verify(&root, format!("{case}/record-{i}").as_bytes()));
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_record_or_segment() {
        let mut f = forest();
        let root = f.forest_root();
        let p = f.prove("case-001", 0).unwrap();
        assert!(!p.verify(&root, b"case-001/record-1"));
        // Claiming the proof belongs to another segment must fail.
        let mut forged = p.clone();
        forged.segment = "case-002".to_string();
        assert!(!forged.verify(&root, b"case-001/record-0"));
    }

    #[test]
    fn append_changes_forest_root_only_once_rebuilt() {
        let mut f = forest();
        let before = f.forest_root();
        f.append_data("case-001", b"new-record");
        let after = f.forest_root();
        assert_ne!(before, after);
    }

    #[test]
    fn old_proofs_do_not_verify_after_mutation() {
        let mut f = forest();
        let root_before = f.forest_root();
        let p = f.prove("case-002", 3).unwrap();
        f.append_data("case-002", b"late-arrival");
        let root_after = f.forest_root();
        assert!(p.verify(&root_before, b"case-002/record-3"));
        assert!(!p.verify(&root_after, b"case-002/record-3"));
    }

    #[test]
    fn insertion_order_does_not_affect_root() {
        let mut a = DistributedMerkleTree::new();
        a.append_data("s1", b"r1");
        a.append_data("s2", b"r2");
        let mut b = DistributedMerkleTree::new();
        b.append_data("s2", b"r2");
        b.append_data("s1", b"r1");
        assert_eq!(a.forest_root(), b.forest_root());
    }

    #[test]
    fn missing_segment_and_index() {
        let mut f = forest();
        assert!(f.prove("case-404", 0).is_none());
        assert!(f.prove("case-001", 10).is_none());
        assert_eq!(f.segment_root("case-404"), None);
    }

    #[test]
    fn compound_proof_codec_round_trip() {
        let mut f = forest();
        let root = f.forest_root();
        let p = f.prove("case-003", 7).unwrap();
        let decoded = CompoundProof::from_wire(&p.to_wire()).unwrap();
        assert_eq!(decoded, p);
        assert!(decoded.verify(&root, b"case-003/record-7"));
    }

    #[test]
    fn counts() {
        let f = forest();
        assert_eq!(f.segment_count(), 3);
        assert_eq!(f.record_count("case-001"), 10);
        assert_eq!(f.total_records(), 30);
    }
}
