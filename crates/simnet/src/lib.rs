//! Discrete-event network simulator.
//!
//! The paper's §6.1 evaluation axes (throughput, latency, load, network
//! size) were measured by the surveyed systems on physical testbeds we do
//! not have. This simulator is the substitute (see DESIGN.md): it reproduces
//! the *message complexity and timing structure* of a protocol — which is
//! what produces the throughput/latency shapes — without real sockets.
//!
//! Model:
//!
//! * virtual time in microseconds, advanced only by the event queue;
//! * every node runs a [`Protocol`] state machine reacting to messages and
//!   timers;
//! * links have uniform-random latency in a configurable band plus an
//!   optional drop rate; partitions block delivery between groups;
//! * all randomness derives from the run seed (two runs with equal seeds
//!   are byte-identical).

use blockprov_crypto::hmac::HmacDrbg;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a node in the simulation.
pub type NodeId = usize;

/// One microsecond-resolution virtual timestamp.
pub type SimTime = u64;

/// A protocol state machine hosted on every simulated node.
pub trait Protocol {
    /// Message type exchanged between nodes.
    type Msg: Clone;

    /// Called once at time zero.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, timer: u64);
}

/// Network parameters for a run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Minimum one-way link latency (µs).
    pub latency_min_us: u64,
    /// Maximum one-way link latency (µs).
    pub latency_max_us: u64,
    /// Probability a message is silently dropped.
    pub drop_rate: f64,
    /// Seed for all randomness in the run.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        // LAN-ish defaults: 0.2–2 ms one-way, lossless.
        Self {
            latency_min_us: 200,
            latency_max_us: 2_000,
            drop_rate: 0.0,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// WAN-ish profile: 20–120 ms latency, 0.1% loss.
    pub fn wan(seed: u64) -> Self {
        Self {
            latency_min_us: 20_000,
            latency_max_us: 120_000,
            drop_rate: 0.001,
            seed,
        }
    }

    /// LAN profile with a custom seed.
    pub fn lan(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Actions a protocol can request during a callback.
enum Action<M> {
    Send { to: NodeId, msg: M },
    Broadcast { msg: M },
    SetTimer { delay_us: u64, timer: u64 },
    Halt,
}

/// Callback context: the only way a protocol interacts with the world.
pub struct Ctx<'a, M> {
    node: NodeId,
    now: SimTime,
    n_nodes: usize,
    actions: Vec<Action<M>>,
    /// Per-node deterministic randomness.
    pub rng: &'a mut HmacDrbg,
}

impl<M> Ctx<'_, M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Send a message to one peer (delivered after link latency, unless
    /// dropped or partitioned away).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Send to every other node.
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Schedule `on_timer(timer)` after `delay_us`.
    pub fn set_timer(&mut self, delay_us: u64, timer: u64) {
        self.actions.push(Action::SetTimer { delay_us, timer });
    }

    /// Stop the whole simulation after this callback returns.
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }
}

enum Event<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, timer: u64 },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters collected during a run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimMetrics {
    /// Messages handed to the network layer.
    pub sent: u64,
    /// Messages delivered to a protocol.
    pub delivered: u64,
    /// Messages dropped by loss.
    pub dropped: u64,
    /// Messages blocked by a partition.
    pub partitioned: u64,
    /// Timers fired.
    pub timers: u64,
    /// Events processed in total.
    pub events: u64,
}

/// The simulator: owns the nodes, the clock and the event queue.
pub struct Simulation<P: Protocol> {
    nodes: Vec<P>,
    rngs: Vec<HmacDrbg>,
    groups: Vec<u32>,
    queue: BinaryHeap<Reverse<Scheduled<P::Msg>>>,
    now: SimTime,
    seq: u64,
    net_rng: HmacDrbg,
    config: SimConfig,
    halted: bool,
    started: bool,
    /// Run metrics, readable at any point.
    pub metrics: SimMetrics,
}

impl<P: Protocol> Simulation<P> {
    /// Create a simulation over the given nodes.
    pub fn new(nodes: Vec<P>, config: SimConfig) -> Self {
        let n = nodes.len();
        let mk = |label: &str, i: usize| {
            let mut seed = Vec::with_capacity(24);
            seed.extend_from_slice(label.as_bytes());
            seed.extend_from_slice(&config.seed.to_le_bytes());
            seed.extend_from_slice(&(i as u64).to_le_bytes());
            HmacDrbg::new(&seed)
        };
        Self {
            rngs: (0..n).map(|i| mk("node", i)).collect(),
            groups: vec![0; n],
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            net_rng: mk("net", usize::MAX - 1),
            config,
            halted: false,
            started: false,
            metrics: SimMetrics::default(),
            nodes,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Borrow a node's protocol state (for assertions after a run).
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id]
    }

    /// Iterate over all node states.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Split the network: nodes in the same group can talk, others cannot.
    ///
    /// `groups[node] = group id`. Panics if the slice length mismatches.
    pub fn set_partition(&mut self, groups: &[u32]) {
        assert_eq!(groups.len(), self.nodes.len(), "one group per node");
        self.groups.copy_from_slice(groups);
    }

    /// Remove any partition.
    pub fn heal_partition(&mut self) {
        self.groups.iter_mut().for_each(|g| *g = 0);
    }

    fn push(&mut self, at: SimTime, event: Event<P::Msg>) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        self.metrics.sent += 1;
        if self.groups[from] != self.groups[to] {
            self.metrics.partitioned += 1;
            return;
        }
        if self.config.drop_rate > 0.0 && self.net_rng.chance(self.config.drop_rate) {
            self.metrics.dropped += 1;
            return;
        }
        let span = self
            .config
            .latency_max_us
            .saturating_sub(self.config.latency_min_us);
        let latency = self.config.latency_min_us
            + if span == 0 {
                0
            } else {
                self.net_rng.gen_range(span + 1)
            };
        self.push(self.now + latency, Event::Deliver { from, to, msg });
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<P::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.route(node, to, msg),
                Action::Broadcast { msg } => {
                    for to in 0..self.nodes.len() {
                        if to != node {
                            self.route(node, to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { delay_us, timer } => {
                    self.push(self.now + delay_us, Event::Timer { node, timer });
                }
                Action::Halt => self.halted = true,
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut ctx = Ctx {
                node: i,
                now: self.now,
                n_nodes: self.nodes.len(),
                actions: Vec::new(),
                rng: &mut self.rngs[i],
            };
            self.nodes[i].on_start(&mut ctx);
            let actions = ctx.actions;
            self.apply_actions(i, actions);
        }
    }

    /// Process a single event. Returns false when the queue is empty or the
    /// simulation halted.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        if self.halted {
            return false;
        }
        let Some(Reverse(Scheduled { at, event, .. })) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must not run backwards");
        self.now = at;
        self.metrics.events += 1;
        match event {
            Event::Deliver { from, to, msg } => {
                self.metrics.delivered += 1;
                let mut ctx = Ctx {
                    node: to,
                    now: self.now,
                    n_nodes: self.nodes.len(),
                    actions: Vec::new(),
                    rng: &mut self.rngs[to],
                };
                self.nodes[to].on_message(&mut ctx, from, msg);
                let actions = ctx.actions;
                self.apply_actions(to, actions);
            }
            Event::Timer { node, timer } => {
                self.metrics.timers += 1;
                let mut ctx = Ctx {
                    node,
                    now: self.now,
                    n_nodes: self.nodes.len(),
                    actions: Vec::new(),
                    rng: &mut self.rngs[node],
                };
                self.nodes[node].on_timer(&mut ctx, timer);
                let actions = ctx.actions;
                self.apply_actions(node, actions);
            }
        }
        !self.halted
    }

    /// Run until the next event would pass `deadline_us`, the queue drains,
    /// or the protocol halts. Returns the stop time.
    pub fn run_until(&mut self, deadline_us: SimTime) -> SimTime {
        self.start_if_needed();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline_us || self.halted {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Run until no events remain or the protocol halts. `max_events` guards
    /// against livelock (heartbeat protocols never drain on their own).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> SimTime {
        self.start_if_needed();
        let mut processed = 0;
        while processed < max_events && self.step() {
            processed += 1;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood protocol: node 0 gossips a token; everyone re-broadcasts once.
    struct Flood {
        seen: bool,
        origin: bool,
        heard_at: Option<SimTime>,
    }

    impl Protocol for Flood {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.origin {
                self.seen = true;
                self.heard_at = Some(ctx.now());
                ctx.broadcast(42);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            if !self.seen {
                self.seen = true;
                self.heard_at = Some(ctx.now());
                ctx.broadcast(msg);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _timer: u64) {}
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n)
            .map(|i| Flood {
                seen: false,
                origin: i == 0,
                heard_at: None,
            })
            .collect()
    }

    #[test]
    fn flood_reaches_everyone() {
        let mut sim = Simulation::new(flood_nodes(10), SimConfig::lan(7));
        sim.run_to_quiescence(1_000_000);
        assert!(sim.nodes().all(|n| n.seen));
        assert!(sim.metrics.delivered > 0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed| {
            let mut sim = Simulation::new(flood_nodes(8), SimConfig::lan(seed));
            sim.run_to_quiescence(1_000_000);
            (sim.now(), sim.metrics.clone())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(
            run(3).0,
            run(4).0,
            "different seeds should differ in timing"
        );
    }

    #[test]
    fn partition_blocks_delivery_and_heals() {
        let mut sim = Simulation::new(flood_nodes(6), SimConfig::lan(1));
        // {0,1,2} vs {3,4,5}
        sim.set_partition(&[0, 0, 0, 1, 1, 1]);
        sim.run_to_quiescence(1_000_000);
        assert!(sim.node(1).seen && sim.node(2).seen);
        assert!(!sim.node(3).seen && !sim.node(4).seen && !sim.node(5).seen);
        assert!(sim.metrics.partitioned > 0);
    }

    #[test]
    fn full_drop_rate_stops_everything() {
        let cfg = SimConfig {
            drop_rate: 1.0,
            ..SimConfig::lan(5)
        };
        let mut sim = Simulation::new(flood_nodes(4), cfg);
        sim.run_to_quiescence(1_000_000);
        assert!(!sim.node(1).seen);
        assert_eq!(sim.metrics.delivered, 0);
        assert_eq!(sim.metrics.dropped, sim.metrics.sent);
    }

    #[test]
    fn latency_band_is_respected() {
        // With exactly one hop, every delivery time must be in the band.
        struct OneShot {
            got: Option<SimTime>,
        }
        impl Protocol for OneShot {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.id() == 0 {
                    ctx.send(1, ());
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: NodeId, _m: ()) {
                self.got = Some(ctx.now());
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, _t: u64) {}
        }
        let cfg = SimConfig {
            latency_min_us: 500,
            latency_max_us: 700,
            drop_rate: 0.0,
            seed: 2,
        };
        let mut sim = Simulation::new(vec![OneShot { got: None }, OneShot { got: None }], cfg);
        sim.run_to_quiescence(100);
        let t = sim.node(1).got.expect("delivered");
        assert!((500..=700).contains(&t), "latency {t} outside band");
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Protocol for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, timer: u64) {
                self.fired.push(timer);
            }
        }
        let mut sim = Simulation::new(vec![Timers { fired: vec![] }], SimConfig::lan(0));
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(0).fired, vec![1, 2, 3]);
        assert_eq!(sim.metrics.timers, 3);
    }

    #[test]
    fn halt_stops_the_run() {
        struct Halter;
        impl Protocol for Halter {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(10, 0);
                ctx.set_timer(20, 1);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, timer: u64) {
                if timer == 0 {
                    ctx.halt();
                }
            }
        }
        let mut sim = Simulation::new(vec![Halter], SimConfig::lan(0));
        sim.run_to_quiescence(1_000);
        assert_eq!(
            sim.metrics.timers, 1,
            "second timer must not fire after halt"
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(flood_nodes(4), SimConfig::lan(9));
        let stop = sim.run_until(50); // shorter than min latency
        assert!(stop <= 200, "no delivery can happen before min latency");
        assert_eq!(sim.metrics.delivered, 0);
    }

    #[test]
    fn broadcast_fans_out_to_n_minus_one() {
        let mut sim = Simulation::new(flood_nodes(5), SimConfig::lan(11));
        sim.run_to_quiescence(1_000_000);
        // Every node broadcasts exactly once: 5 * 4 sends.
        assert_eq!(sim.metrics.sent, 20);
    }
}
