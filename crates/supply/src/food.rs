//! Food supply-chain tracking — the Kumar et al. [42] reproduction.
//!
//! The surveyed methodology has three modules, reproduced one-to-one:
//!
//! * **Source Tracking** — "IoT sensors and RFID tags with blockchain to
//!   monitor food products from origin to consumption": every product
//!   carries an RFID tag; custody scans append hash-chained trace events
//!   from farm through processing, transport and retail to the consumer;
//! * **Quality and Safety Monitoring** — "tracking parameters like
//!   temperature and humidity … with alerts for deviations": IoT telemetry
//!   is checked against the product class's safe envelope and every
//!   excursion raises an on-record alert; a product with open alerts fails
//!   its safety check at the point of sale;
//! * **Certification and Compliance** — "maintains certification documents
//!   on the blockchain for easy verification": certificates are anchored by
//!   digest with issuer, scope and expiry, and consumer-facing verification
//!   re-derives the digest from the presented document.
//!
//! A consumer query ([`FoodChain::consumer_report`]) is the paper's QR-code
//! scan: origin, full trace, alert history and certificate status.

use blockprov_crypto::sha256::{hash_parts, sha256, Hash256};
use std::collections::BTreeMap;
use std::fmt;

/// Stages a food product moves through (origin → consumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FoodStage {
    /// Harvest / production at the farm.
    Farm,
    /// Processing / packaging plant.
    Processing,
    /// Cold-chain transport leg.
    Transport,
    /// Distribution center.
    Distribution,
    /// Retail shelf.
    Retail,
    /// Sold to the consumer.
    Consumed,
}

impl FoodStage {
    /// Stage label.
    pub fn label(&self) -> &'static str {
        match self {
            FoodStage::Farm => "farm",
            FoodStage::Processing => "processing",
            FoodStage::Transport => "transport",
            FoodStage::Distribution => "distribution",
            FoodStage::Retail => "retail",
            FoodStage::Consumed => "consumed",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            FoodStage::Farm => 0,
            FoodStage::Processing => 1,
            FoodStage::Transport => 2,
            FoodStage::Distribution => 3,
            FoodStage::Retail => 4,
            FoodStage::Consumed => 5,
        }
    }
}

/// Safe storage envelope for a product class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetyEnvelope {
    /// Temperature bounds in milli-°C.
    pub temp_milli_c: (i64, i64),
    /// Relative humidity bounds in milli-%.
    pub humidity_milli: (i64, i64),
}

impl SafetyEnvelope {
    /// Chilled produce: 0–4 °C, 85–95 % RH.
    pub fn chilled() -> Self {
        Self { temp_milli_c: (0, 4_000), humidity_milli: (85_000, 95_000) }
    }

    /// Frozen goods: −25 to −18 °C, any humidity.
    pub fn frozen() -> Self {
        Self { temp_milli_c: (-25_000, -18_000), humidity_milli: (0, 100_000) }
    }

    /// Ambient dry goods: 5–30 °C, ≤70 % RH.
    pub fn ambient() -> Self {
        Self { temp_milli_c: (5_000, 30_000), humidity_milli: (0, 70_000) }
    }

    fn check(&self, temp: i64, humidity: i64) -> Option<&'static str> {
        if temp < self.temp_milli_c.0 || temp > self.temp_milli_c.1 {
            Some("temperature out of range")
        } else if humidity < self.humidity_milli.0 || humidity > self.humidity_milli.1 {
            Some("humidity out of range")
        } else {
            None
        }
    }
}

/// A hash-chained custody/trace event (one RFID scan).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Stage entered.
    pub stage: FoodStage,
    /// Party scanning (farm, plant, carrier, store…).
    pub actor: String,
    /// Geographic hint.
    pub location: String,
    /// Logical time.
    pub seq: u64,
    /// Hash chain value (binds this event to the product's history).
    pub chain: Hash256,
}

/// A telemetry-driven safety alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyAlert {
    /// Offending reading's sequence number.
    pub seq: u64,
    /// What went out of range.
    pub reason: &'static str,
    /// The reading (temp milli-°C, humidity milli-%).
    pub reading: (i64, i64),
    /// Resolved by a quality officer?
    pub resolved: bool,
}

/// An anchored certification document.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Issuing body (e.g. "EU-Organic").
    pub issuer: String,
    /// Scope (e.g. "organic", "fair-trade", "haccp").
    pub scope: String,
    /// Digest of the full document.
    pub digest: Hash256,
    /// Expiry (logical day).
    pub expires_day: u64,
}

/// One tracked product (a tagged lot/unit).
#[derive(Debug, Clone)]
pub struct FoodProduct {
    /// RFID tag identifier.
    pub tag: String,
    /// Product class name.
    pub class: String,
    /// Safe envelope for telemetry checks.
    pub envelope: SafetyEnvelope,
    /// Trace events (origin first).
    pub trace: Vec<TraceEvent>,
    /// Telemetry readings count.
    pub readings: u64,
    /// Alerts raised.
    pub alerts: Vec<SafetyAlert>,
    /// Certificates attached to this product.
    pub certificates: Vec<Certificate>,
}

impl FoodProduct {
    /// Current stage (last trace event).
    pub fn stage(&self) -> FoodStage {
        self.trace.last().map(|e| e.stage).unwrap_or(FoodStage::Farm)
    }

    /// Unresolved alerts.
    pub fn open_alerts(&self) -> usize {
        self.alerts.iter().filter(|a| !a.resolved).count()
    }
}

/// Errors from the food chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoodError {
    /// Tag already registered.
    DuplicateTag(String),
    /// Unknown product tag.
    UnknownTag(String),
    /// Stage transition moved backwards (e.g. Retail → Farm).
    StageRegression {
        /// Stage on record.
        from: FoodStage,
        /// Stage attempted.
        to: FoodStage,
    },
    /// Product already consumed — no further events accepted.
    AlreadyConsumed(String),
    /// Certificate index out of range.
    UnknownCertificate(usize),
    /// Alert index out of range.
    UnknownAlert(usize),
}

impl fmt::Display for FoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoodError::DuplicateTag(t) => write!(f, "tag {t:?} already registered"),
            FoodError::UnknownTag(t) => write!(f, "unknown tag {t:?}"),
            FoodError::StageRegression { from, to } => {
                write!(f, "stage cannot regress {} → {}", from.label(), to.label())
            }
            FoodError::AlreadyConsumed(t) => write!(f, "product {t:?} already consumed"),
            FoodError::UnknownCertificate(i) => write!(f, "no certificate #{i}"),
            FoodError::UnknownAlert(i) => write!(f, "no alert #{i}"),
        }
    }
}

impl std::error::Error for FoodError {}

/// The consumer-facing QR-scan answer.
#[derive(Debug, Clone)]
pub struct ConsumerReport {
    /// RFID tag.
    pub tag: String,
    /// Product class.
    pub class: String,
    /// Origin (actor + location of the first trace event).
    pub origin: String,
    /// Number of custody hops.
    pub hops: usize,
    /// Current stage.
    pub stage: FoodStage,
    /// Telemetry readings taken.
    pub readings: u64,
    /// Alerts raised / unresolved.
    pub alerts_total: usize,
    /// Unresolved alerts.
    pub alerts_open: usize,
    /// Valid (unexpired, digest-verified) certificate scopes.
    pub valid_certificates: Vec<String>,
    /// Whether the product passes the point-of-sale safety check.
    pub safe_to_sell: bool,
}

/// The food supply-chain registry.
#[derive(Debug, Default)]
pub struct FoodChain {
    products: BTreeMap<String, FoodProduct>,
    seq: u64,
    day: u64,
}

impl FoodChain {
    /// Empty chain at day 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the logical calendar (certificate expiry).
    pub fn advance_days(&mut self, days: u64) {
        self.day += days;
    }

    /// Current logical day.
    pub fn today(&self) -> u64 {
        self.day
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Register a product at the farm (origin event).
    pub fn register_product(
        &mut self,
        tag: &str,
        class: &str,
        envelope: SafetyEnvelope,
        farm: &str,
        location: &str,
    ) -> Result<(), FoodError> {
        if self.products.contains_key(tag) {
            return Err(FoodError::DuplicateTag(tag.to_string()));
        }
        let seq = self.next_seq();
        let chain = hash_parts(
            "blockprov-food-trace",
            &[Hash256::ZERO.as_bytes(), tag.as_bytes(), farm.as_bytes(), &seq.to_le_bytes()],
        );
        let product = FoodProduct {
            tag: tag.to_string(),
            class: class.to_string(),
            envelope,
            trace: vec![TraceEvent {
                stage: FoodStage::Farm,
                actor: farm.to_string(),
                location: location.to_string(),
                seq,
                chain,
            }],
            readings: 0,
            alerts: Vec::new(),
            certificates: Vec::new(),
        };
        self.products.insert(tag.to_string(), product);
        Ok(())
    }

    fn product_mut(&mut self, tag: &str) -> Result<&mut FoodProduct, FoodError> {
        self.products
            .get_mut(tag)
            .ok_or_else(|| FoodError::UnknownTag(tag.to_string()))
    }

    /// Look up a product.
    pub fn product(&self, tag: &str) -> Option<&FoodProduct> {
        self.products.get(tag)
    }

    /// Record an RFID scan moving the product to `stage`.
    pub fn scan(
        &mut self,
        tag: &str,
        stage: FoodStage,
        actor: &str,
        location: &str,
    ) -> Result<(), FoodError> {
        let seq = self.next_seq();
        let product = self.product_mut(tag)?;
        let current = product.stage();
        if current == FoodStage::Consumed {
            return Err(FoodError::AlreadyConsumed(tag.to_string()));
        }
        // Transport↔Distribution legs may repeat; otherwise stages move
        // forward monotonically.
        if stage.rank() < current.rank() {
            return Err(FoodError::StageRegression { from: current, to: stage });
        }
        let prev = product.trace.last().map(|e| e.chain).unwrap_or(Hash256::ZERO);
        let chain = hash_parts(
            "blockprov-food-trace",
            &[prev.as_bytes(), tag.as_bytes(), actor.as_bytes(), &seq.to_le_bytes()],
        );
        product.trace.push(TraceEvent {
            stage,
            actor: actor.to_string(),
            location: location.to_string(),
            seq,
            chain,
        });
        Ok(())
    }

    /// Ingest an IoT reading; raises an alert if it violates the envelope.
    /// Returns whether the reading was in range.
    pub fn telemetry(
        &mut self,
        tag: &str,
        temp_milli_c: i64,
        humidity_milli: i64,
    ) -> Result<bool, FoodError> {
        let seq = self.next_seq();
        let product = self.product_mut(tag)?;
        product.readings += 1;
        match product.envelope.check(temp_milli_c, humidity_milli) {
            None => Ok(true),
            Some(reason) => {
                product.alerts.push(SafetyAlert {
                    seq,
                    reason,
                    reading: (temp_milli_c, humidity_milli),
                    resolved: false,
                });
                Ok(false)
            }
        }
    }

    /// A quality officer resolves an alert after inspection.
    pub fn resolve_alert(&mut self, tag: &str, index: usize) -> Result<(), FoodError> {
        let product = self.product_mut(tag)?;
        let alert = product
            .alerts
            .get_mut(index)
            .ok_or(FoodError::UnknownAlert(index))?;
        alert.resolved = true;
        Ok(())
    }

    /// Anchor a certification document for a product.
    pub fn certify(
        &mut self,
        tag: &str,
        issuer: &str,
        scope: &str,
        document: &[u8],
        valid_days: u64,
    ) -> Result<usize, FoodError> {
        let today = self.day;
        let product = self.product_mut(tag)?;
        product.certificates.push(Certificate {
            issuer: issuer.to_string(),
            scope: scope.to_string(),
            digest: sha256(document),
            expires_day: today + valid_days,
        });
        Ok(product.certificates.len() - 1)
    }

    /// Verify a presented document against an anchored certificate:
    /// digest must match and the certificate must be unexpired.
    pub fn verify_certificate(
        &self,
        tag: &str,
        index: usize,
        document: &[u8],
    ) -> Result<bool, FoodError> {
        let product = self
            .products
            .get(tag)
            .ok_or_else(|| FoodError::UnknownTag(tag.to_string()))?;
        let cert = product
            .certificates
            .get(index)
            .ok_or(FoodError::UnknownCertificate(index))?;
        Ok(cert.digest == sha256(document) && cert.expires_day >= self.day)
    }

    /// Verify a product's trace hash chain.
    pub fn verify_trace(&self, tag: &str) -> Result<bool, FoodError> {
        let product = self
            .products
            .get(tag)
            .ok_or_else(|| FoodError::UnknownTag(tag.to_string()))?;
        let mut prev = Hash256::ZERO;
        for e in &product.trace {
            let expect = hash_parts(
                "blockprov-food-trace",
                &[prev.as_bytes(), tag.as_bytes(), e.actor.as_bytes(), &e.seq.to_le_bytes()],
            );
            if e.chain != expect {
                return Ok(false);
            }
            prev = e.chain;
        }
        Ok(true)
    }

    /// The consumer QR scan: everything the paper's transparency story
    /// promises, in one query.
    pub fn consumer_report(&self, tag: &str) -> Result<ConsumerReport, FoodError> {
        let product = self
            .products
            .get(tag)
            .ok_or_else(|| FoodError::UnknownTag(tag.to_string()))?;
        let origin = product
            .trace
            .first()
            .map(|e| format!("{} @ {}", e.actor, e.location))
            .unwrap_or_default();
        let valid_certificates = product
            .certificates
            .iter()
            .filter(|c| c.expires_day >= self.day)
            .map(|c| format!("{}:{}", c.issuer, c.scope))
            .collect();
        let open = product.open_alerts();
        Ok(ConsumerReport {
            tag: product.tag.clone(),
            class: product.class.clone(),
            origin,
            hops: product.trace.len(),
            stage: product.stage(),
            readings: product.readings,
            alerts_total: product.alerts.len(),
            alerts_open: open,
            valid_certificates,
            safe_to_sell: open == 0,
        })
    }

    /// Number of tracked products.
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// Whether no products are tracked.
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_lettuce() -> FoodChain {
        let mut c = FoodChain::new();
        c.register_product("RFID-001", "lettuce", SafetyEnvelope::chilled(), "green-farm", "ES")
            .unwrap();
        c
    }

    #[test]
    fn origin_to_consumption_trace() {
        let mut c = chain_with_lettuce();
        c.scan("RFID-001", FoodStage::Processing, "pack-co", "ES").unwrap();
        c.scan("RFID-001", FoodStage::Transport, "cool-trucks", "FR").unwrap();
        c.scan("RFID-001", FoodStage::Retail, "supermart", "DE").unwrap();
        c.scan("RFID-001", FoodStage::Consumed, "supermart", "DE").unwrap();
        let p = c.product("RFID-001").unwrap();
        assert_eq!(p.trace.len(), 5);
        assert_eq!(p.stage(), FoodStage::Consumed);
        assert!(c.verify_trace("RFID-001").unwrap());
    }

    #[test]
    fn stage_regression_rejected() {
        let mut c = chain_with_lettuce();
        c.scan("RFID-001", FoodStage::Retail, "supermart", "DE").unwrap();
        assert_eq!(
            c.scan("RFID-001", FoodStage::Farm, "green-farm", "ES").unwrap_err(),
            FoodError::StageRegression { from: FoodStage::Retail, to: FoodStage::Farm }
        );
    }

    #[test]
    fn consumed_products_are_closed() {
        let mut c = chain_with_lettuce();
        c.scan("RFID-001", FoodStage::Consumed, "store", "DE").unwrap();
        assert_eq!(
            c.scan("RFID-001", FoodStage::Consumed, "store", "DE").unwrap_err(),
            FoodError::AlreadyConsumed("RFID-001".into())
        );
    }

    #[test]
    fn duplicate_tag_rejected() {
        let mut c = chain_with_lettuce();
        assert_eq!(
            c.register_product("RFID-001", "kale", SafetyEnvelope::chilled(), "f", "l")
                .unwrap_err(),
            FoodError::DuplicateTag("RFID-001".into())
        );
    }

    #[test]
    fn telemetry_in_envelope_raises_no_alert() {
        let mut c = chain_with_lettuce();
        assert!(c.telemetry("RFID-001", 2_000, 90_000).unwrap());
        assert_eq!(c.product("RFID-001").unwrap().alerts.len(), 0);
    }

    #[test]
    fn cold_chain_break_raises_alert_and_blocks_sale() {
        let mut c = chain_with_lettuce();
        assert!(!c.telemetry("RFID-001", 9_000, 90_000).unwrap());
        let report = c.consumer_report("RFID-001").unwrap();
        assert_eq!(report.alerts_open, 1);
        assert!(!report.safe_to_sell);
        // After inspection the officer resolves the alert.
        c.resolve_alert("RFID-001", 0).unwrap();
        let report = c.consumer_report("RFID-001").unwrap();
        assert_eq!(report.alerts_open, 0);
        assert!(report.safe_to_sell);
    }

    #[test]
    fn humidity_violations_detected() {
        let mut c = chain_with_lettuce();
        assert!(!c.telemetry("RFID-001", 2_000, 40_000).unwrap());
        assert_eq!(c.product("RFID-001").unwrap().alerts[0].reason, "humidity out of range");
    }

    #[test]
    fn frozen_envelope_differs() {
        let mut c = FoodChain::new();
        c.register_product("RFID-F", "peas", SafetyEnvelope::frozen(), "farm", "PL").unwrap();
        assert!(c.telemetry("RFID-F", -20_000, 50_000).unwrap());
        assert!(!c.telemetry("RFID-F", -10_000, 50_000).unwrap());
    }

    #[test]
    fn certificate_verification_and_expiry() {
        let mut c = chain_with_lettuce();
        let doc = b"EU organic certificate for green-farm lot 7";
        let idx = c.certify("RFID-001", "EU-Organic", "organic", doc, 30).unwrap();
        assert!(c.verify_certificate("RFID-001", idx, doc).unwrap());
        assert!(!c.verify_certificate("RFID-001", idx, b"forged document").unwrap());
        c.advance_days(31);
        assert!(!c.verify_certificate("RFID-001", idx, doc).unwrap(), "expired");
        let report = c.consumer_report("RFID-001").unwrap();
        assert!(report.valid_certificates.is_empty());
    }

    #[test]
    fn consumer_report_summarizes_everything() {
        let mut c = chain_with_lettuce();
        c.scan("RFID-001", FoodStage::Transport, "cool-trucks", "FR").unwrap();
        c.telemetry("RFID-001", 2_000, 90_000).unwrap();
        c.certify("RFID-001", "EU-Organic", "organic", b"doc", 10).unwrap();
        let r = c.consumer_report("RFID-001").unwrap();
        assert_eq!(r.origin, "green-farm @ ES");
        assert_eq!(r.hops, 2);
        assert_eq!(r.stage, FoodStage::Transport);
        assert_eq!(r.readings, 1);
        assert_eq!(r.valid_certificates, vec!["EU-Organic:organic".to_string()]);
        assert!(r.safe_to_sell);
    }

    #[test]
    fn tampered_trace_detected() {
        let mut c = chain_with_lettuce();
        c.scan("RFID-001", FoodStage::Retail, "store", "DE").unwrap();
        assert!(c.verify_trace("RFID-001").unwrap());
        // Rewrite an actor in place (a forged custody hop).
        c.products.get_mut("RFID-001").unwrap().trace[1].actor = "shady-store".into();
        assert!(!c.verify_trace("RFID-001").unwrap());
    }

    #[test]
    fn unknown_tag_errors() {
        let c = FoodChain::new();
        assert_eq!(
            c.consumer_report("nope").unwrap_err(),
            FoodError::UnknownTag("nope".into())
        );
    }
}
