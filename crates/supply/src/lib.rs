//! Supply-chain provenance — Cui et al. [23], Islam et al. [38] and
//! PrivChain [52] reproduced on the blockprov substrate.
//!
//! Mechanisms:
//!
//! * **unique device identity + PUF authentication** — [`PufDevice`]
//!   simulates a physically unclonable function (seeded noisy
//!   challenge-response; see DESIGN.md §Substitutions) so genuine devices
//!   authenticate and clones fail;
//! * **legitimate registration & confirmation-based ownership transfer** —
//!   via the `RegistryContract` from `blockprov-contracts`, with every
//!   custody change anchored as a Table 1 supply-chain record carrying the
//!   accumulated `travel_trace`;
//! * **privacy-preserving telemetry** — cold-chain sensors commit to
//!   readings with hash-chain range commitments and prove "within [lo, hi]"
//!   without revealing values (PrivChain's ZKRP role), earning incentive
//!   credits for valid proofs exactly as PrivChain pays provers.

pub mod food;

use blockprov_contracts::registry::{RegisterArgs, RegistryContract, TransferArgs};
use blockprov_contracts::{ContractError, ContractId, ContractRuntime};
use blockprov_core::{CoreError, LedgerConfig, ProvenanceLedger};
use blockprov_crypto::hmac::{hmac_sha256_parts, HmacDrbg};
use blockprov_crypto::rangeproof::{RangeCommitment, RangeProof, RangeProofError, RangeWitness};
use blockprov_crypto::sha256::{sha256, Hash256};
use blockprov_ledger::tx::AccountId;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord, RecordId};
use blockprov_wire::Codec;
use std::collections::BTreeMap;
use std::fmt;

/// A simulated physically unclonable function.
///
/// Real PUFs derive responses from silicon process variation and are noisy;
/// we model that as HMAC responses with up to `noise_bits` flipped bits per
/// evaluation. Authentication enrolls a reference response and later accepts
/// responses within Hamming distance `2 * noise_bits`.
#[derive(Debug, Clone)]
pub struct PufDevice {
    secret: [u8; 32],
    noise_bits: u32,
    drbg: HmacDrbg,
}

impl PufDevice {
    /// Manufacture a device (the secret models silicon variation).
    pub fn manufacture(serial: &str, noise_bits: u32) -> Self {
        let secret = sha256(format!("puf-silicon:{serial}").as_bytes()).0;
        Self {
            secret,
            noise_bits,
            drbg: HmacDrbg::new(&secret),
        }
    }

    /// A counterfeit clone: same serial printed on the label, different
    /// silicon ⇒ different secret.
    pub fn counterfeit_of(serial: &str, noise_bits: u32) -> Self {
        let secret = sha256(format!("puf-clone:{serial}").as_bytes()).0;
        Self {
            secret,
            noise_bits,
            drbg: HmacDrbg::new(&secret),
        }
    }

    /// Evaluate the PUF on a challenge (noisy).
    pub fn respond(&mut self, challenge: &Hash256) -> Hash256 {
        let mut response = hmac_sha256_parts(&self.secret, &[challenge.as_bytes()]);
        // Flip up to `noise_bits` random bits.
        for _ in 0..self.noise_bits {
            if self.drbg.chance(0.5) {
                let bit = self.drbg.gen_range(256) as usize;
                response.0[bit / 8] ^= 1 << (bit % 8);
            }
        }
        response
    }

    /// Noise-free reference response (enrollment, done at the factory).
    pub fn enroll(&self, challenge: &Hash256) -> Hash256 {
        hmac_sha256_parts(&self.secret, &[challenge.as_bytes()])
    }
}

/// Hamming distance between two digests.
fn hamming(a: &Hash256, b: &Hash256) -> u32 {
    a.0.iter()
        .zip(b.0.iter())
        .map(|(x, y)| (x ^ y).count_ones())
        .sum()
}

/// PUF verifier state stored per device.
#[derive(Debug, Clone)]
pub struct PufEnrollment {
    challenge: Hash256,
    reference: Hash256,
    tolerance: u32,
}

impl PufEnrollment {
    /// Enroll a device under a fresh challenge.
    pub fn enroll(device: &PufDevice, challenge: Hash256) -> Self {
        Self {
            challenge,
            reference: device.enroll(&challenge),
            tolerance: 2 * device.noise_bits + 4,
        }
    }

    /// Authenticate a (possibly noisy) live response.
    pub fn authenticate(&self, device: &mut PufDevice) -> bool {
        let live = device.respond(&self.challenge);
        hamming(&live, &self.reference) <= self.tolerance
    }
}

/// Supply-chain domain errors.
#[derive(Debug)]
pub enum SupplyError {
    /// Contract rejected the operation.
    Contract(ContractError),
    /// Ledger failure.
    Core(CoreError),
    /// Device unknown.
    UnknownDevice(String),
    /// PUF authentication failed (counterfeit suspected).
    CounterfeitSuspected(String),
    /// Range-proof construction failed.
    RangeProof(RangeProofError),
}

impl fmt::Display for SupplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupplyError::Contract(e) => write!(f, "contract: {e}"),
            SupplyError::Core(e) => write!(f, "ledger: {e}"),
            SupplyError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            SupplyError::CounterfeitSuspected(d) => write!(f, "counterfeit suspected for {d}"),
            SupplyError::RangeProof(e) => write!(f, "range proof: {e}"),
        }
    }
}

impl std::error::Error for SupplyError {}

impl From<ContractError> for SupplyError {
    fn from(e: ContractError) -> Self {
        SupplyError::Contract(e)
    }
}
impl From<CoreError> for SupplyError {
    fn from(e: CoreError) -> Self {
        SupplyError::Core(e)
    }
}
impl From<RangeProofError> for SupplyError {
    fn from(e: RangeProofError) -> Self {
        SupplyError::RangeProof(e)
    }
}

/// Tracked per-device state.
#[derive(Debug)]
struct DeviceState {
    asset: Hash256,
    enrollment: PufEnrollment,
    travel_trace: Vec<String>,
    last_record: Option<RecordId>,
}

/// A published telemetry commitment awaiting (or carrying) its range proof.
#[derive(Debug, Clone)]
pub struct TelemetryEntry {
    /// Committing sensor/account.
    pub sensor: AccountId,
    /// Device the reading belongs to.
    pub device: String,
    /// The on-chain commitment.
    pub commitment: RangeCommitment,
    /// Whether a valid range proof was accepted.
    pub proven: bool,
}

/// The supply-chain ledger: registry contract + provenance + telemetry.
pub struct SupplyLedger {
    ledger: ProvenanceLedger,
    contract: ContractId,
    contract_height: u64,
    devices: BTreeMap<String, DeviceState>,
    telemetry: Vec<TelemetryEntry>,
    /// PrivChain incentive balances (credits for valid proofs).
    credits: BTreeMap<AccountId, u64>,
}

impl SupplyLedger {
    /// Open with the given registrars (manufacturers).
    pub fn new(registrars: Vec<AccountId>) -> Self {
        let config = LedgerConfig::private_default().with_domain(Domain::SupplyChain);
        let mut ledger = ProvenanceLedger::open(config);
        let contract = ledger
            .contracts
            .register(Box::new(RegistryContract::new(registrars)));
        Self {
            ledger,
            contract,
            contract_height: 0,
            devices: BTreeMap::new(),
            telemetry: Vec::new(),
            credits: BTreeMap::new(),
        }
    }

    /// Register a participant (manufacturer, distributor, pharmacy…).
    pub fn register_participant(&mut self, name: &str) -> Result<AccountId, SupplyError> {
        Ok(self.ledger.register_agent(name)?)
    }

    fn invoke(
        &mut self,
        caller: AccountId,
        method: &str,
        args: Vec<u8>,
    ) -> Result<(), SupplyError> {
        self.contract_height += 1;
        self.ledger
            .contracts
            .invoke(
                self.contract,
                caller,
                method,
                &args,
                1_000_000,
                self.contract_height,
                0,
            )
            .map(|_| ())
            .map_err(SupplyError::Contract)
    }

    /// Register a genuine device: unique id enforced by the contract, PUF
    /// enrolled, provenance record anchored.
    pub fn register_device(
        &mut self,
        manufacturer: AccountId,
        device_id: &str,
        device: &PufDevice,
    ) -> Result<RecordId, SupplyError> {
        let asset = sha256(device_id.as_bytes());
        let challenge = sha256(format!("challenge:{device_id}").as_bytes());
        let enrollment = PufEnrollment::enroll(device, challenge);
        let meta = enrollment.reference;
        self.invoke(
            manufacturer,
            "register",
            RegisterArgs { asset, meta }.to_wire(),
        )?;

        let ts = self.ledger.advance_clock();
        let record = ProvenanceRecord::new(
            device_id,
            manufacturer,
            Action::Create,
            ts,
            Domain::SupplyChain,
        )
        .with_field("unique_product_id", device_id)
        .with_field("manufacturer_id", &manufacturer.to_string())
        .with_field("batch_or_lot_number", "lot-0")
        .with_field("manufacturing_date", &ts.to_string())
        .with_field("product_type_or_category", "electronics")
        .with_field("travel_trace", "factory")
        .with_field("quick_access_url_or_qr", &format!("qr://{device_id}"));
        let rid = self.ledger.submit_record(record, &[])?;
        self.devices.insert(
            device_id.to_string(),
            DeviceState {
                asset,
                enrollment,
                travel_trace: vec!["factory".to_string()],
                last_record: Some(rid),
            },
        );
        Ok(rid)
    }

    /// Authenticate a physical device against its enrollment (counterfeit /
    /// clone detection).
    pub fn authenticate_device(
        &mut self,
        device_id: &str,
        device: &mut PufDevice,
    ) -> Result<(), SupplyError> {
        let state = self
            .devices
            .get(device_id)
            .ok_or_else(|| SupplyError::UnknownDevice(device_id.to_string()))?;
        if state.enrollment.authenticate(device) {
            Ok(())
        } else {
            Err(SupplyError::CounterfeitSuspected(device_id.to_string()))
        }
    }

    /// Two-phase ownership transfer with custody provenance.
    pub fn init_transfer(
        &mut self,
        device_id: &str,
        owner: AccountId,
        to: AccountId,
    ) -> Result<(), SupplyError> {
        let asset = self.asset_of(device_id)?;
        self.invoke(owner, "init_transfer", TransferArgs { asset, to }.to_wire())
    }

    /// Recipient confirms; ownership flips and a custody record is anchored
    /// with the accumulated travel trace.
    pub fn confirm_transfer(
        &mut self,
        device_id: &str,
        recipient: AccountId,
        location: &str,
    ) -> Result<RecordId, SupplyError> {
        let asset = self.asset_of(device_id)?;
        self.invoke(
            recipient,
            "confirm_transfer",
            TransferArgs {
                asset,
                to: recipient,
            }
            .to_wire(),
        )?;

        let state = self
            .devices
            .get_mut(device_id)
            .expect("checked by asset_of");
        state.travel_trace.push(location.to_string());
        let trace = state.travel_trace.join(" -> ");
        let prev = state.last_record;
        let ts = self.ledger.advance_clock();
        let mut record = ProvenanceRecord::new(
            device_id,
            recipient,
            Action::Transfer,
            ts,
            Domain::SupplyChain,
        )
        .with_field("unique_product_id", device_id)
        .with_field("manufacturer_id", "on-chain")
        .with_field("travel_trace", &trace);
        if let Some(prev) = prev {
            record = record.with_parent(prev);
        }
        let rid = self.ledger.submit_record(record, &[])?;
        self.devices.get_mut(device_id).expect("exists").last_record = Some(rid);
        Ok(rid)
    }

    /// Current on-chain owner of a device.
    pub fn owner_of(&self, device_id: &str) -> Option<AccountId> {
        let asset = sha256(device_id.as_bytes());
        RegistryContract::owner_of(&self.ledger.contracts, self.contract, &asset)
    }

    fn asset_of(&self, device_id: &str) -> Result<Hash256, SupplyError> {
        self.devices
            .get(device_id)
            .map(|d| d.asset)
            .ok_or_else(|| SupplyError::UnknownDevice(device_id.to_string()))
    }

    /// The travel trace accumulated for a device.
    pub fn travel_trace(&self, device_id: &str) -> Option<&[String]> {
        self.devices
            .get(device_id)
            .map(|d| d.travel_trace.as_slice())
    }

    // -- PrivChain telemetry -------------------------------------------------

    /// Sensor-side: commit to a reading in `[0, max]` without revealing it.
    /// Returns the witness (kept by the sensor) and the index of the
    /// published commitment.
    pub fn commit_reading(
        &mut self,
        sensor: AccountId,
        device_id: &str,
        value: u64,
        max: u64,
        seed: &[u8; 32],
    ) -> Result<(RangeWitness, usize), SupplyError> {
        let (witness, commitment) = RangeWitness::commit(value, max, seed)?;
        self.telemetry.push(TelemetryEntry {
            sensor,
            device: device_id.to_string(),
            commitment,
            proven: false,
        });
        Ok((witness, self.telemetry.len() - 1))
    }

    /// Verifier-side: accept a range proof for a published commitment.
    /// A valid proof credits the sensor (PrivChain's incentive payout).
    pub fn submit_range_proof(
        &mut self,
        index: usize,
        proof: &RangeProof,
    ) -> Result<bool, SupplyError> {
        let Some(entry) = self.telemetry.get_mut(index) else {
            return Ok(false);
        };
        let ok = proof.verify(&entry.commitment);
        if ok && !entry.proven {
            entry.proven = true;
            *self.credits.entry(entry.sensor).or_insert(0) += 1;
        }
        Ok(ok)
    }

    /// Incentive credits earned by a sensor.
    pub fn credits_of(&self, sensor: &AccountId) -> u64 {
        self.credits.get(sensor).copied().unwrap_or(0)
    }

    /// Published telemetry entries.
    pub fn telemetry(&self) -> &[TelemetryEntry] {
        &self.telemetry
    }

    /// Seal pending provenance.
    pub fn seal(&mut self) -> Result<(), SupplyError> {
        self.ledger.seal_block()?;
        Ok(())
    }

    /// Underlying ledger.
    pub fn ledger(&self) -> &ProvenanceLedger {
        &self.ledger
    }

    /// Contract runtime access (for event inspection in tests/benches).
    pub fn contracts(&self) -> &ContractRuntime {
        &self.ledger.contracts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SupplyLedger, AccountId, AccountId) {
        let factory = AccountId::from_name("factory");
        let mut s = SupplyLedger::new(vec![factory]);
        let f = s.register_participant("factory").unwrap();
        let d = s.register_participant("distributor").unwrap();
        (s, f, d)
    }

    #[test]
    fn genuine_device_authenticates_clone_fails() {
        let (mut s, factory, _) = setup();
        let mut genuine = PufDevice::manufacture("dev-1", 2);
        s.register_device(factory, "dev-1", &genuine).unwrap();
        // Genuine device passes repeatedly despite noise.
        for _ in 0..5 {
            s.authenticate_device("dev-1", &mut genuine).unwrap();
        }
        // A counterfeit with the same printed serial fails.
        let mut fake = PufDevice::counterfeit_of("dev-1", 2);
        assert!(matches!(
            s.authenticate_device("dev-1", &mut fake),
            Err(SupplyError::CounterfeitSuspected(_))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (mut s, factory, _) = setup();
        let dev = PufDevice::manufacture("dev-2", 1);
        s.register_device(factory, "dev-2", &dev).unwrap();
        assert!(matches!(
            s.register_device(factory, "dev-2", &dev),
            Err(SupplyError::Contract(ContractError::Rejected(_)))
        ));
    }

    #[test]
    fn ownership_transfer_and_travel_trace() {
        let (mut s, factory, distributor) = setup();
        let dev = PufDevice::manufacture("dev-3", 1);
        s.register_device(factory, "dev-3", &dev).unwrap();
        assert_eq!(s.owner_of("dev-3"), Some(factory));

        s.init_transfer("dev-3", factory, distributor).unwrap();
        assert_eq!(s.owner_of("dev-3"), Some(factory), "unconfirmed");
        let rid = s
            .confirm_transfer("dev-3", distributor, "warehouse-A")
            .unwrap();
        assert_eq!(s.owner_of("dev-3"), Some(distributor));
        assert_eq!(
            s.travel_trace("dev-3").unwrap(),
            &["factory", "warehouse-A"]
        );

        let record = s.ledger().record(&rid).unwrap();
        assert_eq!(record.fields["travel_trace"], "factory -> warehouse-A");
        assert_eq!(
            record.parents.len(),
            1,
            "custody chain links to registration"
        );
    }

    #[test]
    fn thief_cannot_initiate_transfer() {
        let (mut s, factory, _) = setup();
        let thief = s.register_participant("thief").unwrap();
        let dev = PufDevice::manufacture("dev-4", 1);
        s.register_device(factory, "dev-4", &dev).unwrap();
        assert!(matches!(
            s.init_transfer("dev-4", thief, thief),
            Err(SupplyError::Contract(ContractError::Rejected(_)))
        ));
    }

    #[test]
    fn cold_chain_range_proofs_and_incentives() {
        let (mut s, factory, _) = setup();
        let sensor = s.register_participant("sensor-7").unwrap();
        let dev = PufDevice::manufacture("vaccine-lot", 1);
        s.register_device(factory, "vaccine-lot", &dev).unwrap();

        // 5.5 °C in decicelsius, domain [0, 400].
        let (witness, idx) = s
            .commit_reading(sensor, "vaccine-lot", 55, 400, &[7u8; 32])
            .unwrap();
        // Prove within [2.0, 8.0] °C without revealing 5.5.
        let proof = witness.prove(20, 80).unwrap();
        assert!(s.submit_range_proof(idx, &proof).unwrap());
        assert_eq!(s.credits_of(&sensor), 1);
        // Re-proving the same entry does not double-pay.
        assert!(s.submit_range_proof(idx, &proof).unwrap());
        assert_eq!(s.credits_of(&sensor), 1);
    }

    #[test]
    fn spoiled_reading_cannot_be_proven_in_range() {
        let (mut s, _, _) = setup();
        let sensor = s.register_participant("sensor-8").unwrap();
        // 12.0 °C — outside the cold chain window.
        let (witness, idx) = s
            .commit_reading(sensor, "lot", 120, 400, &[8u8; 32])
            .unwrap();
        assert!(matches!(
            witness.prove(20, 80),
            Err(RangeProofError::ValueOutsideInterval)
        ));
        // A proof for the wider (honest) interval verifies but does not
        // satisfy the cold-chain check the verifier requires.
        let honest = witness.prove(0, 400).unwrap();
        assert!(s.submit_range_proof(idx, &honest).unwrap());
        assert!(
            !(honest.lo >= 20 && honest.hi <= 80),
            "interval visibly too wide"
        );
    }

    #[test]
    fn provenance_is_sealed_and_verifiable() {
        let (mut s, factory, distributor) = setup();
        let dev = PufDevice::manufacture("dev-5", 1);
        s.register_device(factory, "dev-5", &dev).unwrap();
        s.init_transfer("dev-5", factory, distributor).unwrap();
        s.confirm_transfer("dev-5", distributor, "port").unwrap();
        s.seal().unwrap();
        s.ledger().verify_chain().unwrap();
    }
}
