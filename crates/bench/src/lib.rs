//! Shared workload generators and report formatting for the experiment
//! harness. The `tables` binary regenerates every table/figure of the
//! paper; the Criterion benches under `benches/` cover the wall-clock axes.

pub mod flood;

use blockprov_core::{LedgerConfig, ProvenanceLedger};
use blockprov_crypto::hmac::HmacDrbg;
use blockprov_provenance::model::Action;

/// Render a fixed-width text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Build a ledger preloaded with `n` provenance records over `subjects`
/// subjects, sealed every `per_block` records — the standard E2/E7 workload.
pub fn loaded_ledger(n: usize, subjects: usize, per_block: usize) -> ProvenanceLedger {
    let mut ledger = ProvenanceLedger::open(LedgerConfig::private_default());
    let user = ledger.register_agent("workload-user").expect("register");
    let mut drbg = HmacDrbg::new(b"bench-workload");
    for i in 0..n {
        let subject = format!("object-{}", drbg.gen_range(subjects as u64));
        let action = match i % 4 {
            0 => Action::Create,
            1 => Action::Update,
            2 => Action::Read,
            _ => Action::Share,
        };
        ledger
            .apply_operation(&user, &subject, action, &[(i % 251) as u8; 24])
            .expect("apply");
        if (i + 1) % per_block == 0 {
            ledger.seal_block().expect("seal");
        }
    }
    ledger.seal_block().expect("final seal");
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockprov_provenance::query::ProvQuery;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            "demo",
            &["col-a", "b"],
            &[
                vec!["1".into(), "22".into()],
                vec!["333".into(), "4".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("col-a | b"));
        assert!(t.contains("333   | 4"));
    }

    #[test]
    fn loaded_ledger_shape() {
        let mut l = loaded_ledger(50, 5, 10);
        assert_eq!(l.chain().height(), 5);
        assert_eq!(l.graph().len(), 50);
        let res = l.query(&ProvQuery::BySubject("object-0".into()));
        assert!(!res.ids.is_empty());
    }
}
