//! Regenerate every table and figure of *SOK: Blockchain for Provenance*.
//!
//! Usage: `cargo run --release -p blockprov-bench --bin tables [-- --t1 --e1 …]`
//! With no flags, every experiment runs. See EXPERIMENTS.md for the index.

use blockprov_bench::{loaded_ledger, render_table};
use blockprov_consensus::pbft::{ByzMode, PbftNode};
use blockprov_consensus::{run_throughput, ConsensusKind};
use blockprov_core::{
    table2, CloudAuditor, CloudOpKind, LedgerConfig, ProvenanceLedger, StorageMode,
};
use blockprov_crosschain::htlc::{AtomicSwap, SwapFaults, SwapOutcome};
use blockprov_crosschain::VassagoNetwork;
use blockprov_crypto::sha256::sha256;
use blockprov_forensics::{ForensicsLedger, Stage};
use blockprov_ledger::block::Block;
use blockprov_ledger::chain::{Chain, ChainConfig};
use blockprov_ledger::tx::{AccountId, Transaction};
use blockprov_mlprov::{FlConfig, FlCoordinator};
use blockprov_provenance::capture::{CapturePathway, CapturePipeline, DataOperation};
use blockprov_provenance::model::{Action, Domain};
use blockprov_provenance::query::{ProvQuery, QueryCache, QueryEngine};
use blockprov_sciwork::Lifecycle;
use blockprov_simnet::{SimConfig, Simulation};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    if want("--t1") {
        t1_record_fields();
    }
    if want("--t2") {
        t2_design_considerations();
    }
    if want("--f1") {
        f1_rq_layering();
    }
    if want("--f2") {
        f2_tamper_cascade();
    }
    if want("--f3") {
        f3_capture_pathways();
    }
    if want("--f4") {
        f4_workflow_lifecycle();
    }
    if want("--f5") {
        f5_forensics_stages();
    }
    if want("--e1") {
        e1_consensus_throughput();
    }
    if want("--e2") {
        e2_retrieval_latency();
    }
    if want("--e3") {
        e3_storage_overhead();
    }
    if want("--e4") {
        e4_upload_overhead();
    }
    if want("--e6") {
        e6_crosschain_query();
    }
    if want("--e8") {
        e8_swap_matrix();
    }
    if want("--e9") {
        e9_fl_poisoning();
    }
    if want("--e12") {
        e12_pbft_fault_tolerance();
    }
    if want("--e13") {
        e13_synergy_sharing();
    }
    if want("--e14") {
        e14_storage();
    }
    if want("--e15") {
        e15_eo_traceability();
    }
    if want("--e16") {
        e16_interop_conformance();
    }
    if want("--e17") {
        e17_accountability();
    }
    if want("--e18") {
        e18_stego();
    }
    if want("--e19") {
        e19_twolayer();
    }
    if want("--e20") {
        e20_pandemic();
    }
    if want("--e21") {
        e21_blockdfl();
    }
    if want("--e22") {
        e22_arc();
    }
    if want("--e23") {
        e23_iotfc();
    }
    if want("--e24") {
        e24_bloxberg();
    }
}

/// T1 — Table 1: provenance record fields per domain.
fn t1_record_fields() {
    let domains = [
        Domain::SupplyChain,
        Domain::DigitalForensics,
        Domain::ScientificCollaboration,
    ];
    let max_rows = domains
        .iter()
        .map(|d| d.record_fields().len())
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for i in 0..max_rows {
        rows.push(
            domains
                .iter()
                .map(|d| d.record_fields().get(i).unwrap_or(&"").to_string())
                .collect(),
        );
    }
    let headers: Vec<&str> = domains.iter().map(|d| d.name()).collect();
    print!(
        "{}",
        render_table(
            "T1 / paper Table 1: Provenance Record Fields",
            &headers,
            &rows
        )
    );
}

/// T2 — Table 2: design considerations per domain.
fn t2_design_considerations() {
    let profiles = table2();
    let max_rows = profiles
        .iter()
        .map(|p| p.considerations.len())
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for i in 0..max_rows {
        rows.push(
            profiles
                .iter()
                .map(|p| p.considerations.get(i).unwrap_or(&"").to_string())
                .collect(),
        );
    }
    rows.push(
        profiles
            .iter()
            .map(|p| format!("[{}]", p.implemented_by))
            .collect(),
    );
    let headers: Vec<&str> = profiles.iter().map(|p| p.domain.name()).collect();
    print!(
        "{}",
        render_table("T2 / paper Table 2: Design Considerations", &headers, &rows)
    );
}

/// F1 — Figure 1: the RQs build on each other.
fn f1_rq_layering() {
    let rows = vec![
        vec![
            "RQ1".into(),
            "single-entity ledger".into(),
            "ProvenanceLedger::open(LedgerConfig::private_default())".into(),
        ],
        vec![
            "RQ2".into(),
            "collaborative domains reuse the RQ1 ledger".into(),
            "SciLedger/SupplyLedger/HealthLedger/FlCoordinator/ForensicsLedger wrap ProvenanceLedger".into(),
        ],
        vec![
            "RQ3".into(),
            "organizations with RQ1/RQ2 chains interoperate".into(),
            "Bridge/VassagoNetwork connect multiple ProvenanceLedgers via relay + proofs".into(),
        ],
    ];
    print!(
        "{}",
        render_table(
            "F1 / paper Figure 1: Interrelation of Research Questions",
            &["RQ", "dependency", "realized as"],
            &rows,
        )
    );
}

/// F2 — Figure 2: prev-hash + Merkle root tamper cascade.
fn f2_tamper_cascade() {
    let mut chain = Chain::new(ChainConfig::default());
    let mut parent = chain.tip();
    let blocks: Vec<Block> = (0..5u64)
        .map(|i| {
            let tx = Transaction::new(AccountId::from_name("u"), i, i, 1, vec![i as u8]);
            let b = Block::assemble(
                i + 1,
                parent,
                1000 * (i + 1),
                AccountId::from_name("s"),
                0,
                vec![tx],
            );
            parent = b.hash();
            b
        })
        .collect();
    chain.append_batch(blocks).unwrap();
    let mut rows = Vec::new();
    rows.push(vec![
        "honest chain".into(),
        format!("verify_integrity = {:?}", chain.verify_integrity().is_ok()),
    ]);

    // Tamper with block 2's transaction out-of-band and show every check
    // that trips.
    let block2 = chain.block_at(2).unwrap();
    let mut tampered = (*block2).clone();
    tampered.txs[0].payload = b"forged".to_vec();
    rows.push(vec![
        "tamper tx in block 2".into(),
        format!("tx_root_valid = {}", tampered.tx_root_valid()),
    ]);
    tampered.header.tx_root = Block::tx_root(&tampered.txs);
    rows.push(vec![
        "recompute tx_root".into(),
        format!(
            "block hash changed: {} -> {}",
            block2.hash(),
            tampered.hash()
        ),
    ]);
    let block3 = chain.block_at(3).unwrap();
    rows.push(vec![
        "block 3 parent check".into(),
        format!(
            "block3.prev == tampered.hash(): {}",
            block3.header.prev == tampered.hash()
        ),
    ]);
    print!(
        "{}",
        render_table(
            "F2 / paper Figure 2: tampering cascades through the chain",
            &["step", "effect"],
            &rows,
        )
    );
}

/// F3 — Figure 3: per-pathway capture work.
fn f3_capture_pathways() {
    let pathways = [
        CapturePathway::UserDirect,
        CapturePathway::DataStoreEmitted,
        CapturePathway::ThirdParty {
            decentralized: false,
        },
        CapturePathway::ThirdParty {
            decentralized: true,
        },
        CapturePathway::MultiSource { sources: 4 },
    ];
    let n = 5_000u64;
    let mut rows = Vec::new();
    for pathway in pathways {
        let mut pipeline = CapturePipeline::new(pathway, Domain::Cloud);
        pipeline.authenticate(AccountId::from_name("user"));
        let start = Instant::now();
        for i in 0..n {
            let op = DataOperation {
                user: AccountId::from_name("user"),
                object: format!("file-{}", i % 64),
                action: Action::Update,
                timestamp_ms: i,
                content: vec![(i % 251) as u8; 64],
            };
            pipeline.capture(&op).unwrap();
        }
        let elapsed = start.elapsed();
        rows.push(vec![
            pathway.name(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e6 / n as f64),
            pipeline.stats.hashes.to_string(),
            pipeline.stats.auth_checks.to_string(),
            pipeline.stats.attestations.to_string(),
            pipeline.stats.merges.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "F3 / paper Figure 3: capture pathways (5k ops each)",
            &[
                "pathway",
                "µs/op",
                "hashes",
                "auth checks",
                "attestations",
                "merges"
            ],
            &rows,
        )
    );
}

/// F4 — Figure 4: scientific workflow lifecycle.
fn f4_workflow_lifecycle() {
    let (lifecycle, sci) = Lifecycle::run().unwrap();
    let rows: Vec<Vec<String>> = lifecycle
        .log
        .iter()
        .enumerate()
        .map(|(i, stage)| vec![format!("{}", i + 1), format!("{stage:?}")])
        .collect();
    print!(
        "{}",
        render_table(
            "F4 / paper Figure 4: workflow lifecycle stages walked",
            &["step", "stage"],
            &rows,
        )
    );
    println!(
        "   ledger: {} provenance records across {} blocks (5 executions, 1 invalidation, 1 re-execution)",
        sci.ledger().graph().len(),
        sci.ledger().chain().height()
    );
}

/// F5 — Figure 5: the five forensics stages with role gating.
fn f5_forensics_stages() {
    let mut f = ForensicsLedger::new();
    let responder = f
        .register_investigator("responder", &[Stage::Identification.required_role()])
        .unwrap();
    let custodian = f
        .register_investigator(
            "custodian",
            &[
                Stage::Preservation.required_role(),
                Stage::Collection.required_role(),
            ],
        )
        .unwrap();
    let lead = f
        .register_investigator(
            "lead",
            &[
                Stage::Analysis.required_role(),
                Stage::Reporting.required_role(),
            ],
        )
        .unwrap();
    f.open_case("demo-case", responder).unwrap();
    f.evidence_op("demo-case", "disk-1", responder, "identify", b"")
        .unwrap();
    let mut rows = vec![vec![
        Stage::Identification.label().to_string(),
        "responder".to_string(),
        "open case + identify evidence".to_string(),
    ]];
    for (stage, actor, name, action) in [
        (Stage::Preservation, custodian, "custodian", "hash-image"),
        (Stage::Collection, custodian, "custodian", "collect-copy"),
        (Stage::Analysis, lead, "lead", "analyze"),
        (Stage::Reporting, lead, "lead", "compile-report"),
    ] {
        f.advance_stage("demo-case", stage, actor).unwrap();
        if stage != Stage::Reporting {
            f.evidence_op("demo-case", "disk-1", actor, action, b"")
                .unwrap();
        }
        rows.push(vec![
            stage.label().to_string(),
            name.to_string(),
            action.to_string(),
        ]);
    }
    f.seal().unwrap();
    let root = f.integrity_root();
    print!(
        "{}",
        render_table(
            "F5 / paper Figure 5: digital forensics stages",
            &["stage", "acting role", "operation"],
            &rows,
        )
    );
    println!(
        "   custody chain for disk-1: {} events; distributed-Merkle root {}",
        f.custody_chain("demo-case", "disk-1").len(),
        root.short()
    );
}

/// E1 — throughput/latency per consensus engine and network size.
fn e1_consensus_throughput() {
    let mut rows = Vec::new();
    // PoW difficulty 20 ⇒ ~1 s expected block interval per node-hashrate,
    // well above LAN latency — the realistic regime where BFT-class engines
    // dominate. (At trivial difficulty PoW block intervals sink below the
    // network latency and the comparison degenerates.)
    for kind in [
        ConsensusKind::PoW {
            difficulty_bits: 20,
        },
        ConsensusKind::PoS,
        ConsensusKind::PoA,
        ConsensusKind::Pbft,
        ConsensusKind::Raft,
    ] {
        for n in [4usize, 7, 13, 25] {
            let r = run_throughput(kind, n, 100, 7);
            rows.push(vec![
                r.kind.clone(),
                n.to_string(),
                format!("{}", r.committed_requests),
                format!("{:.1}", r.virtual_ms),
                format!("{:.0}", r.tps),
                format!("{:.2}", r.mean_commit_interval_ms),
                r.messages.to_string(),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "E1 / §6.1: consensus throughput vs engine and network size (100 requests, LAN)",
            &[
                "engine",
                "nodes",
                "committed",
                "virtual ms",
                "tps",
                "ms/commit",
                "messages"
            ],
            &rows,
        )
    );
}

/// E2 — provenance retrieval latency: scan vs index vs cache.
fn e2_retrieval_latency() {
    let mut rows = Vec::new();
    for n in [1_000usize, 10_000, 50_000] {
        let ledger = loaded_ledger(n, 100, 500);
        let graph = ledger.graph();
        let engine = QueryEngine::build_from(graph);
        let query = ProvQuery::BySubject("object-7".into());

        let reps = 50;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(QueryEngine::execute_scan(graph, &query));
        }
        let scan_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(graph, &query));
        }
        let index_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let mut cache = QueryCache::new(64);
        cache.execute(&engine, graph, &query); // warm
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(cache.execute(&engine, graph, &query));
        }
        let cache_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

        rows.push(vec![
            n.to_string(),
            format!("{scan_us:.1}"),
            format!("{index_us:.2}"),
            format!("{cache_us:.2}"),
            format!("{:.0}x", scan_us / index_us.max(0.001)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E2 / §6.1: retrieval latency vs record count (µs per query)",
            &[
                "records",
                "linear scan",
                "indexed",
                "cached (repeat)",
                "index speedup"
            ],
            &rows,
        )
    );
}

/// E3 — storage overhead: on-chain full vs hash-anchored.
fn e3_storage_overhead() {
    let mut rows = Vec::new();
    for payload_size in [256usize, 4 * 1024, 64 * 1024] {
        let run = |mode: StorageMode| -> (u64, u64) {
            let mut ledger =
                ProvenanceLedger::open(LedgerConfig::private_default().with_storage(mode));
            let user = ledger.register_agent("u").unwrap();
            for i in 0..50u8 {
                let mut blob = vec![0xA5u8; payload_size];
                blob[0] = i;
                ledger
                    .apply_operation(&user, &format!("f{i}"), Action::Create, &blob)
                    .unwrap();
            }
            ledger.seal_block().unwrap();
            (ledger.onchain_bytes(), ledger.offchain_bytes())
        };
        let (full_on, _) = run(StorageMode::OnChainFull);
        let (anch_on, anch_off) = run(StorageMode::HashAnchored);
        rows.push(vec![
            payload_size.to_string(),
            full_on.to_string(),
            anch_on.to_string(),
            anch_off.to_string(),
            format!("{:.1}x", full_on as f64 / anch_on as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E3 / §6.1: storage overhead, 50 records per run (bytes)",
            &[
                "payload B",
                "on-chain (full)",
                "on-chain (anchored)",
                "off-chain",
                "chain shrink"
            ],
            &rows,
        )
    );
}

/// E4 — ProvChain upload overhead: file ops with vs without auditing.
fn e4_upload_overhead() {
    let n = 2_000u64;
    // Baseline: hash the file op content only (a store without provenance).
    let start = Instant::now();
    for i in 0..n {
        std::hint::black_box(sha256(&[(i % 251) as u8; 256]));
    }
    let baseline_us = start.elapsed().as_secs_f64() * 1e6 / n as f64;

    let mut auditor = CloudAuditor::new(LedgerConfig::private_default(), 100);
    let user = auditor.register_user("u").unwrap();
    let start = Instant::now();
    for i in 0..n {
        auditor
            .file_op(
                &user,
                &format!("f{}", i % 32),
                CloudOpKind::Update,
                &[(i % 251) as u8; 256],
            )
            .unwrap();
    }
    auditor.seal().unwrap();
    let audited_us = start.elapsed().as_secs_f64() * 1e6 / n as f64;

    let rows = vec![
        vec!["store only (hash)".into(), format!("{baseline_us:.2}")],
        vec![
            "with provenance capture + anchoring".into(),
            format!("{audited_us:.2}"),
        ],
        vec![
            "overhead factor".into(),
            format!("{:.1}x", audited_us / baseline_us.max(0.001)),
        ],
    ];
    print!(
        "{}",
        render_table(
            "E4 / §6.1: provenance upload overhead (µs per file op, 2k ops)",
            &["configuration", "µs/op"],
            &rows,
        )
    );
}

/// E6 — Vassago parallel vs sequential cross-chain query.
fn e6_crosschain_query() {
    let mut rows = Vec::new();
    for hops in [2usize, 4, 8, 16] {
        let mut net = VassagoNetwork::new(hops);
        net.create_asset("asset", 0).unwrap();
        for hop in 1..hops {
            net.transfer_asset("asset", hop).unwrap();
        }
        let r = net.trace_asset("asset").unwrap();
        rows.push(vec![
            hops.to_string(),
            r.chains_involved.to_string(),
            r.sequential_accesses.to_string(),
            format!("{}", r.sequential_latency_ms),
            r.parallel_accesses.to_string(),
            format!("{}", r.parallel_latency_ms),
            r.authenticated.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E6 / Vassago: cross-chain provenance query (20 ms per chain access)",
            &[
                "hops",
                "chains",
                "seq accesses",
                "seq ms",
                "par accesses",
                "par ms",
                "authenticated"
            ],
            &rows,
        )
    );
}

/// E8 — atomic swap outcome matrix under fault injection.
fn e8_swap_matrix() {
    let mut rows = Vec::new();
    let cases: [(&str, SwapFaults); 5] = [
        ("happy path", SwapFaults::default()),
        (
            "bob never locks",
            SwapFaults {
                bob_never_locks: true,
                ..Default::default()
            },
        ),
        (
            "alice never claims",
            SwapFaults {
                alice_never_claims: true,
                ..Default::default()
            },
        ),
        (
            "alice claims late",
            SwapFaults {
                alice_claim_delay_ms: 5_000,
                ..Default::default()
            },
        ),
        (
            "bob crashes after reveal",
            SwapFaults {
                bob_never_claims: true,
                ..Default::default()
            },
        ),
    ];
    for (label, faults) in cases {
        let mut swap = AtomicSwap::setup(100, 200);
        let outcome = swap.run(2_000, faults);
        let conserved = swap.total_value() == 300;
        rows.push(vec![
            label.to_string(),
            format!("{outcome:?}"),
            conserved.to_string(),
            format!(
                "a:{}/b:{}",
                swap.chain_a.balance(&swap.alice),
                swap.chain_a.balance(&swap.bob)
            ),
            format!(
                "a:{}/b:{}",
                swap.chain_b.balance(&swap.alice),
                swap.chain_b.balance(&swap.bob)
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E8 / Herlihy atomic swaps: fault matrix (never half-completes)",
            &[
                "scenario",
                "outcome",
                "value conserved",
                "chain A balances",
                "chain B balances"
            ],
            &rows,
        )
    );
    let _ = SwapOutcome::Completed; // referenced for doc purposes
}

/// E9 — FL poisoning resilience sweep.
fn e9_fl_poisoning() {
    let mut rows = Vec::new();
    for percent in [0u32, 10, 25, 40, 50] {
        let run = |use_reputation: bool| -> f64 {
            let mut fl = FlCoordinator::new(FlConfig {
                poisoner_fraction: percent as f64 / 100.0,
                use_reputation,
                ..FlConfig::default()
            });
            fl.run(30).unwrap();
            fl.distance()
        };
        rows.push(vec![
            format!("{percent}%"),
            format!("{:.3}", run(true)),
            format!("{:.3}", run(false)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E9 / Yang et al.: FL distance-to-optimum after 30 rounds (lower = better)",
            &["attackers", "reputation-weighted", "plain averaging"],
            &rows,
        )
    );
}

/// E13 — SynergyChain: catalog-aggregated multichain queries vs sequential
/// sweeps, with hierarchical access control.
fn e13_synergy_sharing() {
    use blockprov_crosschain::SynergyNetwork;
    let mut rows = Vec::new();
    for n in [4usize, 8, 16] {
        let mut net = SynergyNetwork::new(n);
        // The keyword lives on 2 institutions regardless of network size.
        net.publish(0, "ct-scans", "org-0/radiology", b"a").unwrap();
        net.publish(1, "ct-scans", "org-1/imaging", b"b").unwrap();
        let consumer = AccountId::from_name("consumer");
        net.grant(consumer, "org-0");
        net.grant(consumer, "org-1");
        let report = net.query(consumer, "ct-scans").unwrap();
        rows.push(vec![
            n.to_string(),
            report.matches.len().to_string(),
            report.aggregated_accesses.to_string(),
            report.sequential_accesses.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E13 / SynergyChain: aggregated catalog vs sequential multichain query",
            &[
                "institutions",
                "matches",
                "catalog accesses",
                "sequential sweep accesses"
            ],
            &rows,
        )
    );
}

/// E12 — PBFT fault tolerance: f silent replicas of n = 3f+1.
fn e12_pbft_fault_tolerance() {
    let mut rows = Vec::new();
    for (n, silent) in [(4usize, 0usize), (4, 1), (4, 2), (7, 2), (7, 3), (10, 3)] {
        let nodes: Vec<PbftNode> = (0..n)
            .map(|i| {
                let mode = if i >= n - silent {
                    ByzMode::Silent
                } else {
                    ByzMode::Honest
                };
                PbftNode::new(i, n, 20, mode)
            })
            .collect();
        let mut sim = Simulation::new(nodes, SimConfig::lan(3));
        sim.run_to_quiescence(3_000_000);
        let executed = sim.node(0).executed();
        let f = (n - 1) / 3;
        rows.push(vec![
            n.to_string(),
            f.to_string(),
            silent.to_string(),
            executed.to_string(),
            if executed == 20 {
                "live".into()
            } else {
                "blocked".to_string()
            },
        ]);
    }
    print!(
        "{}",
        render_table(
            "E12 / PBFT liveness boundary: silent replicas vs f = (n-1)/3 (20 requests)",
            &["n", "f", "silent", "committed", "liveness"],
            &rows,
        )
    );
}

/// E14 — content-addressed storage: dedup under versioned writes and
/// availability vs replication/failures.
fn e14_storage() {
    use blockprov_storage::{add_file, cat, BlockStore, Chunker, Swarm};

    // Dedup under an edit: store v1, then v2 with a 4-byte insertion.
    let mut base = vec![0u8; 512 * 1024];
    let mut drbg = blockprov_crypto::HmacDrbg::new(b"e14-workload");
    drbg.fill_bytes(&mut base);
    let mut edited = base.clone();
    edited.splice(100_000..100_000, *b"EDIT");

    let mut rows = Vec::new();
    for (label, chunker) in [
        ("fixed-4k", Chunker::Fixed(4096)),
        ("cdc-4k", Chunker::ContentDefined(4096)),
    ] {
        let mut store = BlockStore::new();
        add_file(&mut store, &base, chunker, 16);
        let before = store.stats().unique_bytes;
        add_file(&mut store, &edited, chunker, 16);
        let stats = store.stats();
        let added = stats.unique_bytes - before;
        rows.push(vec![
            label.to_string(),
            stats.logical_bytes.to_string(),
            stats.unique_bytes.to_string(),
            format!("{:.2}", stats.dedup_ratio()),
            format!("{:.1}%", 100.0 * added as f64 / edited.len() as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E14a / storage dedup: v1 + edited v2 (512 KiB), fixed vs content-defined",
            &["chunker", "logical B", "unique B", "dedup ratio", "v2 cost"],
            &rows,
        )
    );

    // Availability: fraction of 64 blocks retrievable after f failures.
    let mut rows = Vec::new();
    for replication in [1usize, 2, 3] {
        for failures in [0usize, 1, 2, 3] {
            let mut swarm = Swarm::new(8, replication);
            let roots: Vec<_> = (0..64u32)
                .map(|i| {
                    add_file(&mut swarm, &i.to_le_bytes().repeat(64), Chunker::Fixed(64), 8)
                })
                .collect();
            for i in 0..failures {
                swarm.fail_peer(i);
            }
            let alive = roots.iter().filter(|r| cat(&swarm, r).is_ok()).count();
            rows.push(vec![
                replication.to_string(),
                failures.to_string(),
                format!("{}/{}", alive, roots.len()),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "E14b / swarm availability: 64 files on 8 peers, f failed peers",
            &["replication", "failed peers", "retrievable"],
            &rows,
        )
    );
}

/// E15 — EO DAG traceability vs full-ledger scan (Zhang [87]).
fn e15_eo_traceability() {
    use blockprov_sciwork::eo::EoNetwork;
    let mut rows = Vec::new();
    for noise in [100usize, 1_000, 5_000] {
        let mut net = EoNetwork::new(4, 2);
        for i in 0..noise {
            net.ingest("dc-noise", &format!("noise-{i}"), &[(i % 251) as u8]).unwrap();
        }
        let head = net.synthetic_pipeline("dc", "scene", 8, 2048).unwrap();
        net.anchor();
        let dag = net.trace(head).unwrap();
        let scan = net.trace_by_scan(head).unwrap();
        rows.push(vec![
            (noise + 9).to_string(),
            dag.lineage.len().to_string(),
            dag.records_examined.to_string(),
            scan.records_examined.to_string(),
            format!("{:.0}x", scan.records_examined as f64 / dag.records_examined as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E15 / EO data: DAG lineage walk vs ledger scan (8-level pipeline)",
            &["ledger txs", "ancestors", "dag examined", "scan examined", "speedup"],
            &rows,
        )
    );
}

/// E16 — unified interop conformance across §2.3 mechanism families.
fn e16_interop_conformance() {
    use blockprov_crosschain::interop::{
        conformance, AnchoredConnector, HtlcConnector, NotaryConnector, RelayConnector,
    };
    let reports = [
        conformance(&mut NotaryConnector::new(5, 3)),
        conformance(&mut RelayConnector::new("src")),
        conformance(&mut HtlcConnector::new()),
        conformance(&mut AnchoredConnector::new()),
    ];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let tick = |b: bool| if b { "pass".to_string() } else { "FAIL".to_string() };
            vec![
                r.mechanism.to_string(),
                tick(r.delivery),
                tick(r.authenticity),
                tick(r.provenance),
                tick(r.query),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E16 / unified cross-chain conformance (§6.2 'unified solution')",
            &["mechanism", "delivery", "authenticity", "provenance", "query"],
            &rows,
        )
    );
}

/// E17 — GDPR accountability verdicts (Neisse [58]).
fn e17_accountability() {
    use blockprov_provenance::accountability::AccountabilityLedger;
    let mut l = AccountabilityLedger::new();
    l.declare_policy("ehr/alice", "alice", "clinic", &["treatment"], &["dr-bob"], 30)
        .unwrap();
    let mut rows = Vec::new();
    let mut step = |l: &mut AccountabilityLedger, day_note: &str, proc_: &str, purp: &str| {
        let v = l.record_usage("ehr/alice", proc_, purp);
        rows.push(vec![
            day_note.to_string(),
            proc_.to_string(),
            purp.to_string(),
            format!("{v:?}"),
        ]);
    };
    step(&mut l, "day 0", "dr-bob", "treatment");
    step(&mut l, "day 0", "dr-bob", "marketing");
    step(&mut l, "day 0", "data-broker", "treatment");
    l.advance_days(31);
    step(&mut l, "day 31", "dr-bob", "treatment");
    l.withdraw_consent("ehr/alice").unwrap();
    step(&mut l, "day 31 (withdrawn)", "dr-bob", "treatment");
    rows.push(vec![
        "obligations".into(),
        "-".into(),
        "-".into(),
        format!("{} due", l.due_obligations().len()),
    ]);
    rows.push(vec![
        "chain".into(),
        "-".into(),
        "-".into(),
        if l.verify_chain() { "verified".into() } else { "BROKEN".into() },
    ]);
    print!(
        "{}",
        render_table(
            "E17 / GDPR accountability: judged usage events",
            &["when", "processor", "purpose", "verdict"],
            &rows,
        )
    );
}

/// E18 — steganographic evidence containers (AlKhanafseh [13]).
fn e18_stego() {
    use blockprov_forensics::stego::{StegoVault, StegoError};
    let vault = StegoVault::new(b"case-key");
    let mut rows = Vec::new();
    for size in [256usize, 4_096, 65_536] {
        let evidence = vec![0x5Au8; size];
        let file = vault.seal(&evidence, b"prev-block").unwrap();
        let round_trip = vault.extract(&file).map(|e| e == evidence).unwrap_or(false);
        let mut tampered = file.clone();
        tampered.bytes[file.len() / 2] ^= 1;
        let tamper_caught = vault.extract(&tampered).is_err();
        let wrong_key = matches!(
            StegoVault::new(b"wrong").extract(&file),
            Err(StegoError::WrongKeyOrCorrupt)
        );
        rows.push(vec![
            size.to_string(),
            file.len().to_string(),
            format!("{:.2}x", file.len() as f64 / size as f64),
            round_trip.to_string(),
            tamper_caught.to_string(),
            wrong_key.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E18 / stego evidence: container overhead and fail-closed checks",
            &["evidence B", "container B", "expansion", "round-trip", "tamper caught", "wrong-key caught"],
            &rows,
        )
    );
}

/// E19 — InfiniteChain two-layer auditing (Hwang [37]).
fn e19_twolayer() {
    use blockprov_crosschain::twolayer::{SideRecord, TwoLayerError, TwoLayerNetwork};
    let mut rows = Vec::new();

    let mut n = TwoLayerNetwork::new();
    let a = n.add_side_chain("schema-v1");
    let b = n.add_side_chain("schema-v1");
    let c = n.add_side_chain("schema-v2");
    n.commit_side_block(a, vec![SideRecord { key: "k".into(), value: b"v".to_vec() }])
        .unwrap();
    n.anchor_all();

    let honest = n.audit(a, 0).unwrap();
    rows.push(vec!["honest anchored block".into(), format!("audit passed = {}", honest.passed())]);

    let homog = n.share_record(a, 0, "k", b).is_ok();
    rows.push(vec!["share, same schema".into(), format!("delivered = {homog}")]);

    let heterog = matches!(
        n.share_record(a, 0, "k", c),
        Err(TwoLayerError::HeterogeneousSchemas { .. })
    );
    rows.push(vec![
        "share, different schema".into(),
        format!("rejected (paper's limitation) = {heterog}"),
    ]);

    let mut n2 = TwoLayerNetwork::new();
    let s = n2.add_side_chain("schema-v1");
    n2.commit_side_block(s, vec![SideRecord { key: "k".into(), value: b"v".to_vec() }])
        .unwrap();
    let unanchored = !n2.audit(s, 0).unwrap().passed();
    rows.push(vec!["unanchored block".into(), format!("audit flags = {unanchored}")]);

    print!(
        "{}",
        render_table("E19 / two-layer main/side auditing", &["scenario", "outcome"], &rows)
    );
}

/// E20 — pandemic platform: anonymous diagnostics (Abouyoussef [3]).
fn e20_pandemic() {
    use blockprov_health::pandemic::{PandemicPlatform, PandemicError, SymptomVector};
    let (mut p, mut patients) =
        PandemicPlatform::setup(b"tables-e20", &["p0", "p1", "p2", "p3"], 8).unwrap();
    p.register_entity("agency");
    let severe = SymptomVector([900, 800, 700, 1000, 900, 1000]);
    let mild = SymptomVector([100, 150, 100, 0, 0, 0]);
    let mut nonce = 0u64;
    for (i, patient) in patients.iter_mut().enumerate() {
        for _ in 0..2 {
            nonce += 1;
            let v = if i % 2 == 0 { severe } else { mild };
            p.submit(patient, &v, nonce).unwrap();
        }
    }
    let agg = p.aggregate_report("agency").unwrap();

    // Replay and forgery probes.
    let payload = severe.to_bytes();
    let digest = blockprov_crypto::sha256::hash_parts(
        "blockprov-pandemic-submission",
        &[&payload, &999u64.to_le_bytes()],
    );
    let sig = patients[0].sign(digest.as_bytes()).unwrap();
    p.ingest(digest, &payload, sig.clone()).unwrap();
    let replayed = matches!(
        p.ingest(digest, &payload, sig),
        Err(PandemicError::CredentialReplayed(_))
    );
    let leaves: std::collections::HashSet<u64> =
        p.submissions().iter().map(|s| s.leaf_index).collect();

    let rows = vec![
        vec!["submissions".into(), p.submissions().len().to_string()],
        vec!["positive / total".into(), format!("{}/{}", agg.positive, agg.total)],
        vec!["distinct one-time leaves".into(), leaves.len().to_string()],
        vec!["replay rejected".into(), replayed.to_string()],
        vec!["hash chain".into(), p.verify_chain().to_string()],
    ];
    print!(
        "{}",
        render_table("E20 / anonymous pandemic diagnostics", &["metric", "value"], &rows)
    );
}

/// E21 — BlockDFL: gradient compression and committee voting.
fn e21_blockdfl() {
    use blockprov_mlprov::blockdfl::{BlockDfl, DflConfig};

    // Compression sweep: communication vs convergence (40 rounds, honest).
    let mut rows = Vec::new();
    for topk in [64usize, 16, 8] {
        let mut fed = BlockDfl::new(DflConfig { topk, ..DflConfig::default() });
        let final_d = fed.run(40);
        let bytes: u64 = fed.rounds().iter().map(|r| r.comm_bytes).sum();
        rows.push(vec![
            format!("{topk}/64"),
            bytes.to_string(),
            format!("{final_d:.3}"),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E21a / BlockDFL gradient compression (12 peers, 40 rounds)",
            &["top-k", "total comm bytes", "final distance"],
            &rows,
        )
    );

    // Voting defense sweep: poisoner fraction × voting on/off.
    let mut rows = Vec::new();
    for frac in [0.0f64, 0.25, 0.33, 0.4] {
        let mut row = vec![format!("{:.0}%", frac * 100.0)];
        for voting in [true, false] {
            let mut fed = BlockDfl::new(DflConfig {
                poisoner_fraction: frac,
                voting,
                ..DflConfig::default()
            });
            row.push(format!("{:.3}", fed.run(40)));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "E21b / BlockDFL committee voting vs poisoning (final distance, 40 rounds)",
            &["poisoners", "voting on", "voting off"],
            &rows,
        )
    );
}

/// E22 — ARC asynchronous relay: batch size vs latency and trust model vs
/// signature cost (the evaluation the survey says ARC lacks).
fn e22_arc() {
    use blockprov_crosschain::arc::{ArcRelay, TrustModel};
    let mut rows = Vec::new();
    for batch in [1usize, 4, 16] {
        let mut relay = ArcRelay::new(&["org-a", "org-b"], 4, TrustModel::Committee { threshold: 3 });
        let ids: Vec<_> = (0..32u8)
            .map(|i| relay.submit("org-a", "org-b", &[i]).unwrap())
            .collect();
        while relay.pending_count() > 0 {
            relay.process_batch(batch);
        }
        let lats: Vec<u64> = ids.iter().map(|i| relay.ack_of(i).unwrap().unwrap()).collect();
        let mean = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
        let max = *lats.iter().max().unwrap();
        let sigs: usize = relay.batches().iter().map(|b| b.signatures).sum();
        rows.push(vec![
            batch.to_string(),
            relay.batches().len().to_string(),
            format!("{mean:.1}"),
            max.to_string(),
            sigs.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E22a / ARC: 32 async requests, committee 3-of-4, batch-size sweep",
            &["batch size", "batches", "mean ack latency", "max", "total signatures"],
            &rows,
        )
    );

    let mut rows = Vec::new();
    for (label, trust) in [
        ("single", TrustModel::Single),
        ("committee 3/4", TrustModel::Committee { threshold: 3 }),
        ("unanimous 4/4", TrustModel::Unanimous),
    ] {
        let mut relay = ArcRelay::new(&["org-a", "org-b"], 4, trust);
        relay.submit("org-a", "org-b", b"x").unwrap();
        let sigs = relay.process_batch(8).unwrap().signatures;
        rows.push(vec![label.to_string(), sigs.to_string()]);
    }
    print!(
        "{}",
        render_table(
            "E22b / ARC alternative trust models (signatures per batch)",
            &["trust model", "signatures"],
            &rows,
        )
    );
}

/// E23 — IoTFC acquisition: honest vs attack probes across a device fleet.
fn e23_iotfc() {
    use blockprov_forensics::iot::{IotDevice, IotError, IotForensics};
    let mut fw = IotForensics::new();
    let mut devices: Vec<IotDevice> =
        (0..4).map(|i| IotDevice::new(&format!("sensor-{i}"))).collect();
    for d in &devices {
        fw.enroll(d).unwrap();
    }
    for (i, d) in devices.iter_mut().enumerate() {
        for j in 0..3u8 {
            let data = [i as u8, j];
            let ev = d.capture(&data);
            fw.acquire(&ev, &data).unwrap();
        }
    }
    let mut rogue = IotDevice::new("sensor-0-clone");
    let mut forged = rogue.capture(b"planted");
    forged.device = "sensor-0".into();
    forged.seq = 3; // adaptive attacker claims the expected next sequence
    let forged_rejected = matches!(fw.acquire(&forged, b"planted"), Err(IotError::BadSignature));
    let ev = devices[1].capture(b"real");
    let tampered_rejected =
        matches!(fw.acquire(&ev, b"fake"), Err(IotError::DigestMismatch));
    let timelines_ok = (0..4).all(|i| fw.verify_timeline(&format!("sensor-{i}")).unwrap());

    let rows = vec![
        vec!["devices enrolled".into(), "4".into()],
        vec!["evidence accepted".into(), fw.len().to_string()],
        vec!["forged signature rejected".into(), forged_rejected.to_string()],
        vec!["tampered payload rejected".into(), tampered_rejected.to_string()],
        vec!["all timelines verify".into(), timelines_ok.to_string()],
        vec!["sweep root".into(), fw.sweep_root().to_string()[..16].to_string()],
    ];
    print!(
        "{}",
        render_table("E23 / IoTFC: fleet acquisition + secure verification", &["metric", "value"], &rows)
    );
}

/// E24 — Bloxberg research-object certification.
fn e24_bloxberg() {
    use blockprov_sciwork::bloxberg::{BloxbergRegistry, ResearchObject};
    let mut reg = BloxbergRegistry::new(&["mpg", "eth", "cnrs", "csail"], 3);
    let obj = ResearchObject::from_artifacts(
        b"simulation code v3",
        &[("steps", "1000"), ("seed", "42")],
        &[b"climate-grid-2025"],
        "rust-1.95/linux",
        b"mean-warming=1.47C",
    );
    let id = reg.register(obj);
    reg.endorse(&id, "mpg", b"mean-warming=1.47C").unwrap();
    reg.endorse(&id, "eth", b"mean-warming=1.47C").unwrap();
    let early = reg.certify(&id).is_err();
    reg.endorse(&id, "cnrs", b"mean-warming=1.47C").unwrap();
    let cert = reg.certify(&id).unwrap();

    // A second computation whose re-runs disagree.
    let bad = ResearchObject::from_artifacts(
        b"p-hacked analysis",
        &[("alpha", "0.05")],
        &[b"survey-data"],
        "rust-1.95/linux",
        b"significant!",
    );
    let bad_id = reg.register(bad);
    reg.endorse(&bad_id, "mpg", b"not significant").unwrap();
    reg.endorse(&bad_id, "eth", b"not significant").unwrap();
    reg.endorse(&bad_id, "cnrs", b"inconclusive").unwrap();
    let bad_blocked = reg.certify(&bad_id).is_err();

    let rows = vec![
        vec!["2/3 endorsements certify".into(), format!("blocked = {early}")],
        vec!["3/3 matching re-runs".into(), format!("certified by {:?}", cert.endorsers)],
        vec![
            "result verification".into(),
            format!(
                "claimed ok = {}, forged ok = {}",
                BloxbergRegistry::verify_result(&cert, b"mean-warming=1.47C"),
                BloxbergRegistry::verify_result(&cert, b"mean-warming=0.0C")
            ),
        ],
        vec!["irreproducible object".into(), format!("certification blocked = {bad_blocked}")],
    ];
    print!(
        "{}",
        render_table("E24 / Bloxberg reproducibility certification", &["scenario", "outcome"], &rows)
    );
}
