//! `txflood`: flood a live `blockprov-node` with mixed-scenario traffic.
//!
//! One producer thread builds a pre-chained block stream on top of the
//! node's current tip ([`blockprov_bench::flood`]) and POSTs it batch by
//! batch; `NODE_FLOOD_QUERY_THREADS` client threads concurrently hammer
//! the read endpoints (`/tip`, `/block`, `/tx`, `/provenance`, `/prove`)
//! over keep-alive connections, restricted to heights the producer has
//! already confirmed so every query has a well-defined answer.
//!
//! Backpressure `429`s are retried after the server's `Retry-After` and
//! counted separately; any other non-2xx (or a failed read) is a hard
//! failure and the process exits non-zero. Results merge into the tracked
//! bench artifact through the criterion shim:
//!
//! ```text
//! NODE_FLOOD_ADDR=127.0.0.1:7341 \
//! CRITERION_JSON_MERGE=BENCH_ledger_scale.json \
//! cargo run --release -p blockprov-bench --bin txflood
//! ```
//!
//! Environment (all optional): `NODE_FLOOD_ADDR`, `NODE_FLOOD_BLOCKS`,
//! `NODE_FLOOD_TXS` (per block), `NODE_FLOOD_BATCH` (blocks per POST),
//! `NODE_FLOOD_QUERY_THREADS`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blockprov_bench::flood::{artifact_name, flood_blocks};
use blockprov_crypto::sha256::Hash256;
use blockprov_ledger::block::BlockHash;
use blockprov_wire::{encode_seq, Writer};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One keep-alive HTTP/1.1 client connection.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A parsed response: status, `Retry-After` seconds if present, body.
struct Reply {
    status: u16,
    retry_after: Option<u64>,
    body: String,
}

impl Conn {
    fn open(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Reply> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: node\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;

        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut hline = String::new();
            self.reader.read_line(&mut hline)?;
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim();
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => content_length = value.parse().unwrap_or(0),
                    "retry-after" => retry_after = value.parse().ok(),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Reply {
            status,
            retry_after,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// Extract a `"key":"string"` value from a flat JSON body (the endpoints
/// emit no nesting for the fields the flood needs).
fn json_str(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag)? + tag.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

/// Extract a `"key":number` value.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = body.find(&tag)? + tag.len();
    let digits: String = body[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Deterministic xorshift for the query mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn main() -> ExitCode {
    let addr = std::env::var("NODE_FLOOD_ADDR").unwrap_or_else(|_| "127.0.0.1:7341".into());
    let blocks = env_u64("NODE_FLOOD_BLOCKS", 2_000);
    let txs_per_block = env_u64("NODE_FLOOD_TXS", 4);
    let batch = env_u64("NODE_FLOOD_BATCH", 64).max(1) as usize;
    let query_threads = env_u64("NODE_FLOOD_QUERY_THREADS", 3) as usize;

    // Anchor the stream on the node's current tip.
    let mut conn = match Conn::open(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("txflood: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tip = conn.request("GET", "/tip", b"").expect("GET /tip");
    let tip_height = json_u64(&tip.body, "height").expect("tip height");
    let tip_hash = json_str(&tip.body, "hash")
        .and_then(|h| Hash256::from_hex(&h))
        .map(BlockHash)
        .expect("tip hash");
    let tip_block = conn
        .request("GET", &format!("/block/{tip_height}"), b"")
        .expect("GET /block");
    let tip_ts = json_u64(&tip_block.body, "timestamp_ms").expect("tip timestamp");

    println!(
        "txflood: {blocks} blocks x {txs_per_block} txs against {addr} \
         (tip {tip_height}, batch {batch}, {query_threads} query threads)"
    );
    let stream = flood_blocks(tip_hash, tip_height, tip_ts, blocks, txs_per_block, 0);

    // Tx ids per block (hex), so query threads only ask about confirmed txs.
    let tx_ids: Arc<Vec<Vec<String>>> = Arc::new(
        stream
            .iter()
            .map(|b| b.txs.iter().map(|tx| tx.id().0.to_hex()).collect())
            .collect(),
    );
    let confirmed = Arc::new(AtomicU64::new(0)); // blocks of `stream` committed
    let done = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));

    let queriers: Vec<_> = (0..query_threads)
        .map(|k| {
            let addr = addr.clone();
            let tx_ids = Arc::clone(&tx_ids);
            let confirmed = Arc::clone(&confirmed);
            let done = Arc::clone(&done);
            let failures = Arc::clone(&failures);
            let base_height = tip_height;
            std::thread::spawn(move || -> (Vec<u64>, Duration) {
                let mut conn = match Conn::open(&addr) {
                    Ok(c) => c,
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                        return (Vec::new(), Duration::from_secs(1));
                    }
                };
                let mut rng = Rng(0x9e3779b97f4a7c15 ^ (k as u64 + 1));
                let mut samples = Vec::new();
                let started = Instant::now();
                while !done.load(Ordering::Acquire) {
                    let seen = confirmed.load(Ordering::Acquire);
                    let path = match rng.next() % 5 {
                        0 => "/tip".to_string(),
                        1 => format!("/block/{}", rng.next() % (base_height + seen + 1)),
                        2 if seen > 0 => {
                            let b = (rng.next() % seen) as usize;
                            let ids = &tx_ids[b];
                            format!("/tx/{}", ids[(rng.next() as usize) % ids.len()])
                        }
                        3 if seen > 0 => {
                            let b = (rng.next() % seen) as usize;
                            let ids = &tx_ids[b];
                            format!("/prove/{}", ids[(rng.next() as usize) % ids.len()])
                        }
                        _ => format!("/provenance/{}", artifact_name(rng.next() % 256)),
                    };
                    let t = Instant::now();
                    match conn.request("GET", &path, b"") {
                        Ok(reply) if reply.status == 200 => {
                            samples.push(t.elapsed().as_nanos() as u64);
                        }
                        Ok(reply) => {
                            eprintln!("txflood: GET {path} -> {}", reply.status);
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("txflood: GET {path} failed: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                (samples, started.elapsed())
            })
        })
        .collect();

    // Producer: POST the stream batch by batch, retrying on backpressure.
    let mut backpressure = 0u64;
    let ingest_started = Instant::now();
    'ingest: for (batch_idx, chunk) in stream.chunks(batch).enumerate() {
        let mut w = Writer::new();
        encode_seq(chunk, &mut w);
        let body = w.into_bytes();
        loop {
            match conn.request("POST", "/blocks", &body) {
                Ok(reply) if reply.status == 200 => {
                    confirmed.store(
                        (batch_idx * batch + chunk.len()) as u64,
                        Ordering::Release,
                    );
                    break;
                }
                Ok(reply) if reply.status == 429 => {
                    backpressure += 1;
                    let wait = reply.retry_after.unwrap_or(1).min(5);
                    std::thread::sleep(Duration::from_millis(wait * 100));
                }
                Ok(reply) => {
                    eprintln!(
                        "txflood: POST /blocks -> {} ({})",
                        reply.status, reply.body
                    );
                    failures.fetch_add(1, Ordering::Relaxed);
                    break 'ingest;
                }
                Err(e) => {
                    eprintln!("txflood: POST /blocks failed: {e}");
                    failures.fetch_add(1, Ordering::Relaxed);
                    break 'ingest;
                }
            }
        }
    }
    let ingest_elapsed = ingest_started.elapsed();
    done.store(true, Ordering::Release);

    let mut query_samples: Vec<u64> = Vec::new();
    let mut query_ops_per_s = 0.0;
    for handle in queriers {
        let (samples, elapsed) = handle.join().expect("query thread");
        query_ops_per_s += samples.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        query_samples.extend_from_slice(&samples);
    }
    query_samples.sort_unstable();

    let ingested = confirmed.load(Ordering::Acquire);
    let ingest_rate = ingested as f64 / ingest_elapsed.as_secs_f64().max(1e-9);
    let p50 = percentile(&query_samples, 0.50);
    let p99 = percentile(&query_samples, 0.99);
    let failed = failures.load(Ordering::Relaxed);

    println!(
        "txflood: ingested {ingested}/{blocks} blocks at {ingest_rate:.0} blk/s \
         ({backpressure} backpressure retries); \
         {} queries at {query_ops_per_s:.0} ops/s (p50 {p50} ns, p99 {p99} ns); \
         {failed} failed requests",
        query_samples.len()
    );

    criterion::record_metric("node_flood/ingest_blk_per_s", ingest_rate, "blk/s");
    criterion::record_metric("node_flood/query_ops_per_s", query_ops_per_s, "ops/s");
    criterion::record_metric("node_flood/p50", p50 as f64, "ns");
    criterion::record_metric("node_flood/p99", p99 as f64, "ns");
    criterion::record_metric("node_flood/backpressure_429", backpressure as f64, "count");
    criterion::finalize();

    if failed > 0 || ingested != blocks {
        eprintln!("txflood: FAILED ({failed} failures, {ingested}/{blocks} ingested)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
