//! Mixed-scenario traffic generation for node load tests.
//!
//! Builds a pre-chained stream of blocks whose transactions carry real
//! [`ProvenanceRecord`]s rotating across four survey scenarios — supply
//! chain, digital forensics (IoT custody), ML asset tracking and
//! scientific workflows — so a flood against the node exercises the same
//! decode/index/graph path as the domain crates, not opaque byte blobs.
//!
//! Both the `txflood` load driver and the node's end-to-end test build
//! their streams here, which is what lets the test's direct-ledger oracle
//! and the HTTP-ingested node agree block-for-block.

use blockprov_ledger::block::{Block, BlockHash};
use blockprov_ledger::tx::{AccountId, Transaction};
use blockprov_core::txkind;
use blockprov_provenance::model::{Action, Domain, ProvenanceRecord};
use blockprov_wire::Codec;

/// One survey scenario: acting agent, artifact name prefix, domain tag.
const SCENARIOS: [(&str, &str, Domain); 4] = [
    ("supply-manufacturer", "pallet", Domain::SupplyChain),
    ("forensics-investigator", "evidence", Domain::DigitalForensics),
    ("mlprov-trainer", "model", Domain::MachineLearning),
    ("sciwork-engine", "dataset", Domain::ScientificCollaboration),
];

/// Action rotation (all parent-free, so graph insertion cannot fail).
const ACTIONS: [Action; 6] = [
    Action::Create,
    Action::Update,
    Action::Read,
    Action::Share,
    Action::Transfer,
    Action::Execute,
];

/// Distinct artifacts per scenario; queries against any one artifact see
/// a deep history once the stream is a few hundred transactions long.
pub const ARTIFACTS_PER_SCENARIO: u64 = 64;

/// The artifact name the `i`-th flood transaction touches.
pub fn artifact_name(i: u64) -> String {
    let (_, prefix, _) = SCENARIOS[(i % 4) as usize];
    format!("{prefix}-{}", (i / 4) % ARTIFACTS_PER_SCENARIO)
}

/// The `i`-th flood transaction: a provenance record in the `i % 4`-th
/// scenario, wire-encoded into a [`txkind::PROVENANCE`] transaction.
/// Timestamps advance with `i`, so record ids never collide.
pub fn mixed_tx(i: u64, timestamp_ms: u64) -> Transaction {
    let (agent_name, _, domain) = SCENARIOS[(i % 4) as usize];
    let agent = AccountId::from_name(agent_name);
    let record = ProvenanceRecord::new(
        &artifact_name(i),
        agent,
        ACTIONS[((i / 4) % ACTIONS.len() as u64) as usize].clone(),
        timestamp_ms,
        domain,
    );
    Transaction::new(agent, i, timestamp_ms, txkind::PROVENANCE, record.to_wire())
}

/// Pre-assemble `blocks` chained blocks of mixed-scenario traffic on top
/// of `(parent, parent_height, parent_ts)`, `txs_per_block` transactions
/// each. `tx_base` offsets the global transaction counter so successive
/// streams against one chain stay distinct.
pub fn flood_blocks(
    parent: BlockHash,
    parent_height: u64,
    parent_ts: u64,
    blocks: u64,
    txs_per_block: u64,
    tx_base: u64,
) -> Vec<Block> {
    let sealer = AccountId::from_name("flood-sealer");
    let mut prev = parent;
    (0..blocks)
        .map(|b| {
            let ts = parent_ts + b + 1;
            let txs = (0..txs_per_block)
                .map(|t| mixed_tx(tx_base + b * txs_per_block + t, ts))
                .collect();
            let block = Block::assemble(parent_height + b + 1, prev, ts, sealer, 0, txs);
            prev = block.hash();
            block
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_chains_and_rotates_scenarios() {
        let stream = flood_blocks(BlockHash::ZERO, 0, 1_000, 8, 4, 0);
        assert_eq!(stream.len(), 8);
        for (i, block) in stream.iter().enumerate() {
            assert_eq!(block.header.height, i as u64 + 1);
            assert_eq!(block.txs.len(), 4);
            if i > 0 {
                assert_eq!(block.header.prev, stream[i - 1].hash());
            }
        }
        // Each block's 4 txs cover all 4 scenario agents.
        let authors: std::collections::BTreeSet<_> =
            stream[0].txs.iter().map(|tx| tx.author).collect();
        assert_eq!(authors.len(), 4);
    }

    #[test]
    fn records_decode_back_out() {
        let tx = mixed_tx(5, 42);
        let mut r = blockprov_wire::Reader::new(&tx.payload);
        let record = ProvenanceRecord::decode(&mut r).expect("decodable");
        assert_eq!(record.subject, artifact_name(5));
        assert_eq!(record.timestamp_ms, 42);
    }
}
