//! E4 — ProvChain provenance upload overhead: the per-file-op cost added by
//! capture + anchoring, against a bare content-hash baseline.

use blockprov_core::{CloudAuditor, CloudOpKind, LedgerConfig, StorageMode};
use blockprov_crypto::sha256::sha256;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_baseline_store(c: &mut Criterion) {
    let content = vec![0x42u8; 256];
    c.bench_function("store_only_hash", |b| {
        b.iter(|| sha256(black_box(&content)));
    });
}

fn bench_audited_op(c: &mut Criterion) {
    let mut group = c.benchmark_group("audited_file_op");
    group.sample_size(20);
    for (label, storage) in [
        ("hash_anchored", StorageMode::HashAnchored),
        ("onchain_full", StorageMode::OnChainFull),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut auditor =
                CloudAuditor::new(LedgerConfig::private_default().with_storage(storage), 1_000);
            let user = auditor.register_user("u").unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                auditor
                    .file_op(
                        &user,
                        &format!("f{}", i % 64),
                        CloudOpKind::Update,
                        black_box(&[(i % 251) as u8; 256]),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_seal_and_prove(c: &mut Criterion) {
    c.bench_function("seal_block_100_ops", |b| {
        b.iter_batched(
            || {
                let mut auditor = CloudAuditor::new(LedgerConfig::private_default(), 10_000);
                let user = auditor.register_user("u").unwrap();
                for i in 0..100u64 {
                    auditor
                        .file_op(&user, &format!("f{i}"), CloudOpKind::Update, &[i as u8])
                        .unwrap();
                }
                auditor
            },
            |mut auditor| auditor.seal().unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });

    let mut auditor = CloudAuditor::new(LedgerConfig::private_default(), 512);
    let user = auditor.register_user("u").unwrap();
    let mut rid = None;
    for i in 0..200u64 {
        rid = Some(
            auditor
                .file_op(
                    &user,
                    &format!("f{}", i % 16),
                    CloudOpKind::Update,
                    &[i as u8],
                )
                .unwrap(),
        );
    }
    auditor.seal().unwrap();
    let rid = rid.unwrap();
    c.bench_function("issue_and_verify_proof", |b| {
        b.iter(|| {
            let proof = auditor.issue_proof(black_box(&rid)).unwrap();
            assert!(auditor.user_verify(&rid, &proof));
        });
    });
}

criterion_group!(
    benches,
    bench_baseline_store,
    bench_audited_op,
    bench_seal_and_prove
);
criterion_main!(benches);
