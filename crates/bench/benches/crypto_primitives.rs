//! Substrate microbenchmarks: SHA-256 throughput, Merkle construction,
//! hash-based signatures. These calibrate every higher-level number.

use blockprov_crypto::sha256::{sha256, Sha256};
use blockprov_crypto::sig::{verify, Keypair, OtsScheme};
use blockprov_crypto::MerkleTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

fn bench_sha256_incremental(c: &mut Criterion) {
    let chunk = vec![0x5Au8; 256];
    c.bench_function("sha256_incremental_16_chunks", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for _ in 0..16 {
                h.update(black_box(&chunk));
            }
            h.finalize()
        });
    });
}

fn bench_merkle_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_build");
    for n in [64usize, 1024, 8192] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::from_data(black_box(leaves)));
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_signatures");
    group.sample_size(10);
    for (scheme, label) in [(OtsScheme::Wots, "wots"), (OtsScheme::Lamport, "lamport")] {
        group.bench_function(format!("{label}_sign"), |b| {
            // Height 8 = 256 one-time leaves; refresh keypair when drained.
            let mut kp = Keypair::from_name("bench-signer", scheme, 8);
            b.iter(|| {
                if kp.remaining() == 0 {
                    kp = Keypair::from_name("bench-signer", scheme, 8);
                }
                kp.sign(black_box(b"benchmark message")).unwrap()
            });
        });
        let mut kp = Keypair::from_name("bench-verifier", scheme, 4);
        let pk = kp.public_key();
        let sig = kp.sign(b"benchmark message").unwrap();
        group.bench_function(format!("{label}_verify"), |b| {
            b.iter(|| {
                verify(
                    black_box(&pk),
                    black_box(b"benchmark message"),
                    black_box(&sig),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_sha256_incremental,
    bench_merkle_build,
    bench_signatures
);
criterion_main!(benches);
