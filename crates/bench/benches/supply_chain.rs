//! Supply-chain provenance costs — custody transfer and privacy-preserving
//! telemetry (Cui et al. [23] / PrivChain [52] mechanisms on the blockprov
//! substrate).
//!
//! Shapes to reproduce: a two-phase custody transfer anchors a contract
//! invocation plus a Table 1 record per hop, so hop cost stays flat as the
//! travel trace grows; range-proof verification cost scales with the bit
//! width of the committed range, independent of the hidden value.

use blockprov_crypto::rangeproof::RangeWitness;
use blockprov_crypto::sha256::sha256;
use blockprov_supply::{PufDevice, SupplyLedger};
use blockprov_ledger::tx::AccountId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn manufacturer() -> AccountId {
    AccountId::from_name("acme")
}

/// A ledger with one registered device and a small participant roster.
fn seeded_ledger(device_id: &str) -> (SupplyLedger, Vec<AccountId>) {
    let mut ledger = SupplyLedger::new(vec![manufacturer()]);
    let mut parties = vec![ledger.register_participant("acme").unwrap()];
    for name in ["dist-0", "dist-1", "pharmacy", "retailer"] {
        parties.push(ledger.register_participant(name).unwrap());
    }
    let device = PufDevice::manufacture(device_id, 2);
    ledger
        .register_device(manufacturer(), device_id, &device)
        .unwrap();
    (ledger, parties)
}

/// Full custody hop: init by the current owner, confirm by the recipient,
/// custody record anchored with the accumulated travel trace.
fn bench_custody_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("supply_custody_transfer");
    group.sample_size(20);
    group.bench_function("two_phase_hop", |b| {
        let (mut ledger, parties) = seeded_ledger("dev-hop");
        let mut owner_idx = 0usize;
        let mut hop = 0u64;
        b.iter(|| {
            let owner = parties[owner_idx % parties.len()];
            let to = parties[(owner_idx + 1) % parties.len()];
            ledger.init_transfer("dev-hop", owner, to).unwrap();
            let rid = ledger
                .confirm_transfer("dev-hop", to, &format!("site-{hop}"))
                .unwrap();
            owner_idx += 1;
            hop += 1;
            black_box(rid)
        });
    });
    group.finish();
}

/// Custody verification: on-chain owner lookup + travel-trace readback
/// after a multi-hop journey.
fn bench_custody_audit(c: &mut Criterion) {
    let (mut ledger, parties) = seeded_ledger("dev-audit");
    for hop in 0..8u64 {
        let owner = parties[hop as usize % parties.len()];
        let to = parties[(hop as usize + 1) % parties.len()];
        ledger.init_transfer("dev-audit", owner, to).unwrap();
        ledger
            .confirm_transfer("dev-audit", to, &format!("site-{hop}"))
            .unwrap();
    }
    ledger.seal().unwrap();
    let mut group = c.benchmark_group("supply_custody_audit");
    group.sample_size(20);
    group.bench_function("owner_and_trace_after_8_hops", |b| {
        b.iter(|| {
            let owner = ledger.owner_of(black_box("dev-audit")).unwrap();
            let trace = ledger.travel_trace("dev-audit").unwrap().len();
            (owner, trace)
        })
    });
    group.finish();
}

/// PrivChain telemetry: commitment, proving and verification cost as the
/// committed range widens.
fn bench_range_proofs(c: &mut Criterion) {
    let mut group = c.benchmark_group("supply_range_proof");
    group.sample_size(20);
    for bits in [8u32, 12, 16] {
        let max = (1u64 << bits) - 1;
        let value = max / 3;
        let seed = sha256(b"privchain-bench-seed").0;
        let (witness, commitment) = RangeWitness::commit(value, max, &seed).unwrap();
        let proof = witness.prove(0, max / 2).unwrap();
        assert!(proof.verify(&commitment));

        group.bench_with_input(BenchmarkId::new("prove", bits), &bits, |b, _| {
            b.iter(|| witness.prove(black_box(0), black_box(max / 2)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify", bits), &bits, |b, _| {
            b.iter(|| proof.verify(black_box(&commitment)))
        });
    }
    group.finish();
}

/// End-to-end telemetry round: commit a reading on the ledger, prove the
/// range, submit the proof and earn the incentive credit.
fn bench_telemetry_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("supply_telemetry_round");
    group.sample_size(20);
    group.bench_function("commit_prove_submit_12bit", |b| {
        let (mut ledger, parties) = seeded_ledger("dev-cold");
        let sensor = parties[1];
        let mut round = 0u64;
        b.iter(|| {
            let seed = sha256(&round.to_le_bytes()).0;
            let (witness, idx) = ledger
                .commit_reading(sensor, "dev-cold", 1_000 + round % 7, 4_095, &seed)
                .unwrap();
            let proof = witness.prove(0, 2_048).unwrap();
            let ok = ledger.submit_range_proof(idx, &proof).unwrap();
            round += 1;
            assert!(ok);
            ok
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_custody_transfer,
    bench_custody_audit,
    bench_range_proofs,
    bench_telemetry_round
);
criterion_main!(benches);
