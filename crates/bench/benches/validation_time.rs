//! E5 — validation time (§6.1): Merkle proof verification vs full rescan,
//! flat tree vs ForensiBlock's distributed Merkle tree.

use blockprov_crypto::dmt::DistributedMerkleTree;
use blockprov_crypto::sha256::sha256;
use blockprov_crypto::MerkleTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_proof_vs_rescan(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation");
    for n in [1_000usize, 10_000, 100_000] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("record-{i}").into_bytes()).collect();
        let tree = MerkleTree::from_data(&leaves);
        let root = tree.root();
        let proof = tree.prove(n / 2).unwrap();
        let target = leaves[n / 2].clone();

        // O(log n) proof verification.
        group.bench_with_input(BenchmarkId::new("merkle_proof", n), &n, |b, _| {
            b.iter(|| proof.verify_data(black_box(&root), black_box(&target)));
        });
        // O(n) full rescan (rebuild the root from all records).
        group.bench_with_input(BenchmarkId::new("full_rescan", n), &n, |b, _| {
            b.iter(|| MerkleTree::from_data(black_box(&leaves)).root() == root);
        });
    }
    group.finish();
}

fn bench_flat_vs_distributed(c: &mut Criterion) {
    // 100 cases × 100 records each: proving one record under the forest
    // root touches only one segment; the flat tree mixes all cases.
    let mut group = c.benchmark_group("dmt_vs_flat_proof_gen");
    group.sample_size(20);
    let mut dmt = DistributedMerkleTree::new();
    let mut all: Vec<Vec<u8>> = Vec::new();
    for case in 0..100 {
        for rec in 0..100 {
            let data = format!("case-{case}/rec-{rec}").into_bytes();
            dmt.append_data(&format!("case-{case}"), &data);
            all.push(data);
        }
    }
    let _ = dmt.forest_root();
    group.bench_function("distributed_prove", |b| {
        b.iter(|| dmt.prove(black_box("case-42"), black_box(57)).unwrap());
    });

    let flat = MerkleTree::from_data(&all);
    group.bench_function("flat_prove", |b| {
        b.iter(|| flat.prove(black_box(4257)).unwrap());
    });

    // Verification cost comparison.
    let forest_root = dmt.forest_root();
    let compound = dmt.prove("case-42", 57).unwrap();
    let flat_proof = flat.prove(4257).unwrap();
    let flat_root = flat.root();
    group.bench_function("distributed_verify", |b| {
        b.iter(|| compound.verify(black_box(&forest_root), black_box(b"case-42/rec-57")));
    });
    group.bench_function("flat_verify", |b| {
        b.iter(|| flat_proof.verify_data(black_box(&flat_root), black_box(b"case-42/rec-57")));
    });
    group.finish();
}

fn bench_hash_chain_walk(c: &mut Criterion) {
    // Context for range proofs: cost of k chained hashes.
    c.bench_function("hash_chain_1000", |b| {
        b.iter(|| {
            let mut h = sha256(b"seed");
            for _ in 0..1000 {
                h = sha256(h.as_bytes());
            }
            h
        });
    });
}

criterion_group!(
    benches,
    bench_proof_vs_rescan,
    bench_flat_vs_distributed,
    bench_hash_chain_walk
);
criterion_main!(benches);
