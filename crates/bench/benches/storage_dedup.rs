//! E14 — content-addressed storage: chunking strategy vs deduplication
//! under versioned writes, and swarm fetch cost vs peer failures.
//!
//! The shape to reproduce (Hasan [33] / HealthBlock [1] architectures):
//! content-defined chunking keeps dedup high across edits where fixed
//! chunking collapses, and replicated fetch cost grows only as replicas
//! fail.

use blockprov_crypto::HmacDrbg;
use blockprov_storage::{add_file, cat, BlockStore, Chunker, Swarm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn sample(len: usize, seed: u64) -> Vec<u8> {
    let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
    let mut out = vec![0u8; len];
    drbg.fill_bytes(&mut out);
    out
}

fn bench_chunking(c: &mut Criterion) {
    let data = sample(1 << 20, 1); // 1 MiB
    let mut group = c.benchmark_group("chunking_1MiB");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (label, chunker) in [
        ("fixed-4k", Chunker::Fixed(4096)),
        ("cdc-4k", Chunker::ContentDefined(4096)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &chunker, |b, ch| {
            b.iter(|| ch.split(black_box(&data)).len());
        });
    }
    group.finish();
}

fn bench_add_file(c: &mut Criterion) {
    let data = sample(256 * 1024, 2);
    let mut group = c.benchmark_group("add_file_256KiB");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (label, chunker) in [
        ("fixed-4k", Chunker::Fixed(4096)),
        ("cdc-4k", Chunker::ContentDefined(4096)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &chunker, |b, ch| {
            b.iter(|| {
                let mut store = BlockStore::new();
                add_file(&mut store, black_box(&data), *ch, 16)
            });
        });
    }
    group.finish();
}

fn bench_cat(c: &mut Criterion) {
    let data = sample(256 * 1024, 3);
    let mut store = BlockStore::new();
    let root = add_file(&mut store, &data, Chunker::ContentDefined(4096), 16);
    let mut group = c.benchmark_group("cat_256KiB");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("local", |b| b.iter(|| cat(&store, black_box(&root)).unwrap()));
    let mut swarm = Swarm::new(8, 3);
    let swarm_root = add_file(&mut swarm, &data, Chunker::ContentDefined(4096), 16);
    group.bench_function("swarm_8_peers", |b| {
        b.iter(|| cat(&swarm, black_box(&swarm_root)).unwrap())
    });
    group.finish();
}

/// Dedup ratio across versioned writes — printed once (it is a measurement,
/// not a timing); the timing part measures the versioned-write itself.
fn bench_versioned_writes(c: &mut Criterion) {
    let base = sample(512 * 1024, 4);
    let mut edited = base.clone();
    edited.splice(100_000..100_000, b"EDIT".iter().copied());

    for (label, chunker) in [
        ("fixed-4k", Chunker::Fixed(4096)),
        ("cdc-4k", Chunker::ContentDefined(4096)),
    ] {
        let mut store = BlockStore::new();
        add_file(&mut store, &base, chunker, 16);
        let before = store.stats().unique_bytes;
        add_file(&mut store, &edited, chunker, 16);
        let added = store.stats().unique_bytes - before;
        println!(
            "E14 versioned-write [{label}]: second version added {added} bytes \
             ({:.1}% of file)",
            100.0 * added as f64 / edited.len() as f64
        );
    }

    let mut group = c.benchmark_group("versioned_write_512KiB");
    group.sample_size(10);
    group.bench_function("cdc-4k", |b| {
        b.iter(|| {
            let mut store = BlockStore::new();
            add_file(&mut store, black_box(&base), Chunker::ContentDefined(4096), 16);
            add_file(&mut store, black_box(&edited), Chunker::ContentDefined(4096), 16);
            store.stats().unique_bytes
        });
    });
    group.finish();
}

fn bench_fetch_under_failures(c: &mut Criterion) {
    let data = sample(64 * 1024, 5);
    let mut group = c.benchmark_group("swarm_fetch_64KiB_vs_failures");
    group.sample_size(20);
    for failures in [0usize, 1, 2] {
        let mut swarm = Swarm::new(8, 3);
        let root = add_file(&mut swarm, &data, Chunker::Fixed(4096), 16);
        for i in 0..failures {
            swarm.fail_peer(i);
        }
        // Only bench configurations where the content is still reachable.
        if cat(&swarm, &root).is_err() {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(failures),
            &failures,
            |b, _| b.iter(|| cat(&swarm, black_box(&root)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chunking,
    bench_add_file,
    bench_cat,
    bench_versioned_writes,
    bench_fetch_under_failures
);
criterion_main!(benches);
