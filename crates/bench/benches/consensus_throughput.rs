//! E1 — wall-clock cost of the consensus simulations themselves (the
//! virtual-time throughput table lives in the `tables` binary; this bench
//! tracks the simulator's real cost so regressions surface).

use blockprov_consensus::{run_throughput, ConsensusKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_sim");
    group.sample_size(10);
    for (label, kind) in [
        (
            "pow_d12",
            ConsensusKind::PoW {
                difficulty_bits: 12,
            },
        ),
        ("pos", ConsensusKind::PoS),
        ("poa", ConsensusKind::PoA),
        ("pbft", ConsensusKind::Pbft),
        ("raft", ConsensusKind::Raft),
    ] {
        group.bench_function(BenchmarkId::new(label, "n7_r50"), |b| {
            b.iter(|| run_throughput(black_box(kind), 7, 50, 11));
        });
    }
    group.finish();
}

fn bench_pbft_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft_network_size");
    group.sample_size(10);
    for n in [4usize, 10, 19] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_throughput(ConsensusKind::Pbft, n, 30, 13));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_pbft_scaling);
criterion_main!(benches);
