//! E2 — provenance retrieval latency: linear scan vs index vs repeated-query
//! cache, across graph sizes (§6.1 "retrieval latency of provenance").

use blockprov_bench::loaded_ledger;
use blockprov_provenance::query::{ProvQuery, QueryCache, QueryEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scan_vs_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let ledger = loaded_ledger(n, 100, 500);
        let graph = ledger.graph();
        let engine = QueryEngine::build_from(graph);
        let query = ProvQuery::BySubject("object-7".into());

        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| QueryEngine::execute_scan(black_box(graph), black_box(&query)));
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| engine.execute(black_box(graph), black_box(&query)));
        });
        group.bench_with_input(BenchmarkId::new("cached_repeat", n), &n, |b, _| {
            let mut cache = QueryCache::new(64);
            cache.execute(&engine, graph, &query);
            b.iter(|| cache.execute(&engine, black_box(graph), black_box(&query)));
        });
    }
    group.finish();
}

fn bench_lineage(c: &mut Criterion) {
    let ledger = loaded_ledger(10_000, 50, 500);
    let graph = ledger.graph();
    let engine = QueryEngine::build_from(graph);
    // Deep lineage: every subject accumulates ~200 chained records.
    let query = ProvQuery::Lineage("object-3".into());
    c.bench_function("lineage_10k_records", |b| {
        b.iter(|| engine.execute(black_box(graph), black_box(&query)));
    });
}

fn bench_batch(c: &mut Criterion) {
    let ledger = loaded_ledger(10_000, 100, 500);
    let graph = ledger.graph();
    let engine = QueryEngine::build_from(graph);
    let queries: Vec<ProvQuery> = (0..32)
        .map(|i| ProvQuery::BySubject(format!("object-{i}")))
        .collect();
    c.bench_function("batch_32_queries", |b| {
        b.iter(|| engine.execute_batch(black_box(graph), black_box(&queries)));
    });
}

criterion_group!(benches, bench_scan_vs_index, bench_lineage, bench_batch);
criterion_main!(benches);
