//! Ledger at scale — tiered storage vs everything-in-memory.
//!
//! The storage-overhead experiments (E3) presuppose provenance history far
//! larger than RAM. This harness appends ~100k blocks through both store
//! backends and reports:
//!
//! * one-shot: append throughput (blocks/s), resident decoded blocks, and
//!   on-disk segment layout for `MemStore` vs `TieredStore`;
//! * timed: canonical tx-lookup latency, hot (repeated id, cache hit) and
//!   uniform (sweep over all history, mostly cold-tier reads for the
//!   tiered chain).

use blockprov_ledger::chain::{Chain, ChainConfig};
use blockprov_ledger::segment::{SegmentConfig, TieredConfig, TieredStore};
use blockprov_ledger::store::MemStore;
use blockprov_ledger::tx::{AccountId, Transaction, TxId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

const SCALE_BLOCKS: u64 = 100_000;
const TX_EVERY: u64 = 50;
const HOT_CAPACITY: usize = 256;
const FINALITY_DEPTH: u64 = 64;

fn chain_config() -> ChainConfig {
    ChainConfig {
        finality_depth: Some(FINALITY_DEPTH),
        ..ChainConfig::default()
    }
}

fn tiered_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "blockprov-bench-ledger-scale-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiered_chain(dir: &std::path::Path) -> Chain {
    let store = TieredStore::open(
        dir,
        TieredConfig {
            segment: SegmentConfig {
                segment_bytes: 8 * 1024 * 1024,
            },
            hot_capacity: HOT_CAPACITY,
        },
    )
    .expect("open tiered store");
    Chain::with_store(Box::new(store), chain_config())
}

/// Append `blocks` empty-ish blocks (one indexed tx every `TX_EVERY`),
/// returning the sample tx ids and the elapsed append time.
fn grow(chain: &mut Chain, blocks: u64) -> (Vec<TxId>, std::time::Duration) {
    let sealer = AccountId::from_name("sealer");
    let mut ids = Vec::new();
    let start = Instant::now();
    for i in 0..blocks {
        let txs = if i % TX_EVERY == 0 {
            let tx = Transaction::new(AccountId::from_name("auditor"), i, i, 7, vec![0xAA; 24]);
            ids.push(tx.id());
            vec![tx]
        } else {
            Vec::new()
        };
        let block = chain.assemble_next(i + 1, sealer, 0, txs);
        chain.append(block).expect("append");
    }
    (ids, start.elapsed())
}

/// One-shot 100k-block append measurement for both backends (a measurement,
/// not a timing loop — printed once, `storage_dedup` style).
fn report_append_throughput() -> (Chain, Vec<TxId>, Chain, Vec<TxId>, std::path::PathBuf) {
    let mut mem = Chain::with_store(Box::new(MemStore::new()), chain_config());
    let (mem_ids, mem_t) = grow(&mut mem, SCALE_BLOCKS);
    println!(
        "ledger_scale append [MemStore]: {SCALE_BLOCKS} blocks in {:.2?} \
         ({:.0} blocks/s), resident blocks {}",
        mem_t,
        SCALE_BLOCKS as f64 / mem_t.as_secs_f64(),
        mem.resident_blocks(),
    );

    let dir = tiered_dir("grow");
    let mut tiered = tiered_chain(&dir);
    let (tiered_ids, tiered_t) = grow(&mut tiered, SCALE_BLOCKS);
    println!(
        "ledger_scale append [TieredStore]: {SCALE_BLOCKS} blocks in {:.2?} \
         ({:.0} blocks/s), resident blocks {} (hot cap {HOT_CAPACITY}), \
         {} bytes cold, finalized height {}",
        tiered_t,
        SCALE_BLOCKS as f64 / tiered_t.as_secs_f64(),
        tiered.resident_blocks(),
        tiered.stored_bytes(),
        tiered.finalized_height(),
    );
    assert!(
        tiered.resident_blocks() <= HOT_CAPACITY,
        "tiered chain must stay within its hot-set bound"
    );
    (mem, mem_ids, tiered, tiered_ids, dir)
}

fn bench_ledger_scale(c: &mut Criterion) {
    let (mem, mem_ids, tiered, tiered_ids, dir) = report_append_throughput();

    let mut group = c.benchmark_group("tx_lookup_100k_chain");
    group.sample_size(20);
    // Hot lookup: the same recent transaction over and over — the tiered
    // store serves this from its LRU hot set.
    for (label, chain, ids) in [
        ("mem", &mem, &mem_ids),
        ("tiered", &tiered, &tiered_ids),
    ] {
        let hot_id = *ids.last().expect("sample txs");
        group.bench_with_input(BenchmarkId::new("hot", label), &hot_id, |b, id| {
            b.iter(|| chain.get_tx(black_box(id)).expect("hot tx"))
        });
    }
    // Uniform lookup: sweep across the whole history — for the tiered
    // store most probes miss the hot set and hit the cold segment tier.
    for (label, chain, ids) in [
        ("mem", &mem, &mem_ids),
        ("tiered", &tiered, &tiered_ids),
    ] {
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::new("uniform", label), &(), |b, _| {
            b.iter(|| {
                let id = &ids[cursor % ids.len()];
                cursor = cursor.wrapping_add(1);
                chain.get_tx(black_box(id)).expect("indexed tx")
            })
        });
    }
    group.finish();

    drop(tiered);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_ledger_scale);
criterion_main!(benches);
