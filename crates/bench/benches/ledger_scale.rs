//! Ledger at scale — tiered storage vs everything-in-memory.
//!
//! The storage-overhead experiments (E3) presuppose provenance history far
//! larger than RAM. This harness appends ~100k blocks through both store
//! backends and reports:
//!
//! * one-shot: append throughput (blocks/s), resident decoded blocks, and
//!   on-disk segment layout for `MemStore` vs `TieredStore` vs
//!   `TieredStore + TxIndex` (the spilled-index configuration, where the
//!   mutable in-memory index covers only the non-finalized suffix);
//! * timed: canonical tx-lookup latency — hot (repeated id, cache hit),
//!   uniform (sweep over all history, mostly cold-tier reads), and the
//!   spilled-index point/secondary query path (warm page cache vs sweep);
//! * one-shot: segment compaction on a fork-heavy history — reclaimed
//!   bytes and full canonical-scan wall clock before/after `compact`;
//! * one-shot: cold-start sweep — snapshot fast-start wall clock at
//!   10k/50k/100k-block histories (`cold_start/*`), which the manifest's
//!   height fences should keep flat as history grows.

use blockprov_ledger::block::Block;
use blockprov_ledger::chain::{Chain, ChainConfig};
use blockprov_ledger::index::{TxIndex, TxIndexConfig};
use blockprov_ledger::meta::{MetaConfig, MetaStore};
use blockprov_ledger::segment::{SegmentConfig, TieredConfig, TieredStore};
use blockprov_ledger::store::{BlockStore, MemStore};
use blockprov_ledger::tx::{AccountId, Transaction, TxId};
use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

const SCALE_BLOCKS: u64 = 100_000;
const TX_EVERY: u64 = 50;
const HOT_CAPACITY: usize = 256;
const FINALITY_DEPTH: u64 = 64;

fn chain_config() -> ChainConfig {
    ChainConfig {
        finality_depth: Some(FINALITY_DEPTH),
        ..ChainConfig::default()
    }
}

fn tiered_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "blockprov-bench-ledger-scale-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiered_chain(dir: &std::path::Path) -> Chain {
    let store = TieredStore::open(
        dir,
        TieredConfig {
            segment: SegmentConfig {
                segment_bytes: 8 * 1024 * 1024,
            },
            hot_capacity: HOT_CAPACITY,
        },
    )
    .expect("open tiered store");
    Chain::with_store(Box::new(store), chain_config())
}

/// Append `blocks` empty-ish blocks (one indexed tx every `TX_EVERY`),
/// returning the sample tx ids and the elapsed append time.
fn grow(chain: &mut Chain, blocks: u64) -> (Vec<TxId>, std::time::Duration) {
    let sealer = AccountId::from_name("sealer");
    let mut ids = Vec::new();
    let start = Instant::now();
    for i in 0..blocks {
        let txs = if i % TX_EVERY == 0 {
            let tx = Transaction::new(AccountId::from_name("auditor"), i, i, 7, vec![0xAA; 24]);
            ids.push(tx.id());
            vec![tx]
        } else {
            Vec::new()
        };
        let block = chain.assemble_next(i + 1, sealer, 0, txs);
        chain.append(block).expect("append");
    }
    (ids, start.elapsed())
}

fn spilled_chain(dir: &std::path::Path) -> Chain {
    let store = TieredStore::open(
        dir,
        TieredConfig {
            segment: SegmentConfig {
                segment_bytes: 8 * 1024 * 1024,
            },
            hot_capacity: HOT_CAPACITY,
        },
    )
    .expect("open tiered store");
    // Small pages and a page cache well below the page count, so the cold
    // sweep below actually exercises page reads rather than pure cache hits.
    let index = TxIndex::open(
        dir.join("txindex"),
        TxIndexConfig {
            partitions: 16,
            page_entries: 64,
            cached_pages: 8,
            ..TxIndexConfig::default()
        },
    )
    .expect("open tx index");
    Chain::with_store_and_index(Box::new(store), index, chain_config())
}

fn meta_tier_store(dir: &std::path::Path) -> Box<dyn BlockStore> {
    Box::new(
        TieredStore::open(
            dir.join("blocks"),
            TieredConfig {
                segment: SegmentConfig {
                    segment_bytes: 8 * 1024 * 1024,
                },
                hot_capacity: HOT_CAPACITY,
            },
        )
        .expect("open tiered store"),
    )
}

fn meta_tier_index(dir: &std::path::Path) -> TxIndex {
    TxIndex::open(dir.join("txindex"), TxIndexConfig::default()).expect("open tx index")
}

fn meta_tier_meta(dir: &std::path::Path) -> MetaStore {
    MetaStore::open(dir.join("meta"), MetaConfig::default()).expect("open meta store")
}

/// The fourth backend: all three durable tiers (blocks, tx index, chain
/// metadata) — the bounded-resident-memory configuration.
fn meta_chain(dir: &std::path::Path) -> Chain {
    Chain::with_tiers(
        meta_tier_store(dir),
        Some(meta_tier_index(dir)),
        meta_tier_meta(dir),
        chain_config(),
    )
}

/// Resident per-block metadata entries/bytes for one backend, one line.
fn report_resident_metadata(label: &str, chain: &Chain) {
    let r = chain.resident_metadata();
    record_metric(
        &format!("resident_metadata/{label}"),
        r.approx_bytes() as f64,
        "bytes",
    );
    println!(
        "ledger_scale resident metadata [{label}]: {} entries ≈ {} bytes \
         (meta {} / canonical {} / nonce {}+{} / undo {} / at_height {})",
        r.total(),
        r.approx_bytes(),
        r.meta,
        r.canonical,
        r.next_nonce,
        r.nonce_floor,
        r.undo,
        r.at_height,
    );
}

/// One-shot cold-start measurement over the meta-tier directory:
/// replay-from-snapshot (fast start) vs full replay of the same history.
fn report_cold_start(dir: &std::path::Path) {
    let t = Instant::now();
    let fast = Chain::replay_with_tiers(
        meta_tier_store(dir),
        Some(meta_tier_index(dir)),
        meta_tier_meta(dir),
        chain_config(),
    )
    .expect("fast start");
    let fast_t = t.elapsed();
    let fast_appended = fast.appended_blocks();
    let tip = fast.tip();
    drop(fast);

    let t = Instant::now();
    let full = Chain::replay_with_index(meta_tier_store(dir), meta_tier_index(dir), chain_config())
        .expect("full replay");
    let full_t = t.elapsed();
    assert_eq!(full.tip(), tip, "both cold starts must agree on the tip");
    println!(
        "ledger_scale cold start @ {SCALE_BLOCKS} blocks: snapshot fast-start {:.2?} \
         (re-absorbed {} blocks) vs full replay {:.2?} ({} blocks) — {:.1}x",
        fast_t,
        fast_appended,
        full_t,
        full.appended_blocks(),
        full_t.as_secs_f64() / fast_t.as_secs_f64().max(1e-9),
    );
}

/// One-shot 100k-block append measurement for all four backends (a
/// measurement, not a timing loop — printed once, `storage_dedup` style).
#[allow(clippy::type_complexity)]
fn report_append_throughput() -> (
    Chain,
    Vec<TxId>,
    Chain,
    Vec<TxId>,
    Chain,
    Vec<TxId>,
    Vec<std::path::PathBuf>,
) {
    let mut mem = Chain::with_store(Box::new(MemStore::new()), chain_config());
    let (mem_ids, mem_t) = grow(&mut mem, SCALE_BLOCKS);
    record_metric(
        "append/MemStore",
        SCALE_BLOCKS as f64 / mem_t.as_secs_f64(),
        "blk/s",
    );
    println!(
        "ledger_scale append [MemStore]: {SCALE_BLOCKS} blocks in {:.2?} \
         ({:.0} blocks/s), resident blocks {}",
        mem_t,
        SCALE_BLOCKS as f64 / mem_t.as_secs_f64(),
        mem.resident_blocks(),
    );

    let dir = tiered_dir("grow");
    let mut tiered = tiered_chain(&dir);
    let (tiered_ids, tiered_t) = grow(&mut tiered, SCALE_BLOCKS);
    record_metric(
        "append/TieredStore",
        SCALE_BLOCKS as f64 / tiered_t.as_secs_f64(),
        "blk/s",
    );
    println!(
        "ledger_scale append [TieredStore]: {SCALE_BLOCKS} blocks in {:.2?} \
         ({:.0} blocks/s), resident blocks {} (hot cap {HOT_CAPACITY}), \
         {} bytes cold, finalized height {}",
        tiered_t,
        SCALE_BLOCKS as f64 / tiered_t.as_secs_f64(),
        tiered.resident_blocks(),
        tiered.stored_bytes(),
        tiered.finalized_height(),
    );
    assert!(
        tiered.resident_blocks() <= HOT_CAPACITY,
        "tiered chain must stay within its hot-set bound"
    );

    let sdir = tiered_dir("spilled");
    let mut spilled = spilled_chain(&sdir);
    let (spilled_ids, spilled_t) = grow(&mut spilled, SCALE_BLOCKS);
    // Cut the staged tails into durable pages so the lookup benches below
    // measure the page path, not the in-memory staging buffer.
    spilled.sync_index().expect("sync index");
    let ix = spilled.tx_index().expect("index attached");
    record_metric(
        "append/Tiered+TxIndex",
        SCALE_BLOCKS as f64 / spilled_t.as_secs_f64(),
        "blk/s",
    );
    println!(
        "ledger_scale append [Tiered+TxIndex]: {SCALE_BLOCKS} blocks in {:.2?} \
         ({:.0} blocks/s), resident index entries {} (history {}), \
         {} spilled entries across {} pages / {} partitions, {} index bytes",
        spilled_t,
        SCALE_BLOCKS as f64 / spilled_t.as_secs_f64(),
        spilled.resident_index_entries(),
        spilled_ids.len(),
        ix.entries(),
        ix.page_count(),
        ix.partition_count(),
        ix.stored_bytes(),
    );
    // Fourth backend: + metadata tier (height map, nonce floor, snapshot
    // per finality advance). Reports the bounded-residency numbers and the
    // cold-start comparison, then drops — the lookup loops below already
    // cover the shared two-tier query paths.
    let mdir = tiered_dir("meta");
    let mut metad = meta_chain(&mdir);
    let (meta_ids, meta_t) = grow(&mut metad, SCALE_BLOCKS);
    let _ = meta_ids;
    record_metric(
        "append/Tiered+TxIndex+Meta",
        SCALE_BLOCKS as f64 / meta_t.as_secs_f64(),
        "blk/s",
    );
    println!(
        "ledger_scale append [Tiered+TxIndex+Meta]: {SCALE_BLOCKS} blocks in {:.2?} \
         ({:.0} blocks/s), height-map {} pages / {} bytes, snapshot every {} advances",
        meta_t,
        SCALE_BLOCKS as f64 / meta_t.as_secs_f64(),
        metad.meta_tier().expect("meta tier").height_map().page_count(),
        metad.meta_tier().expect("meta tier").height_map().stored_bytes(),
        metad.meta_tier().expect("meta tier").config().snapshot_interval,
    );
    report_resident_metadata("MemStore", &mem);
    report_resident_metadata("TieredStore", &tiered);
    report_resident_metadata("Tiered+TxIndex", &spilled);
    report_resident_metadata("Tiered+TxIndex+Meta", &metad);
    metad.sync_meta().expect("sync meta");
    drop(metad);
    report_cold_start(&mdir);

    (mem, mem_ids, tiered, tiered_ids, spilled, spilled_ids, vec![dir, sdir, mdir])
}

/// One-shot cold-start sweep: snapshot fast-start wall clock at several
/// history sizes. With the manifest's per-segment height fences, fast
/// start skips every sealed segment wholly below the checkpoint and reads
/// O(finality window), so the curve should stay flat as history grows —
/// `cold_start/100k` within noise of `cold_start/10k` is the acceptance
/// gate. `COLD_START_BLOCKS` caps the largest size (CI smoke runs set
/// 10000 and get just the first point).
fn report_cold_start_sweep() {
    let cap: u64 = std::env::var("COLD_START_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SCALE_BLOCKS);
    for blocks in [10_000u64, 50_000, 100_000] {
        if blocks > cap {
            continue;
        }
        let dir = tiered_dir(&format!("coldstart-{blocks}"));
        let mut chain = meta_chain(&dir);
        let _ = grow(&mut chain, blocks);
        chain.sync_meta().expect("sync meta");
        drop(chain);
        let t = Instant::now();
        let fast = Chain::replay_with_tiers(
            meta_tier_store(&dir),
            Some(meta_tier_index(&dir)),
            meta_tier_meta(&dir),
            chain_config(),
        )
        .expect("fast start");
        let dt = t.elapsed();
        record_metric(
            &format!("cold_start/{}k", blocks / 1_000),
            dt.as_secs_f64() * 1_000.0,
            "ms",
        );
        println!(
            "ledger_scale cold start sweep [{blocks} blocks]: fast-start {dt:.2?}, \
             re-absorbed {} blocks, tip height {}",
            fast.appended_blocks(),
            fast.height(),
        );
        drop(fast);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One-shot ingest-pipeline scaling curve: blocks/s of `append_batch` over
/// the all-tiers backend at 1/2/4/8 stateless-stage worker threads.
///
/// The stream is tx-heavy (24 txs per block) so the stateless stage —
/// header hashing, per-tx id derivation, Merkle recomputation — carries
/// real work to fan out; the serialized commit section is identical at
/// every thread count, and so is the resulting chain (asserted on the
/// tip). `INGEST_SCALE_BLOCKS` overrides the stream length (CI smoke runs
/// use a short one).
fn report_ingest_scaling() {
    const BATCH: usize = 512;
    const TXS_PER_BLOCK: u64 = 24;
    let blocks: u64 = std::env::var("INGEST_SCALE_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let sealer = AccountId::from_name("sealer");
    // Pre-assemble the whole linear stream once; every thread count
    // ingests the identical blocks.
    let mut parent = Chain::genesis_block().hash();
    let stream: Vec<Block> = (0..blocks)
        .map(|i| {
            let txs: Vec<Transaction> = (0..TXS_PER_BLOCK)
                .map(|j| {
                    Transaction::new(
                        AccountId::from_name("auditor"),
                        i * TXS_PER_BLOCK + j,
                        i + 1,
                        7,
                        vec![0xAB; 24],
                    )
                })
                .collect();
            let b = Block::assemble(i + 1, parent, i + 1, sealer, 0, txs);
            parent = b.hash();
            b
        })
        .collect();
    let mut tips = Vec::new();
    let mut single_thread_rate = None;
    for threads in [1usize, 2, 4, 8] {
        let dir = tiered_dir(&format!("ingest-{threads}"));
        let config = ChainConfig {
            ingest_threads: threads,
            ..chain_config()
        };
        let mut chain = Chain::with_tiers(
            meta_tier_store(&dir),
            Some(meta_tier_index(&dir)),
            meta_tier_meta(&dir),
            config,
        );
        let t = Instant::now();
        for batch in stream.chunks(BATCH) {
            chain.append_batch(batch.to_vec()).expect("batch append");
        }
        let dt = t.elapsed();
        let rate = blocks as f64 / dt.as_secs_f64();
        let speedup = match single_thread_rate {
            None => {
                single_thread_rate = Some(rate);
                1.0
            }
            Some(base) => rate / base,
        };
        record_metric(
            &format!("ingest_scaling/all-tiers/threads/{threads}"),
            rate,
            "blk/s",
        );
        println!(
            "ledger_scale ingest scaling [all tiers, {threads} threads]: {blocks} blocks \
             x {TXS_PER_BLOCK} txs in {dt:.2?} ({rate:.0} blocks/s, {speedup:.2}x vs 1 thread)",
        );
        tips.push(chain.tip());
        drop(chain);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        tips.windows(2).all(|w| w[0] == w[1]),
        "ingest pipeline must produce an identical chain at every thread count"
    );
}

/// One-shot group-commit sweep: blocks/s of `append_batch` over the
/// all-tiers backend at batch sizes 1, 16 and 256, single ingest thread.
///
/// Size 1 degenerates to one durable flush per block — the pre-group-commit
/// write path. Larger batches coalesce the segment write, TxIndex spill,
/// nonce-floor append and snapshot cadence into one flush per batch, so the
/// curve isolates exactly what group commit buys at the commit stage
/// (stage-1 fan-out is pinned to one thread; `ingest_scaling` covers that
/// axis). `BATCH_COMMIT_BLOCKS` overrides the stream length (CI smoke runs
/// use a short one).
fn report_batch_commit() {
    const TXS_PER_BLOCK: u64 = 4;
    let blocks: u64 = std::env::var("BATCH_COMMIT_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let sealer = AccountId::from_name("sealer");
    let mut parent = Chain::genesis_block().hash();
    let stream: Vec<Block> = (0..blocks)
        .map(|i| {
            let txs: Vec<Transaction> = (0..TXS_PER_BLOCK)
                .map(|j| {
                    Transaction::new(
                        AccountId::from_name("auditor"),
                        i * TXS_PER_BLOCK + j,
                        i + 1,
                        7,
                        vec![0xCD; 24],
                    )
                })
                .collect();
            let b = Block::assemble(i + 1, parent, i + 1, sealer, 0, txs);
            parent = b.hash();
            b
        })
        .collect();
    let mut tips = Vec::new();
    let mut size_one_rate = None;
    for size in [1usize, 16, 256] {
        let dir = tiered_dir(&format!("batch-commit-{size}"));
        let config = ChainConfig {
            ingest_threads: 1,
            ..chain_config()
        };
        let mut chain = Chain::with_tiers(
            meta_tier_store(&dir),
            Some(meta_tier_index(&dir)),
            meta_tier_meta(&dir),
            config,
        );
        let t = Instant::now();
        for batch in stream.chunks(size) {
            chain.append_batch(batch.to_vec()).expect("batch append");
        }
        let dt = t.elapsed();
        let rate = blocks as f64 / dt.as_secs_f64();
        let speedup = match size_one_rate {
            None => {
                size_one_rate = Some(rate);
                1.0
            }
            Some(base) => rate / base,
        };
        record_metric(&format!("batch_commit/{size}"), rate, "blk/s");
        println!(
            "ledger_scale batch commit [all tiers, batch {size}]: {blocks} blocks \
             x {TXS_PER_BLOCK} txs in {dt:.2?} ({rate:.0} blocks/s, {speedup:.2}x vs batch 1)",
        );
        tips.push(chain.tip());
        drop(chain);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        tips.windows(2).all(|w| w[0] == w[1]),
        "group commit must produce an identical chain at every batch size"
    );
}

/// One-shot compaction measurement: a fork-heavy history over tiny
/// segments, scan wall clock before and after reclaiming the stale forks.
fn report_compaction() {
    const FORKY_BLOCKS: u64 = 20_000;
    let dir = tiered_dir("compact");
    let store = TieredStore::open(
        &dir,
        TieredConfig {
            segment: SegmentConfig {
                segment_bytes: 256 * 1024,
            },
            hot_capacity: HOT_CAPACITY,
        },
    )
    .expect("open tiered store");
    let mut chain = Chain::with_store(Box::new(store), chain_config());
    let sealer = AccountId::from_name("sealer");
    for i in 0..FORKY_BLOCKS {
        let parent = chain.tip();
        let height = chain.height() + 1;
        let canon = chain.assemble_next(i + 1, sealer, 0, Vec::new());
        chain.append(canon).expect("append");
        // Every 10th height also gets an equal-work rival that loses the
        // tie and rots in the cold tier until compaction.
        if i % 10 == 0 {
            let rival = Block::assemble(
                height,
                parent,
                i + 1,
                AccountId::from_name("rival"),
                0,
                vec![Transaction::new(
                    AccountId::from_name("r"),
                    i,
                    i,
                    9,
                    vec![0xEE; 96],
                )],
            );
            chain.append(rival).expect("append rival");
        }
    }
    // Best of two sweeps: the first warms OS/file caches, the second is
    // the steady-state number.
    let sweep = |chain: &Chain| {
        let mut best = std::time::Duration::MAX;
        let mut seen = 0u64;
        for _ in 0..2 {
            let t = Instant::now();
            seen = 0;
            for h in 0..=chain.height() {
                if chain.block_at(h).is_some() {
                    seen += 1;
                }
            }
            best = best.min(t.elapsed());
        }
        (seen, best)
    };
    let bytes_before = chain.stored_bytes();
    let (seen_before, scan_before) = sweep(&chain);
    let t = Instant::now();
    let stats = chain.compact().expect("compact");
    let compact_t = t.elapsed();
    let (seen_after, scan_after) = sweep(&chain);
    assert_eq!(seen_before, seen_after, "canonical blocks must survive");
    println!(
        "ledger_scale compaction: {FORKY_BLOCKS} blocks + {} forks, compact in {:.2?}: \
         dropped {} blocks, reclaimed {} of {} bytes ({} segments rewritten); \
         full canonical scan {:.2?} → {:.2?}",
        FORKY_BLOCKS / 10,
        compact_t,
        stats.blocks_dropped,
        stats.bytes_reclaimed,
        bytes_before,
        stats.segments_rewritten,
        scan_before,
        scan_after,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_ledger_scale(c: &mut Criterion) {
    let (mem, mem_ids, tiered, tiered_ids, spilled, spilled_ids, dirs) =
        report_append_throughput();

    let mut group = c.benchmark_group("tx_lookup_100k_chain");
    group.sample_size(20);
    // Hot lookup: the same recent transaction over and over — the tiered
    // store serves this from its LRU hot set.
    for (label, chain, ids) in [
        ("mem", &mem, &mem_ids),
        ("tiered", &tiered, &tiered_ids),
        ("spilled", &spilled, &spilled_ids),
    ] {
        let hot_id = *ids.last().expect("sample txs");
        group.bench_with_input(BenchmarkId::new("hot", label), &hot_id, |b, id| {
            b.iter(|| chain.get_tx(black_box(id)).expect("hot tx"))
        });
    }
    // Uniform lookup: sweep across the whole history — for the tiered
    // store most probes miss the hot set and hit the cold segment tier.
    for (label, chain, ids) in [
        ("mem", &mem, &mem_ids),
        ("tiered", &tiered, &tiered_ids),
        ("spilled", &spilled, &spilled_ids),
    ] {
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::new("uniform", label), &(), |b, _| {
            b.iter(|| {
                let id = &ids[cursor % ids.len()];
                cursor = cursor.wrapping_add(1);
                chain.get_tx(black_box(id)).expect("indexed tx")
            })
        });
    }
    group.finish();

    // The spilled-index *point lookup* path in isolation (no block fetch):
    // hot = one long-finalized id, its page pinned in the LRU page cache;
    // cold = sweep over all finalized ids, page cache mostly missing.
    let mut group = c.benchmark_group("spilled_index_lookup");
    group.sample_size(20);
    let oldest = spilled_ids.first().expect("sample txs");
    group.bench_with_input(BenchmarkId::new("hot", "page-cached"), oldest, |b, id| {
        b.iter(|| spilled.tx_by_id(black_box(id)).expect("finalized tx"))
    });
    let mut cursor = 0usize;
    group.bench_with_input(BenchmarkId::new("cold", "page-sweep"), &(), |b, _| {
        b.iter(|| {
            let id = &spilled_ids[cursor % spilled_ids.len()];
            cursor = cursor.wrapping_add(1);
            spilled.tx_by_id(black_box(id)).expect("finalized tx")
        })
    });
    // Secondary full-history query across both tiers.
    let auditor = AccountId::from_name("auditor");
    group.bench_with_input(
        BenchmarkId::new("by_author", "full-history"),
        &auditor,
        |b, author| b.iter(|| spilled.txs_by_author(black_box(author)).len()),
    );
    group.finish();
    let (hits, misses) = spilled.tx_index().expect("index").cache_stats();
    println!("ledger_scale spilled-index page cache: {hits} hits / {misses} misses");

    report_cold_start_sweep();
    report_ingest_scaling();
    report_batch_commit();
    report_compaction();

    drop(tiered);
    drop(spilled);
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench_ledger_scale);
criterion_main!(benches);
