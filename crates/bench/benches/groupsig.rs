//! E16 — group-signature costs (the Abouyoussef [3] anonymity primitive):
//! setup vs group size, anonymous sign, public verify, manager open, and
//! signature size.

use blockprov_crypto::groupsig::{verify_group, GroupManager};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupsig_setup");
    group.sample_size(10);
    for members in [4usize, 16, 64] {
        let names: Vec<String> = (0..members).map(|i| format!("m{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        group.bench_with_input(BenchmarkId::from_parameter(members), &members, |b, _| {
            b.iter(|| GroupManager::setup(black_box(b"bench-group"), &refs, 4).unwrap());
        });
    }
    group.finish();
}

fn bench_sign_verify_open(c: &mut Criterion) {
    let names: Vec<String> = (0..16).map(|i| format!("m{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let (mgr, mut members) = GroupManager::setup(b"bench-group", &refs, 64).unwrap();
    let pk = mgr.group_public_key();

    let mut group = c.benchmark_group("groupsig_ops");
    group.sample_size(20);
    group.bench_function("sign", |b| {
        b.iter(|| {
            members[0]
                .sign(black_box(b"anonymous symptom report"))
                .expect("credentials sized for the bench")
        });
    });

    let (mgr2, mut members2) = GroupManager::setup(b"bench-group-2", &refs, 4).unwrap();
    let pk2 = mgr2.group_public_key();
    let sig = members2[3].sign(b"fixed message").unwrap();
    println!("E16 group signature size: {} bytes", sig.encoded_len());
    group.bench_function("verify", |b| {
        b.iter(|| verify_group(black_box(&pk2), b"fixed message", black_box(&sig)));
    });
    group.bench_function("open", |b| {
        b.iter(|| mgr2.open(b"fixed message", black_box(&sig)).unwrap());
    });
    let _ = pk;
    group.finish();
}

criterion_group!(benches, bench_setup, bench_sign_verify_open);
criterion_main!(benches);
