//! F3 — per-operation cost of the four Figure 3 capture pathways.

use blockprov_ledger::tx::AccountId;
use blockprov_provenance::capture::{CapturePathway, CapturePipeline, DataOperation};
use blockprov_provenance::model::{Action, Domain};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn op(i: u64) -> DataOperation {
    DataOperation {
        user: AccountId::from_name("user"),
        object: format!("file-{}", i % 32),
        action: Action::Update,
        timestamp_ms: i,
        content: vec![(i % 251) as u8; 128],
    }
}

fn bench_pathways(c: &mut Criterion) {
    let mut group = c.benchmark_group("capture");
    let pathways = [
        ("user_direct", CapturePathway::UserDirect),
        ("store_emitted", CapturePathway::DataStoreEmitted),
        (
            "third_party_central",
            CapturePathway::ThirdParty {
                decentralized: false,
            },
        ),
        (
            "third_party_quorum",
            CapturePathway::ThirdParty {
                decentralized: true,
            },
        ),
        ("multi_source_4", CapturePathway::MultiSource { sources: 4 }),
    ];
    for (label, pathway) in pathways {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut pipeline = CapturePipeline::new(pathway, Domain::Cloud);
            pipeline.authenticate(AccountId::from_name("user"));
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                pipeline.capture(black_box(&op(i))).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_pseudonymized_capture(c: &mut Criterion) {
    c.bench_function("capture_with_pseudonyms", |b| {
        let mut pipeline = CapturePipeline::new(CapturePathway::UserDirect, Domain::Cloud)
            .with_pseudonyms(blockprov_crypto::sha256::sha256(b"epoch"));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pipeline.capture(black_box(&op(i))).unwrap()
        });
    });
}

criterion_group!(benches, bench_pathways, bench_pseudonymized_capture);
criterion_main!(benches);
