//! E11 — PrivChain-style range proofs: commit/prove/verify cost and proof
//! size versus domain size (hash-chain construction is linear in the range).

use blockprov_crypto::rangeproof::RangeWitness;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_commit");
    for max in [255u64, 4_095, 65_535] {
        group.bench_with_input(BenchmarkId::from_parameter(max), &max, |b, &max| {
            b.iter(|| RangeWitness::commit(black_box(max / 2), max, &[7u8; 32]).unwrap());
        });
    }
    group.finish();
}

fn bench_prove_and_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_prove_verify");
    for max in [255u64, 4_095, 65_535] {
        let (witness, commitment) = RangeWitness::commit(max / 2, max, &[9u8; 32]).unwrap();
        let (lo, hi) = (max / 4, 3 * max / 4);
        group.bench_with_input(BenchmarkId::new("prove", max), &max, |b, _| {
            b.iter(|| witness.prove(black_box(lo), black_box(hi)).unwrap());
        });
        let proof = witness.prove(lo, hi).unwrap();
        group.bench_with_input(BenchmarkId::new("verify", max), &max, |b, _| {
            b.iter(|| proof.verify(black_box(&commitment)));
        });
    }
    group.finish();
}

fn bench_cold_chain_scenario(c: &mut Criterion) {
    // The supply-chain shape: decicelsius domain [0, 400], window [20, 80].
    let (witness, commitment) = RangeWitness::commit(55, 400, &[3u8; 32]).unwrap();
    c.bench_function("cold_chain_prove_2_to_8C", |b| {
        b.iter(|| witness.prove(20, 80).unwrap());
    });
    let proof = witness.prove(20, 80).unwrap();
    c.bench_function("cold_chain_verify_2_to_8C", |b| {
        b.iter(|| proof.verify(black_box(&commitment)));
    });
}

criterion_group!(
    benches,
    bench_commit,
    bench_prove_and_verify,
    bench_cold_chain_scenario
);
criterion_main!(benches);
