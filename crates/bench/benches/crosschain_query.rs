//! E6 — real execution cost of cross-chain provenance queries: Vassago's
//! dependency-guided trace (with proof verification) vs hop count.

use blockprov_crosschain::VassagoNetwork;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn network_with_hops(hops: usize) -> VassagoNetwork {
    let mut net = VassagoNetwork::new(hops);
    net.create_asset("asset", 0).unwrap();
    for hop in 1..hops {
        net.transfer_asset("asset", hop).unwrap();
    }
    net
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("vassago_trace");
    group.sample_size(20);
    for hops in [2usize, 4, 8, 16] {
        let net = network_with_hops(hops);
        group.bench_with_input(BenchmarkId::from_parameter(hops), &net, |b, net| {
            b.iter(|| net.trace_asset(black_box("asset")).unwrap());
        });
    }
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    c.bench_function("cross_chain_transfer", |b| {
        b.iter_batched(
            || {
                let mut net = VassagoNetwork::new(2);
                net.create_asset("x", 0).unwrap();
                net
            },
            |mut net| net.transfer_asset(black_box("x"), 1).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_trace, bench_transfer);
criterion_main!(benches);
