//! E15 — EO DAG traceability (Zhang [87]): DAG-guided lineage walk vs the
//! full-ledger scan baseline, swept over ledger size and lineage depth.
//!
//! Expected shape: DAG cost tracks lineage *depth* only; scan cost tracks
//! hops × ledger size, so the gap widens linearly with unrelated traffic.

use blockprov_sciwork::eo::EoNetwork;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn network_with(noise: usize, depth: usize) -> (EoNetwork, blockprov_sciwork::eo::EoTxId) {
    let mut net = EoNetwork::new(4, 2);
    for i in 0..noise {
        net.ingest("dc-noise", &format!("noise-{i}"), &[(i % 251) as u8]).unwrap();
    }
    let head = net.synthetic_pipeline("dc", "scene", depth, 2048).unwrap();
    (net, head)
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("eo_trace_depth8");
    group.sample_size(20);
    for noise in [100usize, 1_000, 5_000] {
        let (net, head) = network_with(noise, 8);
        group.bench_with_input(BenchmarkId::new("dag", noise), &noise, |b, _| {
            b.iter(|| net.trace(black_box(head)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("scan", noise), &noise, |b, _| {
            b.iter(|| net.trace_by_scan(black_box(head)).unwrap());
        });
    }
    group.finish();

    // Print the records-examined shape once for EXPERIMENTS.md.
    for noise in [100usize, 1_000, 5_000] {
        let (net, head) = network_with(noise, 8);
        let dag = net.trace(head).unwrap();
        let scan = net.trace_by_scan(head).unwrap();
        println!(
            "E15 ledger={} → records examined: dag={} scan={}",
            noise + 9,
            dag.records_examined,
            scan.records_examined
        );
    }
}

fn bench_depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("eo_trace_noise1000");
    group.sample_size(20);
    for depth in [2usize, 8, 32] {
        let (net, head) = network_with(1_000, depth);
        group.bench_with_input(BenchmarkId::new("dag", depth), &depth, |b, _| {
            b.iter(|| net.trace(black_box(head)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace, bench_depth_scaling);
criterion_main!(benches);
