//! E7 / F2 — block formation and transaction processing time (§6.1).

use blockprov_ledger::block::Block;
use blockprov_ledger::chain::{Chain, ChainConfig};
use blockprov_ledger::tx::{AccountId, Transaction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn txs(n: usize) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::new(
                AccountId::from_name(&format!("user-{}", i % 16)),
                i as u64,
                i as u64,
                1,
                vec![(i % 251) as u8; 64],
            )
        })
        .collect()
}

fn bench_block_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_assembly");
    for n in [10usize, 100, 1_000, 10_000] {
        let batch = txs(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &batch, |b, batch| {
            b.iter(|| {
                Block::assemble(
                    1,
                    blockprov_ledger::block::BlockHash::ZERO,
                    1000,
                    AccountId::from_name("sealer"),
                    0,
                    black_box(batch.clone()),
                )
            });
        });
    }
    group.finish();
}

fn bench_block_validation_and_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_append");
    group.sample_size(20);
    for n in [100usize, 1_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let chain = Chain::new(ChainConfig::default());
                    let block =
                        chain.assemble_next(1_000, AccountId::from_name("sealer"), 0, txs(n));
                    (chain, block)
                },
                |(mut chain, block)| chain.append(black_box(block)).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_integrity_walk(c: &mut Criterion) {
    let mut chain = Chain::new(ChainConfig::default());
    for i in 0..100u64 {
        let block = chain.assemble_next(1_000 * (i + 1), AccountId::from_name("s"), 0, txs(20));
        chain.append(block).unwrap();
    }
    c.bench_function("verify_integrity_100_blocks", |b| {
        b.iter(|| black_box(&chain).verify_integrity().unwrap());
    });
}

criterion_group!(
    benches,
    bench_block_assembly,
    bench_block_validation_and_append,
    bench_integrity_walk
);
criterion_main!(benches);
