//! E10 — access-control overhead (§6.1 / LedgerView): RBAC checks, ABAC
//! evaluation, and view-gated ledger queries.

use blockprov_access::abac::{attrs, AbacPolicy, Condition, Rule, Scope};
use blockprov_access::rbac::{Permission, RbacEngine, Role};
use blockprov_access::views::{ViewFilter, ViewManager};
use blockprov_bench::loaded_ledger;
use blockprov_ledger::tx::AccountId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_rbac(c: &mut Criterion) {
    let mut engine = RbacEngine::new();
    // Three-level role hierarchy with 50 users.
    let reader = Role::new("reader");
    let writer = Role::new("writer");
    let admin = Role::new("admin");
    engine.grant(&reader, Permission::new("record.read"));
    engine.grant(&writer, Permission::new("record.append"));
    engine.inherit(&writer, &reader);
    engine.inherit(&admin, &writer);
    for i in 0..50 {
        engine.assign(AccountId::from_name(&format!("user-{i}")), &writer);
    }
    let user = AccountId::from_name("user-25");
    let perm = Permission::new("record.read");
    c.bench_function("rbac_check_inherited", |b| {
        b.iter(|| engine.check(black_box(&user), black_box(&perm)));
    });
}

fn bench_abac(c: &mut Criterion) {
    let policy = AbacPolicy::new(vec![
        Rule::allow(
            "ehr.read",
            vec![
                Condition::Eq(Scope::Subject, "role".into(), "clinician".into()),
                Condition::SameAs("ward".into()),
                Condition::AtLeast(Scope::Subject, "clearance".into(), 2),
            ],
        ),
        Rule::deny(
            "*",
            vec![Condition::Eq(
                Scope::Resource,
                "sealed".into(),
                "yes".into(),
            )],
        ),
    ]);
    let subject = attrs([
        ("role", "clinician".into()),
        ("ward", "icu".into()),
        ("clearance", 3.into()),
    ]);
    let resource = attrs([("ward", "icu".into())]);
    c.bench_function("abac_evaluate", |b| {
        b.iter(|| {
            policy.evaluate(
                black_box("ehr.read"),
                black_box(&subject),
                black_box(&resource),
            )
        });
    });
}

fn bench_view_query(c: &mut Criterion) {
    let ledger = loaded_ledger(5_000, 50, 500);
    let owner = AccountId::from_name("owner");
    let auditor = AccountId::from_name("auditor");
    let mut views = ViewManager::new();
    let id = views.create(
        owner,
        "audit-view",
        ViewFilter {
            kinds: Some([blockprov_core::txkind::PROVENANCE].into()),
            ..Default::default()
        },
        true,
    );
    views.grant(id, owner, auditor).unwrap();
    let mut group = c.benchmark_group("view_query_5k_txs");
    group.sample_size(20);
    group.bench_function("filtered", |b| {
        b.iter(|| {
            views
                .query(black_box(id), black_box(&auditor), ledger.chain())
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rbac, bench_abac, bench_view_query);
criterion_main!(benches);
