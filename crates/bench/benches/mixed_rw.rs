//! Mixed read/write workload over the epoch-published read path.
//!
//! One writer thread floods `append_batch` into a fully-tiered chain while
//! 1/2/4/8 detached [`ChainReader`] threads hammer point queries
//! (`hash_at`, `tx_by_id`, `next_nonce_for`) and periodic sweep queries
//! (`txs_by_author`, `txs_by_kind`) against pinned snapshots. Because
//! readers never take the writer's locks — they load the published
//! `ChainSnapshot` and read sealed tier pages through sharded caches — the
//! numbers to watch are:
//!
//! * `mixed_rw/reader_only/p50_ns|p99_ns` — single-thread query latency
//!   with the writer idle (the baseline);
//! * `mixed_rw/readers/{R}/p50_ns|p99_ns|ops_per_s` — the same query mix
//!   with the writer flooding; p99 should stay within a small constant
//!   factor of the baseline (no reader ever blocks on a commit);
//! * `mixed_rw/writer/solo_blk_s` vs `mixed_rw/writer/with_{R}_readers_blk_s`
//!   — writer degradation from snapshot publishing + cache sharing.
//!
//! Honest caveat, printed at the end of the run: aggregate reader
//! throughput scaling from 1 → 4 threads is only observable with ≥ 4
//! hardware threads. On a single-core CI box the readers time-slice one
//! core and aggregate throughput stays flat (latency still must not
//! collapse — that part is scheduling-independent).
//!
//! `MIXED_RW_BLOCKS` caps both the pre-grown history and the flood stream
//! (CI smoke runs set a few hundred; the default is 10k/10k).

use blockprov_ledger::block::Block;
use blockprov_ledger::chain::{Chain, ChainConfig, ChainReader};
use blockprov_ledger::index::{TxIndex, TxIndexConfig};
use blockprov_ledger::meta::{MetaConfig, MetaStore};
use blockprov_ledger::segment::{SegmentConfig, TieredConfig, TieredStore};
use blockprov_ledger::tx::{AccountId, Transaction, TxId};
use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FINALITY_DEPTH: u64 = 64;
const BATCH: usize = 256;
const TX_KIND: u16 = 7;
/// Loop iterations for the reader-only baseline (each runs several ops).
const BASELINE_ITERS: usize = 4_000;

fn blocks_cap() -> u64 {
    std::env::var("MIXED_RW_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "blockprov-bench-mixed-rw-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// All three durable tiers at default (realistic) page sizes.
fn all_tiers_chain(dir: &std::path::Path) -> Chain {
    let store = TieredStore::open(
        dir.join("blocks"),
        TieredConfig {
            segment: SegmentConfig {
                segment_bytes: 8 * 1024 * 1024,
            },
            hot_capacity: 256,
        },
    )
    .expect("open tiered store");
    let index = TxIndex::open(dir.join("txindex"), TxIndexConfig::default()).expect("open index");
    let meta = MetaStore::open(dir.join("meta"), MetaConfig::default()).expect("open meta");
    let config = ChainConfig {
        finality_depth: Some(FINALITY_DEPTH),
        ..ChainConfig::default()
    };
    Chain::with_tiers(Box::new(store), Some(index), meta, config)
}

/// Deterministic xorshift so every phase replays the same query mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn authors() -> [AccountId; 3] {
    [
        AccountId::from_name("alice"),
        AccountId::from_name("bob"),
        AccountId::from_name("carol"),
    ]
}

/// Grow `blocks` history: every block carries one tx from a rotating
/// author, so point and sweep queries have real data in both tiers.
fn grow(chain: &mut Chain, blocks: u64) -> Vec<TxId> {
    let sealer = AccountId::from_name("sealer");
    let who = authors();
    let mut ids = Vec::with_capacity(blocks as usize);
    for i in 0..blocks {
        let tx = Transaction::new(who[(i % 3) as usize], i / 3, i + 1, TX_KIND, vec![0xAA; 24]);
        ids.push(tx.id());
        let block = chain.assemble_next(i + 1, sealer, 0, vec![tx]);
        chain.append(block).expect("append");
    }
    ids
}

/// Pre-assemble the flood stream off the current tip; every mixed phase
/// ingests identical blocks.
fn flood_stream(chain: &Chain, blocks: u64) -> Vec<Block> {
    let sealer = AccountId::from_name("flooder");
    let who = authors();
    let mut parent = chain.tip();
    let tip_block = chain.block(&parent).expect("tip readable");
    let (base_h, base_ts) = (tip_block.header.height, tip_block.header.timestamp_ms);
    (0..blocks)
        .map(|i| {
            let tx = Transaction::new(
                who[(i % 3) as usize],
                1_000_000 + i,
                base_ts + i + 1,
                TX_KIND,
                vec![0xBB; 24],
            );
            let b = Block::assemble(base_h + i + 1, parent, base_ts + i + 1, sealer, 0, vec![tx]);
            parent = b.hash();
            b
        })
        .collect()
}

/// One reader iteration against a freshly-pinned view: three timed point
/// ops, plus one timed sweep every 16th call. Returns per-op latencies.
fn reader_iteration(reader: &ChainReader, rng: &mut Rng, ids: &[TxId], n: usize, out: &mut Vec<u64>) {
    let who = authors();
    let v = reader.view();

    let h = rng.next() % (v.height() + 1);
    let t = Instant::now();
    black_box(v.hash_at(h));
    out.push(t.elapsed().as_nanos() as u64);

    let id = &ids[(rng.next() as usize) % ids.len()];
    let t = Instant::now();
    black_box(v.tx_by_id(id));
    out.push(t.elapsed().as_nanos() as u64);

    let author = &who[(rng.next() as usize) % 3];
    let t = Instant::now();
    black_box(v.next_nonce_for(author));
    out.push(t.elapsed().as_nanos() as u64);

    if n % 16 == 0 {
        let t = Instant::now();
        if n % 32 == 0 {
            black_box(v.txs_by_author(author).len());
        } else {
            black_box(v.txs_by_kind(TX_KIND).len());
        }
        out.push(t.elapsed().as_nanos() as u64);
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct ReaderStats {
    p50_ns: u64,
    p99_ns: u64,
    ops: usize,
    /// Sum of per-thread op rates (ops/s) — aggregate throughput.
    ops_per_s: f64,
}

fn aggregate(per_thread: Vec<(Vec<u64>, Duration)>) -> ReaderStats {
    let mut all: Vec<u64> = Vec::new();
    let mut ops_per_s = 0.0;
    for (samples, elapsed) in &per_thread {
        ops_per_s += samples.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        all.extend_from_slice(samples);
    }
    all.sort_unstable();
    ReaderStats {
        p50_ns: percentile(&all, 0.50),
        p99_ns: percentile(&all, 0.99),
        ops: all.len(),
        ops_per_s,
    }
}

/// Reader-only baseline: one thread, fixed iteration count, writer idle.
fn phase_reader_only(base_blocks: u64) -> ReaderStats {
    let dir = bench_dir("reader-only");
    let mut chain = all_tiers_chain(&dir);
    let ids = grow(&mut chain, base_blocks);
    let reader = chain.reader();
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut samples = Vec::new();
    let t = Instant::now();
    for n in 0..BASELINE_ITERS {
        reader_iteration(&reader, &mut rng, &ids, n, &mut samples);
    }
    let elapsed = t.elapsed();
    drop(reader);
    drop(chain);
    let _ = std::fs::remove_dir_all(&dir);
    aggregate(vec![(samples, elapsed)])
}

/// Writer solo: flood the stream with no reader attached (the census gate
/// elides snapshot publishing entirely — the best-case writer number).
fn phase_writer_solo(base_blocks: u64, flood_blocks: u64) -> f64 {
    let dir = bench_dir("writer-solo");
    let mut chain = all_tiers_chain(&dir);
    let _ = grow(&mut chain, base_blocks);
    let stream = flood_stream(&chain, flood_blocks);
    let t = Instant::now();
    for batch in stream.chunks(BATCH) {
        chain.append_batch(batch.to_vec()).expect("batch append");
    }
    let rate = flood_blocks as f64 / t.elapsed().as_secs_f64();
    drop(chain);
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

/// Mixed phase: writer floods on the bench thread while `n_readers`
/// threads run the query mix until the flood finishes.
fn phase_mixed(n_readers: usize, base_blocks: u64, flood_blocks: u64) -> (ReaderStats, f64) {
    let dir = bench_dir(&format!("mixed-{n_readers}"));
    let mut chain = all_tiers_chain(&dir);
    let ids = Arc::new(grow(&mut chain, base_blocks));
    let stream = flood_stream(&chain, flood_blocks);

    let done = Arc::new(AtomicBool::new(false));
    let first = chain.reader();
    let handles: Vec<_> = (0..n_readers)
        .map(|k| {
            let reader = first.clone();
            let ids = Arc::clone(&ids);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = Rng(0x2545f4914f6cdd1d ^ (k as u64 + 1));
                let mut samples = Vec::new();
                let mut n = 0usize;
                let t = Instant::now();
                while !done.load(Ordering::Acquire) {
                    reader_iteration(&reader, &mut rng, &ids, n, &mut samples);
                    n += 1;
                }
                (samples, t.elapsed())
            })
        })
        .collect();
    drop(first);

    let t = Instant::now();
    for batch in stream.chunks(BATCH) {
        chain.append_batch(batch.to_vec()).expect("batch append");
    }
    let writer_rate = flood_blocks as f64 / t.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let per_thread: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    drop(chain);
    let _ = std::fs::remove_dir_all(&dir);
    (aggregate(per_thread), writer_rate)
}

fn bench_mixed_rw(_c: &mut Criterion) {
    let cap = blocks_cap();
    let (base_blocks, flood_blocks) = (cap, cap);
    println!("mixed_rw: {base_blocks} pre-grown blocks, {flood_blocks} flooded blocks per phase");

    let baseline = phase_reader_only(base_blocks);
    record_metric("mixed_rw/reader_only/p50_ns", baseline.p50_ns as f64, "ns");
    record_metric("mixed_rw/reader_only/p99_ns", baseline.p99_ns as f64, "ns");
    println!(
        "mixed_rw reader-only baseline: {} ops, p50 {} ns, p99 {} ns, {:.0} ops/s",
        baseline.ops, baseline.p50_ns, baseline.p99_ns, baseline.ops_per_s
    );

    let solo = phase_writer_solo(base_blocks, flood_blocks);
    record_metric("mixed_rw/writer/solo_blk_s", solo, "blk/s");
    println!("mixed_rw writer solo (no readers attached): {solo:.0} blk/s");

    let mut agg_rates = Vec::new();
    for readers in [1usize, 2, 4, 8] {
        let (stats, writer_rate) = phase_mixed(readers, base_blocks, flood_blocks);
        record_metric(
            &format!("mixed_rw/readers/{readers}/p50_ns"),
            stats.p50_ns as f64,
            "ns",
        );
        record_metric(
            &format!("mixed_rw/readers/{readers}/p99_ns"),
            stats.p99_ns as f64,
            "ns",
        );
        record_metric(
            &format!("mixed_rw/readers/{readers}/ops_per_s"),
            stats.ops_per_s,
            "ops/s",
        );
        record_metric(
            &format!("mixed_rw/writer/with_{readers}_readers_blk_s"),
            writer_rate,
            "blk/s",
        );
        println!(
            "mixed_rw [{readers} readers + writer]: {} reader ops \
             (p50 {} ns, p99 {} ns, {:.0} ops/s aggregate), \
             writer {:.0} blk/s ({:.2}x of solo), \
             reader p99 {:.1}x of reader-only baseline",
            stats.ops,
            stats.p50_ns,
            stats.p99_ns,
            stats.ops_per_s,
            writer_rate,
            writer_rate / solo.max(1e-9),
            stats.p99_ns as f64 / (baseline.p99_ns as f64).max(1.0),
        );
        agg_rates.push((readers, stats.ops_per_s));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let one = agg_rates[0].1;
    let four = agg_rates[2].1;
    if four > one {
        println!(
            "mixed_rw scaling: aggregate reader throughput 1→4 threads rose \
             {one:.0} → {four:.0} ops/s ({:.2}x) on {cores} hardware threads",
            four / one.max(1e-9)
        );
    } else {
        println!(
            "mixed_rw scaling: aggregate reader throughput did NOT rise 1→4 threads \
             ({one:.0} → {four:.0} ops/s) — expected on {cores} hardware thread(s); \
             readers time-slice the same core(s), so latency (not aggregate rate) \
             is the meaningful signal here"
        );
    }
}

criterion_group!(benches, bench_mixed_rw);
criterion_main!(benches);
